//! The paper's running example (Figures 1–4): the Customer Service
//! dashboard, the "Analyzing Spread"/Filtering goal over lost calls, and an
//! Oracle-driven walkthrough matching Figure 4's per-queue interactions.
//!
//! ```sh
//! cargo run --release --example customer_service
//! ```

use rand::SeedableRng;
use simba::core::equivalence::augment_result;
use simba::core::oracle::Oracle;
use simba::prelude::*;
use simba::store::CoverageStore;
use std::sync::Arc;

fn main() {
    let dataset = DashboardDataset::CustomerService;
    let table = Arc::new(dataset.generate_rows(100_000, 2024));
    let dashboard = Dashboard::new(builtin(dataset), &table).expect("valid spec");
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    // Figure 2D: the dashboard's interaction graph.
    let graph = dashboard.graph();
    println!(
        "interaction graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for node in graph.visualization_nodes() {
        println!(
            "  vis `{}` <- {} ancestors",
            graph.id(node),
            graph.ancestors(node).len()
        );
    }

    // Figure 3: the goal query (not directly emittable by any widget state).
    let goal_query = parse_select(
        "SELECT queue, COUNT(lost_calls) FROM customer_service GROUP BY queue \
         HAVING COUNT(lost_calls) > 1",
    )
    .unwrap();
    let goal_result = engine.execute(&goal_query).unwrap().result;
    println!("\ngoal: Which queues have experienced more than 1 lost call?");
    println!("  {goal_query}");
    println!("  expected rows: {}", goal_result.n_rows());

    // Figure 4: the Oracle reaches the goal through per-queue interactions.
    let oracle = Oracle::default();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
    let mut state = dashboard.initial_state();
    let mut coverage = CoverageStore::new();

    // Initial render.
    for (_, q) in dashboard.all_queries(&state) {
        let out = engine.execute(&q).unwrap();
        coverage.absorb(&augment_result(&q, out.result));
    }

    let mut step = 0;
    while !coverage.covers(&goal_result) && step < 12 {
        step += 1;
        let planned = oracle
            .plan_next(
                &dashboard,
                &state,
                engine.as_ref(),
                &coverage,
                &[&goal_result],
                &mut rng,
            )
            .expect("engine ok")
            .expect("actions available");
        println!(
            "\nstep {step}: {} (theta={})",
            planned.action.describe(graph),
            planned.score
        );
        let emitted = dashboard.apply(&mut state, &planned.action);
        for (node, q) in &emitted {
            let out = engine.execute(q).unwrap();
            println!(
                "  [{}] {} -> {} rows in {:.3}ms",
                graph.id(*node),
                q,
                out.result.n_rows(),
                out.elapsed.as_secs_f64() * 1e3
            );
            coverage.absorb(&augment_result(q, out.result));
        }
        let covered = coverage.covered_rows(&goal_result);
        println!(
            "  goal coverage: {covered}/{} ({:.0}%)",
            goal_result.n_rows(),
            100.0 * covered as f64 / goal_result.n_rows().max(1) as f64
        );
    }

    if coverage.covers(&goal_result) {
        println!("\ngoal achieved in {step} interactions — matching Figure 4's walkthrough.");
    } else {
        println!("\ngoal NOT achieved within {step} interactions.");
    }
}
