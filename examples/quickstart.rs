//! Quickstart: simulate one exploration session and print its log.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simba::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Pick a built-in dashboard and generate its dataset.
    let dataset = DashboardDataset::CustomerService;
    let table = Arc::new(dataset.generate_rows(50_000, 42));
    println!(
        "dataset: {} ({} rows, {} columns)",
        dataset.title(),
        table.row_count(),
        table.schema().width()
    );

    // 2. Build the dashboard runtime and a DBMS under test.
    let dashboard = Dashboard::new(builtin(dataset), &table).expect("valid spec");
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    // 3. Instantiate a workflow's goals and run a session.
    let goals = Workflow::Shneiderman
        .goals_for(&dashboard)
        .expect("compatible workflow");
    println!("\ngoals:");
    for g in &goals {
        println!("  [{}] {}", g.kind.name(), g.question);
        println!("      {}", g.query);
    }

    let config = SessionConfig {
        seed: 7,
        max_steps: 30,
        ..Default::default()
    };
    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
        .run(&goals)
        .expect("session runs");

    // 4. Inspect the log.
    println!(
        "\nsession ({} interactions, {} queries):",
        log.interaction_count(),
        log.query_count()
    );
    for entry in &log.entries {
        println!(
            "  step {:>2} [{}] {} -> {} queries",
            entry.step,
            entry.model.name(),
            entry.action,
            entry.queries.len()
        );
    }

    println!("\ngoal outcomes:");
    for outcome in &log.goals {
        match (outcome.solved_at, outcome.method) {
            (Some(step), Some(method)) => {
                println!(
                    "  SOLVED at step {step} via {} — {}",
                    method.name(),
                    outcome.question
                )
            }
            _ => println!("  UNSOLVED — {}", outcome.question),
        }
    }

    let summary = DurationSummary::from_durations(&log.durations()).expect("queries ran");
    println!(
        "\nquery durations: n={} mean={:.3}ms p50={:.3}ms p95={:.3}ms max={:.3}ms",
        summary.count, summary.mean_ms, summary.p50_ms, summary.p95_ms, summary.max_ms
    );
}
