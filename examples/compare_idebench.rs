//! SIMBA vs IDEBench (§6.3): workload-shape statistics and the
//! reverse-engineered dashboard complexity of Figure 9, at example scale.
//!
//! ```sh
//! cargo run --release --example compare_idebench
//! ```

use simba::idebench::complexity::FleetComplexity;
use simba::idebench::DashboardComplexity;
use simba::prelude::*;
use std::sync::Arc;

fn main() {
    let dataset = DashboardDataset::ItMonitor;
    let table = Arc::new(dataset.generate_rows(50_000, 7));
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table.clone());

    // --- SIMBA: constrained by the real IT Monitor dashboard ---
    let dashboard = Dashboard::new(builtin(dataset), &table).expect("valid spec");
    let goals = Workflow::Shneiderman
        .goals_for(&dashboard)
        .expect("compatible");
    let mut simba_shapes = Vec::new();
    for seed in 0..5 {
        let config = SessionConfig {
            seed,
            max_steps: 20,
            stop_on_completion: false,
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .expect("session runs");
        if let Some(stats) = WorkloadStats::from_log(&log) {
            simba_shapes.push(stats);
        }
    }
    let avg = |f: fn(&WorkloadStats) -> f64| {
        simba_shapes.iter().map(f).sum::<f64>() / simba_shapes.len() as f64
    };
    println!("--- SIMBA (real IT Monitor dashboard: 3 visualizations) ---");
    println!("runs                  : {}", simba_shapes.len());
    println!("avg data columns/query: {:.1}", avg(|s| s.data_columns_avg));
    println!("avg aggregates/query  : {:.1}", avg(|s| s.aggregated_avg));
    println!("avg filters/query     : {:.1}", avg(|s| s.filters_avg));

    // --- IDEBench: unconstrained stochastic simulation ---
    let profiles: Vec<DashboardComplexity> = (0..10)
        .map(|seed| {
            let log = IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                IdeBenchConfig {
                    seed,
                    interactions: 20,
                    ..Default::default()
                },
            )
            .run()
            .expect("idebench runs");
            DashboardComplexity::from_log(&log)
        })
        .collect();
    let fleet = FleetComplexity::from_runs(&profiles).expect("profiles");
    println!("\n--- IDEBench (implicit random dashboards) ---");
    println!("runs                  : {}", fleet.runs);
    println!(
        "visualizations        : avg {:.1} (min {}, max {})",
        fleet.viz_avg, fleet.viz_min, fleet.viz_max
    );
    println!("updates/interaction   : avg {:.1}", fleet.updates_avg);
    println!("avg attrs/viz         : {:.1}", fleet.attrs_avg);
    println!("avg filters/query     : {:.1}", fleet.filters_avg);

    println!(
        "\nPaper's finding (§6.3): SIMBA balances visualization and filtering \
         complexity; IDEBench stacks filters (13.2 vs 5.8) on simpler views \
         (2.1 vs 3.8 attrs) across far more visualizations (avg 13 vs 3)."
    );
}
