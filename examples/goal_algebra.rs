//! The goal algebra end to end: write goals as text, translate them to SQL
//! (§2 of the paper), and execute them.
//!
//! ```sh
//! cargo run --release --example goal_algebra
//! ```

use simba::core::algebra::templates::FieldChoice;
use simba::core::algebra::to_sql::to_sql;
use simba::prelude::*;
use std::sync::Arc;

fn main() {
    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(20_000, 1));
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    // --- Algebra expressions written as text (Table 1 operators) ---
    let expressions = [
        // Figure 3: which queues have experienced more than 1 lost call?
        "queue x count(lost_calls) - {count(lost_calls) < 2}",
        // Example 2.3: correlation between call volume and abandonment.
        "hour x count(calls) + sum(abandoned)",
        // Example 2.2: average call volume per representative.
        "rep_id x avg(calls)",
        // Temporal pattern with a map operator.
        "hour(call_date) x sum(abandoned)",
        // Spread of handle time across queues with a removal filter.
        "queue - 'D' x max(handle_time) + min(handle_time)",
    ];

    for text in expressions {
        let expr = parse_goal(text).expect("valid algebra");
        let sql = to_sql(&expr, "customer_service").expect("translatable");
        let out = engine.execute(&sql).expect("executes");
        println!("algebra : {expr}");
        println!("sql     : {sql}");
        println!(
            "result  : {} rows in {:.3}ms",
            out.result.n_rows(),
            out.elapsed.as_secs_f64() * 1e3
        );
        for row in out.result.rows.iter().take(3) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("          {}", cells.join(" | "));
        }
        println!();
    }

    // --- The six reusable templates (Table 2) ---
    let choice = FieldChoice::new(
        "customer_service",
        vec!["queue".into(), "rep_id".into()],
        vec!["calls".into(), "abandoned".into()],
        vec!["hour".into()],
    );
    println!("--- Table 2 templates instantiated for Customer Service ---");
    for kind in GoalTemplateKind::ALL {
        let goal = kind.instantiate(&choice).expect("instantiable");
        println!("[{}]", kind.name());
        println!("  Q: {}", goal.question);
        println!("  A: {}", goal.expr);
        println!("  SQL: {}", goal.query);
    }
}
