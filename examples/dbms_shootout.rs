//! DBMS shootout: the same simulated workload against all four engine
//! architectures (the §6 headline comparison, scaled down).
//!
//! ```sh
//! cargo run --release --example dbms_shootout [rows]
//! ```

use simba::prelude::*;
use std::sync::Arc;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    let dataset = DashboardDataset::CustomerService;
    let table = Arc::new(dataset.generate_rows(rows, 99));
    println!("dataset: {} rows of {}", table.row_count(), dataset.title());

    let dashboard = Dashboard::new(builtin(dataset), &table).expect("valid spec");
    let goals = Workflow::Shneiderman
        .goals_for(&dashboard)
        .expect("compatible");

    println!(
        "\n{:<14} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "engine", "queries", "mean ms", "p50 ms", "p95 ms", "max ms"
    );
    for kind in EngineKind::ALL {
        let engine = kind.build();
        engine.register(table.clone());
        // Identical seed => identical interaction sequence (verified by the
        // integration suite); only latency differs.
        let config = SessionConfig {
            seed: 31,
            max_steps: 15,
            stop_on_completion: false,
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .expect("session runs");
        let summary = DurationSummary::from_durations(&log.durations()).expect("queries ran");
        println!(
            "{:<14} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            kind.name(),
            summary.count,
            summary.mean_ms,
            summary.p50_ms,
            summary.p95_ms,
            summary.max_ms
        );
    }
    println!(
        "\n(architectures: row-Volcano, lazy-row+hash, vectorized columnar, operator-at-a-time)"
    );
}
