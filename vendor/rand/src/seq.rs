//! Slice sampling helpers mirroring `rand::seq::SliceRandom`.

use crate::{Rng, RngCore};

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    type Item;

    /// One uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements (fewer if the slice is shorter), in
    /// selection order.
    fn choose_multiple<R: Rng>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'_, Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

/// Iterator over elements picked by [`SliceRandom::choose_multiple`].
pub struct SliceChooseIter<'a, T> {
    items: Vec<&'a T>,
    next: usize,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let item = self.items.get(self.next).copied();
        self.next += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.items.len() - self.next;
        (rem, Some(rem))
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[index_below(rng, self.len())])
        }
    }

    fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = i + index_below(rng, indices.len() - i);
            indices.swap(i, j);
        }
        SliceChooseIter {
            items: indices[..amount].iter().map(|&i| &self[i]).collect(),
            next: 0,
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = index_below(rng, i + 1);
            self.swap(i, j);
        }
    }
}

fn index_below<R: RngCore>(rng: &mut R, n: usize) -> usize {
    ((rng.next_u64() as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*xs.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_yields_distinct() {
        let mut rng = SmallRng::seed_from_u64(6);
        let xs: Vec<i32> = (0..10).collect();
        let picked: Vec<i32> = xs.choose_multiple(&mut rng, 4).cloned().collect();
        assert_eq!(picked.len(), 4);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut xs: Vec<i32> = (0..20).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
