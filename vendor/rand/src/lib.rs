//! Vendored, dependency-free stand-in for the parts of `rand` 0.8 that this
//! workspace uses. The build environment has no access to crates.io, so we
//! implement the trait surface (`RngCore`, `Rng`, `SeedableRng`,
//! `seq::SliceRandom`) locally. Distribution details (e.g. exact
//! `gen_range` bit streams) are not bit-compatible with upstream `rand`, but
//! all generators are deterministic per seed, which is what the benchmark
//! relies on.

pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator seedable from a fixed-size byte seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same construction as
    /// upstream `rand`, though byte order may differ).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types `gen_range` can sample uniformly. (The single blanket impl of
/// [`SampleRange`] below matters for inference: it lets integer literals in
/// `gen_range(0..n)` unify with the surrounding expression's type, exactly
/// like upstream `rand`.)
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(width > 0, "gen_range: empty range");
                let offset = widening_mul(rng.next_u64(), width);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_uniform_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Map a uniform `u64` onto `[0, width)` via 128-bit widening multiply.
/// (Lemire's method without the rejection step; the bias is ≤ width / 2^64,
/// far below anything a benchmark can observe.)
fn widening_mul(x: u64, width: u128) -> u128 {
    (x as u128).wrapping_mul(width) >> 64
}

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256**-style generator (used where `rand`'s
    /// `SmallRng` would be).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..100);
            assert!((-20..100).contains(&v));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
