//! Vendored ChaCha-based RNG. Implements the real ChaCha8 block function
//! (RFC 7539 quarter-rounds, 8 rounds) over the local `rand` trait shims.

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds, seeded from 32 bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state[4..12] of the ChaCha matrix).
    key: [u32; 8],
    /// 64-bit block counter (state[12..14]).
    counter: u64,
    /// Buffered output of the current block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "exhausted".
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // One double-round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(chunk);
            key[i] = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity check: bit balance of 64k words within 1%.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..65_536).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (65_536.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }
}
