//! Vendored JSON front-end for the local serde stand-in: renders
//! [`serde::Content`] trees as JSON text and parses JSON back into them.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_content(&content).map_err(Error)
}

// ---------------------------------------------------------------- writing

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip formatting; integral floats keep
                // a `.0` so they re-parse as floats.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error(
                                            "invalid low surrogate in \\u escape".to_string(),
                                        ));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error("lone surrogate".to_string()));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".to_string()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".to_string()))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let c: Content = from_str("  {\"a\": [1, -2, 3.5, true, null, \"x\\n\"]}  ").unwrap();
        let text = to_string(&c).unwrap();
        assert_eq!(text, "{\"a\":[1,-2,3.5,true,null,\"x\\n\"]}");
        let back: Content = from_str(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn pretty_printing_indents() {
        let c: Content = from_str("{\"a\":{\"b\":[1]}}").unwrap();
        let text = to_string_pretty(&c).unwrap();
        assert!(text.contains("\n  \"a\": {"), "{text}");
        let back: Content = from_str(&text).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn floats_round_trip_with_trailing_zero() {
        let text = to_string(&Content::F64(4.0)).unwrap();
        assert_eq!(text, "4.0");
        assert_eq!(from_str::<Content>(&text).unwrap(), Content::F64(4.0));
        let tiny = to_string(&Content::F64(0.1)).unwrap();
        assert_eq!(from_str::<Content>(&tiny).unwrap(), Content::F64(0.1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Content>("{not json").is_err());
        assert!(from_str::<Content>("[1, 2").is_err());
        assert!(from_str::<Content>("1 2").is_err());
        assert!(from_str::<Content>("").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let c: Content = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(c, Content::Str("é😀".to_string()));
    }

    #[test]
    fn malformed_surrogates_error_instead_of_panicking() {
        // High surrogate followed by a non-low-surrogate escape.
        assert!(from_str::<Content>("\"\\ud800\\u0041\"").is_err());
        // High surrogate followed by a plain character.
        assert!(from_str::<Content>("\"\\ud800x\"").is_err());
        // Bare low surrogate.
        assert!(from_str::<Content>("\"\\udc00\"").is_err());
    }
}
