//! `proptest::option` — optional values.

use crate::{Strategy, TestRng};

/// Strategy for `Option<S::Value>` that is `Some` with probability `p`.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
    p_some: f64,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        if rng.chance(self.p_some) {
            Some(self.inner.gen(rng))
        } else {
            None
        }
    }
}

/// `Some` half the time.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, p_some: 0.5 }
}

/// `Some` with the given probability.
pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner, p_some }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_respects_probability() {
        let mut rng = TestRng::new(5);
        let s = weighted(0.9, 0i64..5);
        let somes = (0..10_000).filter(|_| s.gen(&mut rng).is_some()).count();
        assert!(somes > 8_700 && somes < 9_300, "{somes}");
    }
}
