//! `proptest::collection` — vectors of generated values.

use crate::{Strategy, TestRng};

/// Accepted size specifications for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_all_range_forms() {
        let mut rng = TestRng::new(4);
        for _ in 0..500 {
            assert_eq!(vec(0i64..5, 3usize).gen(&mut rng).len(), 3);
            let open = vec(0i64..5, 1..4).gen(&mut rng).len();
            assert!((1..4).contains(&open));
            let incl = vec(0i64..5, 2..=6).gen(&mut rng).len();
            assert!((2..=6).contains(&incl));
        }
    }
}
