//! String strategies from mini-regex patterns (`"[a-z][a-z0-9_]{0,8}"`).
//!
//! Supported syntax: literal characters, `[...]` character classes with
//! ranges, and `{m}` / `{m,n}` quantifiers. That covers every pattern in
//! this workspace's tests.

use crate::{Strategy, TestRng};

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range in pattern `{pattern}`");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated `[` in pattern `{pattern}`");
                i += 1;
                set
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing `\\` in pattern `{pattern}`");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated `{` in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            !choices.is_empty() && min <= max,
            "bad atom in pattern `{pattern}`"
        );
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min) as u64 + 1) as usize;
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_shapes() {
        let mut rng = TestRng::new(8);
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,8}".gen(&mut rng);
            assert!((1..=9).contains(&s.len()), "{s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn fixed_width_pattern() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let s = "[a-z]{1,6}".gen(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s}");
        }
    }
}
