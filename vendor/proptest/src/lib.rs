//! Vendored, generation-only stand-in for the slice of `proptest` this
//! workspace uses. Strategies generate random values from a deterministic
//! per-test RNG; there is **no shrinking** — a failing case panics with the
//! generated inputs in the assertion message instead. The deterministic
//! seed (FNV of the test name) makes failures reproducible run-to-run.

use std::rc::Rc;

pub mod collection;
pub mod option;
pub mod sample;
pub mod string;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed from a test name (FNV-1a), so each test gets its own stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Depth-bounded recursion: applies `f` to the accumulated strategy
    /// `depth` times. (`size`/`items` are accepted for API compatibility
    /// and ignored — depth alone bounds our eager construction.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _size: u32,
        _items: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = f(s).boxed();
        }
        s
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Weighted union built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

pub fn one_of<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    Union { arms, total }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let mut r = rng.below(self.total);
        for (w, s) in &self.arms {
            if r < *w as u64 {
                return s.gen(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weight walk exhausted")
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128).wrapping_mul(width) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128).wrapping_mul(width) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit() as $t
            }
        }
    )*};
}

float_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $( let $arg = $crate::Strategy::gen(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:literal => $s:expr ),+ $(,)? ) => {
        $crate::one_of(vec![ $( (($w) as u32, $crate::Strategy::boxed($s)) ),+ ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::one_of(vec![ $( (1u32, $crate::Strategy::boxed($s)) ),+ ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..5_000 {
            let v = (-20i64..100).gen(&mut rng);
            assert!((-20..100).contains(&v));
            let f = (0.0f64..1.0).gen(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_weights_bias_selection() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..10_000).filter(|_| s.gen(&mut rng)).count();
        assert!(trues > 8_500 && trues < 9_500, "{trues}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).prop_map(|v| vec![v]);
        let nested = leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(mut a, b)| {
                    a.extend(b);
                    a
                }),
                inner,
            ]
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = nested.gen(&mut rng);
            assert!(!v.is_empty() && v.len() <= 16, "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_all_args(x in 0i64..5, flag in any::<bool>()) {
            prop_assert!((0..5).contains(&x));
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
