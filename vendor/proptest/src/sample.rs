//! `proptest::sample` — choosing from fixed collections.

use crate::{Strategy, TestRng};

/// Sources [`select`] accepts.
pub trait SelectSource<T> {
    fn into_items(self) -> Vec<T>;
}

impl<T: Clone> SelectSource<T> for &[T] {
    fn into_items(self) -> Vec<T> {
        self.to_vec()
    }
}

impl<T: Clone, const N: usize> SelectSource<T> for &[T; N] {
    fn into_items(self) -> Vec<T> {
        self.to_vec()
    }
}

impl<T> SelectSource<T> for Vec<T> {
    fn into_items(self) -> Vec<T> {
        self
    }
}

/// Uniform choice from a fixed list.
pub struct Select<T> {
    items: Vec<T>,
}

impl<T: Clone> Clone for Select<T> {
    fn clone(&self) -> Self {
        Select {
            items: self.items.clone(),
        }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}

/// `proptest::sample::select(items)`.
pub fn select<T: Clone, S: SelectSource<T>>(source: S) -> Select<T> {
    let items = source.into_items();
    assert!(!items.is_empty(), "select: empty choice set");
    Select { items }
}

/// Order-preserving random subsequence with a length in `size`.
pub struct Subsequence<T> {
    items: Vec<T>,
    min: usize,
    max: usize,
}

impl<T: Clone> Clone for Subsequence<T> {
    fn clone(&self) -> Self {
        Subsequence {
            items: self.items.clone(),
            min: self.min,
            max: self.max,
        }
    }
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn gen(&self, rng: &mut TestRng) -> Vec<T> {
        let max = self.max.min(self.items.len());
        let min = self.min.min(max);
        let k = min + rng.below((max - min) as u64 + 1) as usize;
        // Partial Fisher–Yates over indices, then restore source order.
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        for i in 0..k {
            let j = i + rng.below((indices.len() - i) as u64) as usize;
            indices.swap(i, j);
        }
        let mut picked: Vec<usize> = indices[..k].to_vec();
        picked.sort_unstable();
        picked.into_iter().map(|i| self.items[i].clone()).collect()
    }
}

/// `proptest::sample::subsequence(items, size_range)`.
pub fn subsequence<T: Clone>(
    items: Vec<T>,
    size: core::ops::RangeInclusive<usize>,
) -> Subsequence<T> {
    Subsequence {
        items,
        min: *size.start(),
        max: *size.end(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_every_item() {
        let mut rng = TestRng::new(6);
        let s = select(&["a", "b", "c"][..]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.gen(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = TestRng::new(7);
        let s = subsequence(vec![1, 2, 3, 4, 5], 1..=3);
        for _ in 0..500 {
            let v = s.gen(&mut rng);
            assert!((1..=3).contains(&v.len()), "{v:?}");
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(v, sorted, "order not preserved");
        }
    }
}
