//! Vendored, dependency-free stand-in for the slice of `serde` this
//! workspace uses. Instead of serde's visitor architecture, values convert
//! to and from a simple [`Content`] tree; `serde_json` (also vendored)
//! renders that tree as JSON. The derive macros are re-exported from the
//! local `serde_derive` proc-macro crate and generate `to_content` /
//! `from_content` implementations compatible with serde's default external
//! enum tagging, `rename_all = "snake_case"`, `default`,
//! `skip_serializing_if`, and internal tagging (`tag = "..."`).

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common tree both JSON and derives speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Ordered key/value pairs (order is preserved for stable output).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Conversion into the content tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Conversion from the content tree.
pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, String>;

    /// Hook for absent struct fields: `Option` yields `None`, everything
    /// else is an error (matching serde's behavior for optional fields).
    fn missing_field(name: &str) -> Result<Self, String> {
        Err(format!("missing field `{name}`"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range"))?,
                    other => return Err(format!("expected integer, found {}", other.kind())),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| format!("integer {v} out of range"))?,
                    other => return Err(format!("expected integer, found {}", other.kind())),
                };
                <$t>::try_from(v).map_err(|_| format!("integer {v} out of range"))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(format!("expected number, found {}", other.kind())),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, String> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected array, found {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        T::from_content(c).map(Box::new)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, String> {
        Ok(c.clone())
    }
}
