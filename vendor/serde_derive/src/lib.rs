//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in. Parses the item with a small token cursor (no
//! `syn` available offline) and generates `to_content` / `from_content`
//! impls over `serde::Content`.
//!
//! Supported shapes (everything this workspace derives on):
//! * structs with named fields;
//! * enums with unit, newtype, tuple, and struct variants (serde's default
//!   external tagging);
//! * container attrs `rename_all = "snake_case"` and `tag = "..."`
//!   (internal tagging, struct/unit variants only);
//! * field attrs `default`, `rename = "..."`, and
//!   `skip_serializing_if = "path"`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: SerdeAttrs,
    kind: ItemKind,
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == name)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Consume leading attributes, folding any `#[serde(...)]` into `attrs`.
    fn take_attrs(&mut self, attrs: &mut SerdeAttrs) {
        while self.at_punct('#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde_derive: malformed attribute");
            };
            let mut inner = Cursor::new(g.stream());
            if inner.at_ident("serde") {
                inner.next();
                if let Some(TokenTree::Group(args)) = inner.next() {
                    parse_serde_args(args.stream(), attrs);
                }
            }
        }
    }

    /// Skip an optional `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skip a type (or discriminant) up to a top-level `,`, tracking angle
    /// bracket depth so generic arguments don't end the field early.
    fn skip_until_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let mut cur = Cursor::new(stream);
    while cur.peek().is_some() {
        let key = cur.expect_ident();
        let value = if cur.at_punct('=') {
            cur.next();
            match cur.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde_derive: expected string after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("default", None) => attrs.default = true,
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            (other, _) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        if cur.at_punct(',') {
            cur.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let mut attrs = SerdeAttrs::default();
    cur.take_attrs(&mut attrs);
    cur.skip_vis();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    if cur.at_punct('<') {
        panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
    }
    let body = loop {
        match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: unit/tuple structs are not supported (`{name}`)")
            }
            Some(_) => continue,
            None => panic!("serde_derive: missing body for `{name}`"),
        }
    };
    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_fields(body)),
        "enum" => ItemKind::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Item { name, attrs, kind }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = SerdeAttrs::default();
        cur.take_attrs(&mut attrs);
        if cur.peek().is_none() {
            break;
        }
        cur.skip_vis();
        let name = cur.expect_ident();
        assert!(
            cur.at_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        cur.next();
        cur.skip_until_comma();
        if cur.at_punct(',') {
            cur.next();
        }
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let mut attrs = SerdeAttrs::default();
        cur.take_attrs(&mut attrs);
        if cur.peek().is_none() {
            break;
        }
        let name = cur.expect_ident();
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                cur.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                cur.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip a possible discriminant, then the separating comma.
        cur.skip_until_comma();
        if cur.at_punct(',') {
            cur.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    if cur.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    loop {
        cur.skip_until_comma();
        if cur.at_punct(',') {
            cur.next();
            if cur.peek().is_some() {
                n += 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    n
}

// --------------------------------------------------------------- renaming

fn to_snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn apply_rename_all(rule: Option<&String>, name: &str) -> String {
    match rule.map(String::as_str) {
        Some("snake_case") => to_snake_case(name),
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("serde_derive: unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

fn field_key(field: &Field) -> String {
    field
        .attrs
        .rename
        .clone()
        .unwrap_or_else(|| field.name.clone())
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut code = String::from(
                "let mut entries: Vec<(std::string::String, serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                code.push_str(&ser_field_push(&format!("self.{}", f.name), f));
            }
            code.push_str("serde::Content::Map(entries)");
            code
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = apply_rename_all(item.attrs.rename_all.as_ref(), &v.name);
                match (&v.shape, item.attrs.tag.as_deref()) {
                    (VariantShape::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => serde::Content::Str(\"{key}\".to_string()),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => serde::Content::Map(vec![(\"{tag}\".to_string(), \
                             serde::Content::Str(\"{key}\".to_string()))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Tuple(1), None) => {
                        arms.push_str(&format!(
                            "{name}::{v}(__f0) => serde::Content::Map(vec![(\"{key}\".to_string(), \
                             serde::Serialize::to_content(__f0))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantShape::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => serde::Content::Map(vec![(\"{key}\".to_string(), \
                             serde::Content::Seq(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    (VariantShape::Tuple(_), Some(_)) => panic!(
                        "serde_derive: tuple variants are incompatible with internal tagging"
                    ),
                    (VariantShape::Named(fields), tag) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut entries: Vec<(std::string::String, serde::Content)> = \
                             Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "entries.push((\"{tag}\".to_string(), \
                                 serde::Content::Str(\"{key}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            inner.push_str(&ser_field_push(&f.name, f));
                        }
                        let wrap = if tag.is_some() {
                            "serde::Content::Map(entries)".to_string()
                        } else {
                            format!(
                                "serde::Content::Map(vec![(\"{key}\".to_string(), \
                                 serde::Content::Map(entries))])"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ {inner} {wrap} }},\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// `entries.push(...)` for one field value expression, honoring
/// `skip_serializing_if`.
fn ser_field_push(value_expr: &str, f: &Field) -> String {
    let key = field_key(f);
    let push = format!(
        "entries.push((\"{key}\".to_string(), serde::Serialize::to_content(&{value_expr})));\n"
    );
    match &f.attrs.skip_serializing_if {
        Some(path) => format!("if !({path}(&{value_expr})) {{ {push} }}\n"),
        None => push,
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let build = de_named_fields(name, fields);
            format!(
                "match c {{\n\
                 serde::Content::Map(_) => {{ Ok({build}) }}\n\
                 other => Err(format!(\"expected object for `{name}`, found {{}}\", other.kind())),\n\
                 }}"
            )
        }
        ItemKind::Enum(variants) => match item.attrs.tag.as_deref() {
            Some(tag) => de_internally_tagged(name, item, variants, tag),
            None => de_externally_tagged(name, item, variants),
        },
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_content(c: &serde::Content) -> Result<Self, std::string::String> {{\n{body}\n}}\n}}\n"
    )
}

/// Struct-literal body reading each named field out of the map `c`.
fn de_named_fields(path: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let key = field_key(f);
        let fname = &f.name;
        let missing = if f.attrs.default {
            "std::default::Default::default()".to_string()
        } else {
            format!("serde::Deserialize::missing_field(\"{key}\")?")
        };
        inits.push_str(&format!(
            "{fname}: match c.get(\"{key}\") {{\n\
             Some(__v) => serde::Deserialize::from_content(__v)\
             .map_err(|e| format!(\"field `{key}`: {{e}}\"))?,\n\
             None => {missing},\n\
             }},\n"
        ));
    }
    format!("{path} {{ {inits} }}")
}

fn de_externally_tagged(name: &str, item: &Item, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut map_arms = String::new();
    for v in variants {
        let key = apply_rename_all(item.attrs.rename_all.as_ref(), &v.name);
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!("\"{key}\" => Ok({name}::{v}),\n", v = v.name));
            }
            VariantShape::Tuple(1) => {
                map_arms.push_str(&format!(
                    "\"{key}\" => Ok({name}::{v}(serde::Deserialize::from_content(__v)\
                     .map_err(|e| format!(\"variant `{key}`: {{e}}\"))?)),\n",
                    v = v.name
                ));
            }
            VariantShape::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "serde::Deserialize::from_content(&__items[{i}])\
                             .map_err(|e| format!(\"variant `{key}`: {{e}}\"))?"
                        )
                    })
                    .collect();
                map_arms.push_str(&format!(
                    "\"{key}\" => match __v {{\n\
                     serde::Content::Seq(__items) if __items.len() == {n} => \
                     Ok({name}::{v}({elems})),\n\
                     _ => Err(\"variant `{key}`: expected {n}-element array\".to_string()),\n\
                     }},\n",
                    v = v.name,
                    elems = elems.join(", ")
                ));
            }
            VariantShape::Named(fields) => {
                let build = de_named_fields(&format!("{name}::{v}", v = v.name), fields);
                // Inner fields read from the variant's own map: shadow `c`.
                map_arms.push_str(&format!(
                    "\"{key}\" => match __v {{\n\
                     serde::Content::Map(_) => {{ let c = __v; Ok({build}) }}\n\
                     _ => Err(\"variant `{key}`: expected object\".to_string()),\n\
                     }},\n"
                ));
            }
        }
    }
    format!(
        "match c {{\n\
         serde::Content::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         other => Err(format!(\"unknown variant `{{other}}` for `{name}`\")),\n\
         }},\n\
         serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__k, __v) = &__entries[0];\n\
         match __k.as_str() {{\n\
         {map_arms}\
         other => Err(format!(\"unknown variant `{{other}}` for `{name}`\")),\n\
         }}\n\
         }},\n\
         other => Err(format!(\"expected variant of `{name}`, found {{}}\", other.kind())),\n\
         }}"
    )
}

fn de_internally_tagged(name: &str, item: &Item, variants: &[Variant], tag: &str) -> String {
    let mut arms = String::new();
    for v in variants {
        let key = apply_rename_all(item.attrs.rename_all.as_ref(), &v.name);
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!("\"{key}\" => Ok({name}::{v}),\n", v = v.name));
            }
            VariantShape::Named(fields) => {
                let build = de_named_fields(&format!("{name}::{v}", v = v.name), fields);
                arms.push_str(&format!("\"{key}\" => Ok({build}),\n"));
            }
            VariantShape::Tuple(_) => {
                panic!("serde_derive: tuple variants are incompatible with internal tagging")
            }
        }
    }
    format!(
        "match c {{\n\
         serde::Content::Map(_) => match c.get(\"{tag}\") {{\n\
         Some(serde::Content::Str(__t)) => match __t.as_str() {{\n\
         {arms}\
         other => Err(format!(\"unknown variant `{{other}}` for `{name}`\")),\n\
         }},\n\
         _ => Err(\"missing `{tag}` tag for `{name}`\".to_string()),\n\
         }},\n\
         other => Err(format!(\"expected object for `{name}`, found {{}}\", other.kind())),\n\
         }}"
    )
}
