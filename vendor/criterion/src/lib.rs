//! Vendored stand-in for the slice of `criterion` these benches use. It
//! runs each benchmark closure for a warm-up pass and a bounded measurement
//! pass, then prints mean / min latency per iteration. No statistics
//! machinery, no HTML reports — just enough to keep `cargo bench` useful
//! offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            name,
            self.default_sample_size,
            self.default_measurement_time,
            &mut f,
        );
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("x", "y"), &5, |b, v| b.iter(|| v * 2));
        group.finish();
    }
}
