//! Cross-crate engine tests: the four architectures over real benchmark
//! datasets and dashboard-emitted queries.

use simba::prelude::*;
use std::sync::Arc;

/// Dashboard-shaped queries over the customer service dataset.
fn workload() -> Vec<Select> {
    [
        "SELECT COUNT(lost_calls) FROM customer_service",
        "SELECT queue, COUNT(calls) FROM customer_service GROUP BY queue",
        "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
         WHERE queue IN ('A') GROUP BY queue, hour, call_direction",
        "SELECT rep_id, COUNT(calls) FROM customer_service GROUP BY rep_id \
         ORDER BY COUNT(calls) DESC LIMIT 5",
        "SELECT SUM(abandoned), COUNT(calls) FROM customer_service WHERE hour BETWEEN 9 AND 17",
        "SELECT hour, COUNT(calls) AS call_volume, SUM(abandoned) AS call_abandonment \
         FROM customer_service GROUP BY hour",
        "SELECT queue, COUNT(lost_calls) FROM customer_service GROUP BY queue \
         HAVING COUNT(lost_calls) > 1",
        "SELECT queue, AVG(handle_time) FROM customer_service \
         WHERE call_direction = 'incoming' AND satisfaction >= 3 GROUP BY queue",
    ]
    .iter()
    .map(|s| parse_select(s).unwrap())
    .collect()
}

#[test]
fn four_engines_agree_on_dashboard_workload() {
    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(5_000, 42));
    let engines = all_engines();
    for e in &engines {
        e.register(table.clone());
    }
    for query in workload() {
        let base = engines[0].execute(&query).unwrap().result;
        for e in &engines[1..] {
            let rs = e.execute(&query).unwrap().result;
            if query.order_by.is_empty() {
                assert!(
                    base.multiset_eq(&rs),
                    "{} disagrees with {} on `{query}`",
                    e.name(),
                    engines[0].name()
                );
            } else {
                // With ORDER BY + LIMIT ties may break differently, but row
                // count and the sort-key column must agree.
                assert_eq!(base.n_rows(), rs.n_rows(), "`{query}`");
            }
        }
    }
}

#[test]
fn engines_agree_on_every_dataset() {
    for ds in DashboardDataset::ALL {
        let table = Arc::new(ds.generate_rows(2_000, 7));
        let engines = all_engines();
        for e in &engines {
            e.register(table.clone());
        }
        // A generic query valid on every dataset: count rows by first column.
        let first_col = &ds.schema().columns[0].name;
        let sql = format!(
            "SELECT {first_col}, COUNT(*) FROM {} GROUP BY {first_col}",
            ds.table_name()
        );
        let query = parse_select(&sql).unwrap();
        let base = engines[0].execute(&query).unwrap().result;
        for e in &engines[1..] {
            let rs = e.execute(&query).unwrap().result;
            assert!(base.multiset_eq(&rs), "{} on {}", e.name(), ds.title());
        }
    }
}

#[test]
fn execution_stats_are_consistent() {
    let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(3_000, 5));
    let engines = all_engines();
    for e in &engines {
        e.register(table.clone());
    }
    let query = parse_select(
        "SELECT service, COUNT(*) FROM it_monitor WHERE severity IN ('error', 'critical') \
         GROUP BY service",
    )
    .unwrap();
    let outputs: Vec<_> = engines.iter().map(|e| e.execute(&query).unwrap()).collect();
    for out in &outputs {
        assert_eq!(out.stats.rows_scanned, 3_000);
        assert!(out.stats.rows_matched <= out.stats.rows_scanned);
        assert_eq!(out.stats.groups, out.result.n_rows());
    }
    // All engines must see the same match counts (same predicate semantics).
    for out in &outputs[1..] {
        assert_eq!(out.stats.rows_matched, outputs[0].stats.rows_matched);
    }
}

#[test]
fn engine_errors_are_typed_not_panics() {
    let engine = EngineKind::SqliteLike.build();
    let table = Arc::new(DashboardDataset::MyRide.generate_rows(100, 1));
    engine.register(table);

    // Unknown table.
    let q = parse_select("SELECT x FROM nope").unwrap();
    assert!(engine.execute(&q).is_err());
    // Unknown column.
    let q = parse_select("SELECT missing_col FROM my_ride").unwrap();
    assert!(engine.execute(&q).is_err());
    // Ungrouped column.
    let q =
        parse_select("SELECT terrain, weather, COUNT(*) FROM my_ride GROUP BY terrain").unwrap();
    assert!(engine.execute(&q).is_err());
}

#[test]
fn empty_table_queries_behave() {
    let engine = EngineKind::MonetDbLike.build();
    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(0, 1));
    engine.register(table);
    let grouped =
        parse_select("SELECT queue, COUNT(*) FROM customer_service GROUP BY queue").unwrap();
    assert_eq!(engine.execute(&grouped).unwrap().result.n_rows(), 0);
    let global = parse_select("SELECT COUNT(*), SUM(calls) FROM customer_service").unwrap();
    let rs = engine.execute(&global).unwrap().result;
    assert_eq!(rs.n_rows(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(0));
    assert!(rs.rows[0][1].is_null());
}

#[test]
fn scale_increases_work_not_results_shape() {
    // Result shape (groups) stays fixed as data grows; scanned rows grow.
    let engine = EngineKind::DuckDbLike.build();
    let small = Arc::new(DashboardDataset::CustomerService.generate_rows(1_000, 2));
    let query =
        parse_select("SELECT queue, COUNT(*) FROM customer_service GROUP BY queue").unwrap();

    engine.register(small);
    let small_out = engine.execute(&query).unwrap();

    let large = Arc::new(DashboardDataset::CustomerService.generate_rows(10_000, 2));
    engine.register(large);
    let large_out = engine.execute(&query).unwrap();

    assert_eq!(small_out.result.n_rows(), large_out.result.n_rows());
    assert!(large_out.stats.rows_scanned > small_out.stats.rows_scanned);
}
