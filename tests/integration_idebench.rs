//! SIMBA-vs-IDEBench comparison tests (§6.3): the structural differences
//! the paper reports must hold in our reproduction.

use simba::idebench::complexity::FleetComplexity;
use simba::idebench::DashboardComplexity;
use simba::prelude::*;
use std::sync::Arc;

fn setup() -> (Arc<Table>, Arc<dyn Dbms>) {
    let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(2_000, 8));
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table.clone());
    (table, engine)
}

#[test]
fn idebench_generates_more_visualizations_than_the_real_dashboard() {
    // §6.3: IT Monitor has 3 visualizations; IDEBench creates 7–20.
    let (table, engine) = setup();
    for seed in 0..5 {
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed,
                interactions: 5,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(log.dashboard.vizzes.len() >= 7);
        assert!(
            log.dashboard.vizzes.len() > 3,
            "more than the real IT Monitor"
        );
    }
}

#[test]
fn idebench_emphasizes_filters_simba_balances() {
    // Table 4 / §6.3: IDEBench ~13.2 filters & 2.1 attrs per query;
    // SIMBA ~5.8 filters & 3.8 attrs. Our reproduction must show the same
    // imbalance: IDEBench more filters per query, fewer attributes.
    let (table, engine) = setup();

    // IDEBench side: longer sessions accumulate filters.
    let mut ide_filters = 0.0;
    let mut ide_attrs = 0.0;
    let runs = 4;
    for seed in 0..runs {
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed,
                interactions: 25,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        let c = DashboardComplexity::from_log(&log);
        ide_filters += c.avg_filters_per_query;
        ide_attrs += c.avg_attrs_per_viz;
    }
    ide_filters /= runs as f64;
    ide_attrs /= runs as f64;

    // SIMBA side: constrained by the real dashboard.
    let dashboard = Dashboard::new(builtin(DashboardDataset::ItMonitor), &table).unwrap();
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
    let mut simba_stats = Vec::new();
    for seed in 0..runs {
        let log = SessionRunner::new(
            &dashboard,
            engine.as_ref(),
            SessionConfig {
                seed,
                max_steps: 25,
                stop_on_completion: false,
                ..Default::default()
            },
        )
        .run(&goals)
        .unwrap();
        if let Some(stats) = WorkloadStats::from_log(&log) {
            simba_stats.push(stats);
        }
    }
    let simba_filters =
        simba_stats.iter().map(|s| s.filters_avg).sum::<f64>() / simba_stats.len() as f64;

    assert!(
        ide_filters > simba_filters,
        "IDEBench filters/query ({ide_filters:.1}) must exceed SIMBA's ({simba_filters:.1})"
    );
    assert!(ide_attrs > 0.0);
}

#[test]
fn fifty_workflow_fleet_matches_figure_9_shape() {
    // Figure 9 statistics: avg ~13 visualizations (min 7, max 20), several
    // updates per interaction.
    let (table, engine) = setup();
    let profiles: Vec<DashboardComplexity> = (0..50)
        .map(|seed| {
            let log = IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                IdeBenchConfig {
                    seed,
                    interactions: 3,
                    ..Default::default()
                },
            )
            .run()
            .unwrap();
            DashboardComplexity::from_log(&log)
        })
        .collect();
    let fleet = FleetComplexity::from_runs(&profiles).unwrap();
    assert!(
        (10.0..=16.0).contains(&fleet.viz_avg),
        "avg viz {}",
        fleet.viz_avg
    );
    assert_eq!(fleet.viz_min, 7);
    assert!(fleet.viz_max >= 18, "max viz {}", fleet.viz_max);
    assert!(fleet.updates_avg >= 4.0, "updates {}", fleet.updates_avg);
}

#[test]
fn idebench_and_simba_share_metric_machinery() {
    // Both log formats must feed the same duration summary code — the
    // benchmarks are "equivalent in terms of metrics" (§5).
    let (table, engine) = setup();
    let ide_log = IdeBenchRunner::new(
        &table,
        engine.as_ref(),
        IdeBenchConfig {
            seed: 1,
            interactions: 5,
            ..Default::default()
        },
    )
    .run()
    .unwrap();
    let ide_summary = DurationSummary::from_durations(&ide_log.durations()).unwrap();

    let dashboard = Dashboard::new(builtin(DashboardDataset::ItMonitor), &table).unwrap();
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
    let simba_log = SessionRunner::new(
        &dashboard,
        engine.as_ref(),
        SessionConfig {
            seed: 1,
            max_steps: 5,
            stop_on_completion: false,
            ..Default::default()
        },
    )
    .run(&goals)
    .unwrap();
    let simba_summary = DurationSummary::from_durations(&simba_log.durations()).unwrap();

    assert!(ide_summary.count > 0);
    assert!(simba_summary.count > 0);
}
