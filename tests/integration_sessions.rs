//! End-to-end session tests: every built-in dashboard × compatible workflow
//! simulated against a real engine, with log invariants checked.

use simba::prelude::*;
use std::sync::Arc;

fn dashboard_for(ds: DashboardDataset, rows: usize, seed: u64) -> (Dashboard, Arc<dyn Dbms>) {
    let table = Arc::new(ds.generate_rows(rows, seed));
    let dashboard = Dashboard::new(builtin(ds), &table).expect("valid builtin spec");
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);
    (dashboard, engine)
}

#[test]
fn every_dashboard_runs_every_compatible_workflow() {
    for ds in DashboardDataset::ALL {
        let (dashboard, engine) = dashboard_for(ds, 1_500, 11);
        for wf in Workflow::ALL {
            let Ok(goals) = wf.goals_for(&dashboard) else {
                continue; // incompatible combination (MyRide × correlations)
            };
            let config = SessionConfig {
                seed: 5,
                max_steps: 10,
                ..Default::default()
            };
            let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                .run(&goals)
                .unwrap_or_else(|e| panic!("{} × {}: {e}", ds.title(), wf.name()));
            assert!(log.query_count() > 0, "{} × {}", ds.title(), wf.name());
            assert_eq!(log.dashboard, dashboard.spec().name);
            // Step 0 renders every visualization.
            assert_eq!(
                log.entries[0].queries.len(),
                dashboard.spec().visualizations.len()
            );
        }
    }
}

#[test]
fn oracle_dominated_sessions_solve_more_goals_than_markov_only() {
    let (dashboard, engine) = dashboard_for(DashboardDataset::CustomerService, 2_000, 3);
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();

    let mut oracle_solved = 0usize;
    let mut markov_solved = 0usize;
    for seed in 0..4 {
        let oracle_cfg = SessionConfig {
            seed,
            max_steps: 25,
            decay: DecayConfig::oracle_only(),
            ..Default::default()
        };
        let markov_cfg = SessionConfig {
            seed,
            max_steps: 25,
            decay: DecayConfig::markov_only(),
            ..Default::default()
        };
        let o = SessionRunner::new(&dashboard, engine.as_ref(), oracle_cfg)
            .run(&goals)
            .unwrap();
        let m = SessionRunner::new(&dashboard, engine.as_ref(), markov_cfg)
            .run(&goals)
            .unwrap();
        oracle_solved += o.goals.iter().filter(|g| g.solved_at.is_some()).count();
        markov_solved += m.goals.iter().filter(|g| g.solved_at.is_some()).count();
    }
    assert!(
        oracle_solved > markov_solved,
        "oracle {oracle_solved} vs markov {markov_solved}"
    );
}

#[test]
fn interleaved_sessions_start_markov_and_end_oracle() {
    let (dashboard, engine) = dashboard_for(DashboardDataset::ItMonitor, 1_500, 9);
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
    // High-decay config: early steps Markov, later steps Oracle.
    let config = SessionConfig {
        seed: 2,
        max_steps: 20,
        stop_on_completion: false,
        decay: DecayConfig {
            initial_markov: 0.95,
            decay_rate: 0.4,
        },
        ..Default::default()
    };
    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
        .run(&goals)
        .unwrap();
    let models: Vec<&str> = log
        .entries
        .iter()
        .skip(1)
        .map(|e| match e.model {
            simba::core::session::ModelChoice::Markov => "m",
            simba::core::session::ModelChoice::Oracle => "o",
            _ => "i",
        })
        .collect();
    // Both models must appear.
    assert!(models.contains(&"m"), "{models:?}");
    assert!(models.contains(&"o"), "{models:?}");
    // Late-session steps should be Oracle-dominated.
    let late = &models[models.len() / 2..];
    let oracle_late = late.iter().filter(|m| **m == "o").count();
    assert!(oracle_late * 2 >= late.len(), "{models:?}");
}

#[test]
fn goal_outcomes_are_ordered_and_monotonic() {
    let (dashboard, engine) = dashboard_for(DashboardDataset::CustomerService, 1_500, 31);
    let goals = Workflow::Crossfilter.goals_for(&dashboard).unwrap();
    let config = SessionConfig {
        seed: 8,
        max_steps: 35,
        decay: DecayConfig::oracle_only(),
        ..Default::default()
    };
    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
        .run(&goals)
        .unwrap();
    // The Oracle pursues goals in order, but later goals may complete
    // incidentally (e.g. at the initial render). Invariants that must hold:
    // the first goal is solved, and every solve step is within bounds.
    assert!(
        log.goals[0].solved_at.is_some(),
        "first goal must be solved: {:?}",
        log.goals
    );
    for outcome in &log.goals {
        if let Some(step) = outcome.solved_at {
            assert!(step <= 35);
            assert!(outcome.method.is_some());
        }
    }
    let solved = log.goals.iter().filter(|g| g.solved_at.is_some()).count();
    assert!(
        solved >= 2,
        "oracle-only crossfilter session should solve most goals: {solved}"
    );
}

#[test]
fn different_engines_same_session_shape() {
    // The same seed must produce the same interaction sequence regardless of
    // the engine (latency differs; decisions must not).
    let ds = DashboardDataset::CirculationActivity;
    let table = Arc::new(ds.generate_rows(1_000, 17));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();

    let mut all_actions: Vec<Vec<String>> = Vec::new();
    for kind in EngineKind::ALL {
        let engine = kind.build();
        engine.register(table.clone());
        let config = SessionConfig {
            seed: 55,
            max_steps: 8,
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .unwrap();
        all_actions.push(log.entries.iter().map(|e| e.action.clone()).collect());
    }
    for other in &all_actions[1..] {
        assert_eq!(&all_actions[0], other);
    }
}

#[test]
fn workload_stats_computable_from_logs() {
    let (dashboard, engine) = dashboard_for(DashboardDataset::CustomerService, 1_000, 77);
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
    let config = SessionConfig {
        seed: 1,
        max_steps: 10,
        stop_on_completion: false,
        ..Default::default()
    };
    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
        .run(&goals)
        .unwrap();
    let stats = WorkloadStats::from_log(&log).expect("non-empty workload");
    assert!(stats.queries > 0);
    assert!(stats.data_columns_avg > 0.0);
    let durations = log.durations();
    let summary = DurationSummary::from_durations(&durations).unwrap();
    assert!(summary.mean_ms >= 0.0);
    assert!(summary.p95_ms >= summary.p50_ms);
}

#[test]
fn realism_probe_distinguishes_randomization_levels() {
    // §6.4: over-randomized sessions emit repeated empty-result queries;
    // goal-directed sessions rarely do.
    use simba::core::metrics::realism::empty_result_stats;
    let (dashboard, engine) = dashboard_for(DashboardDataset::ItMonitor, 1_500, 13);
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();

    let mut markov_empty = 0usize;
    let mut oracle_empty = 0usize;
    for seed in 0..3 {
        let markov = SessionRunner::new(
            &dashboard,
            engine.as_ref(),
            SessionConfig {
                seed,
                max_steps: 20,
                stop_on_completion: false,
                decay: DecayConfig::markov_only(),
                ..Default::default()
            },
        )
        .run(&goals)
        .unwrap();
        let oracle = SessionRunner::new(
            &dashboard,
            engine.as_ref(),
            SessionConfig {
                seed,
                max_steps: 20,
                stop_on_completion: false,
                decay: DecayConfig::oracle_only(),
                ..Default::default()
            },
        )
        .run(&goals)
        .unwrap();
        markov_empty += empty_result_stats(&markov).empty_interactions;
        oracle_empty += empty_result_stats(&oracle).empty_interactions;
    }
    assert!(
        markov_empty >= oracle_empty,
        "markov {markov_empty} vs oracle {oracle_empty}"
    );
}
