//! JSON specification-language tests (§3.0.1): round trips, hand-written
//! specs, and failure modes.

use simba::prelude::*;
use std::sync::Arc;

#[test]
fn builtin_specs_round_trip_through_json() {
    for spec in all_builtin() {
        let json = spec.to_json();
        let parsed = DashboardSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }
}

#[test]
fn hand_written_json_spec_drives_a_session() {
    // A developer-authored dashboard in the JSON specification language.
    let json = r#"{
        "name": "mini_cs",
        "title": "Mini Customer Service",
        "dashboard_type": "operational_decision_making",
        "database": {
            "table": "customer_service",
            "fields": [
                { "name": "queue", "role": "categorical" },
                { "name": "calls", "role": "quantitative" },
                { "name": "lost_calls", "role": "quantitative" },
                { "name": "hour", "role": "temporal" }
            ]
        },
        "visualizations": [
            {
                "id": "lost",
                "title": "Lost Calls",
                "mark": "stat",
                "dimensions": [],
                "measures": [ { "func": "count", "field": "lost_calls" } ],
                "raw_fields": [],
                "selectable": false
            },
            {
                "id": "by_queue",
                "title": "Calls by Queue",
                "mark": "bar",
                "dimensions": [ { "field": "queue" } ],
                "measures": [ { "func": "count", "field": "calls" } ],
                "raw_fields": [],
                "selectable": true
            }
        ],
        "widgets": [
            {
                "id": "queue_box",
                "title": "Queue",
                "control": { "kind": "checkbox", "field": "queue" }
            }
        ],
        "links": [
            { "source": "queue_box", "target": "lost" },
            { "source": "queue_box", "target": "by_queue" },
            { "source": "by_queue", "target": "lost" }
        ]
    }"#;
    let spec = DashboardSpec::from_json(json).unwrap();
    assert_eq!(spec.visualizations.len(), 2);

    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(1_500, 23));
    let dashboard = Dashboard::new(spec, &table).unwrap();
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
    let config = SessionConfig {
        seed: 3,
        max_steps: 20,
        decay: DecayConfig::oracle_only(),
        ..Default::default()
    };
    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
        .run(&goals)
        .unwrap();
    assert!(log.query_count() > 0);
    assert!(
        log.goals.iter().any(|g| g.solved_at.is_some()),
        "goals: {:?}",
        log.goals
            .iter()
            .map(|g| (&g.question, g.solved_at))
            .collect::<Vec<_>>()
    );
}

#[test]
fn invalid_specs_are_rejected_with_reasons() {
    let mut spec = builtin(DashboardDataset::MyRide);
    spec.links.push(simba::core::spec::LinkSpec {
        source: "ghost".into(),
        target: "hr_by_segment".into(),
    });
    let table = DashboardDataset::MyRide.generate_rows(100, 1);
    let err = Dashboard::new(spec, &table).unwrap_err();
    assert!(matches!(err, CoreError::UnknownNode(_)), "{err}");
}

#[test]
fn spec_field_must_exist_in_physical_schema() {
    let mut spec = builtin(DashboardDataset::MyRide);
    spec.database
        .fields
        .push(simba::core::spec::FieldSpec::quantitative("phantom"));
    let table = DashboardDataset::MyRide.generate_rows(100, 1);
    let err = Dashboard::new(spec, &table).unwrap_err();
    assert!(matches!(err, CoreError::UnknownField(_)), "{err}");
}

#[test]
fn json_rejects_bad_role_and_mark_names() {
    let bad_role = r#"{
        "name": "x", "title": "X",
        "database": { "table": "t", "fields": [ { "name": "a", "role": "wibble" } ] },
        "visualizations": []
    }"#;
    assert!(DashboardSpec::from_json(bad_role).is_err());
}

#[test]
fn goal_algebra_serializes_with_serde() {
    // Goal expressions are serde-serializable for experiment manifests.
    let goal = parse_goal("queue x count(lost_calls)").unwrap();
    let json = serde_json::to_string(&goal).unwrap();
    let back: simba::core::GoalExpr = serde_json::from_str(&json).unwrap();
    assert_eq!(goal, back);
}
