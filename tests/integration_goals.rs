//! Goal pipeline tests: algebra text → SQL → execution → equivalence.

use simba::core::algebra::templates::FieldChoice;
use simba::core::algebra::to_sql::to_sql;
use simba::core::equivalence::{
    semantic_equivalent, semantically_subsumes, syntactic_equivalent, GoalChecker, Method,
};
use simba::prelude::*;
use simba::store::CoverageStore;
use std::sync::Arc;

fn engine_with_cs() -> Arc<dyn Dbms> {
    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(3_000, 19));
    let engine = EngineKind::PostgresLike.build();
    engine.register(table);
    engine
}

#[test]
fn algebra_text_to_executable_sql() {
    let engine = engine_with_cs();
    let goal = parse_goal("queue x count(lost_calls) - {count(lost_calls) < 2}").unwrap();
    let query = to_sql(&goal, "customer_service").unwrap();
    let out = engine.execute(&query).unwrap();
    // Every row passes the HAVING threshold.
    for row in &out.result.rows {
        let count = row[1].as_i64().unwrap();
        assert!(count >= 2, "{count}");
    }
}

#[test]
fn all_templates_execute_on_their_datasets() {
    let engine = engine_with_cs();
    let choice = FieldChoice::new(
        "customer_service",
        vec!["queue".into(), "rep_id".into()],
        vec!["lost_calls".into(), "abandoned".into()],
        vec!["hour".into()],
    );
    for kind in GoalTemplateKind::ALL {
        let goal = kind.instantiate(&choice).unwrap();
        let out = engine.execute(&goal.query);
        assert!(out.is_ok(), "{}: {:?}", kind.name(), out.err());
    }
}

#[test]
fn figure_3_coverage_by_four_fragments() {
    // The paper's Figure 3/4 walkthrough end to end: the per-queue goal is
    // covered by the union of four single-queue fragment queries.
    let engine = engine_with_cs();
    let goal_query =
        parse_select("SELECT queue, COUNT(lost_calls) FROM customer_service GROUP BY queue")
            .unwrap();
    let goal_result = engine.execute(&goal_query).unwrap().result;
    let mut checker = GoalChecker::new(goal_query, goal_result);

    let mut coverage = CoverageStore::new();
    let mut solved = None;
    for queue in ["B", "C", "A", "D"] {
        let fragment = parse_select(&format!(
            "SELECT COUNT(lost_calls) FROM customer_service WHERE queue IN ('{queue}')"
        ))
        .unwrap();
        let out = engine.execute(&fragment).unwrap();
        coverage.absorb(&simba::core::equivalence::augment_result(
            &fragment, out.result,
        ));
        solved = checker.check_result(&coverage);
        if solved.is_some() {
            break;
        }
    }
    assert_eq!(
        solved,
        Some(Method::Result),
        "goal must complete on the fourth fragment"
    );
}

#[test]
fn three_equivalence_methods_trigger_appropriately() {
    let a = parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap();
    // Identical text modulo whitespace → syntactic.
    let b = parse_select("select queue , count(*) from cs group by queue").unwrap();
    assert!(syntactic_equivalent(&a, &b));
    // Alternative formulation → semantic.
    let c = parse_select("SELECT COUNT(*) AS n, queue FROM cs GROUP BY queue").unwrap();
    assert!(!syntactic_equivalent(&a, &c));
    assert!(semantic_equivalent(&a, &c));
    // Wider query → subsumption.
    let d = parse_select("SELECT queue, COUNT(*), SUM(calls) FROM cs GROUP BY queue").unwrap();
    assert!(!semantic_equivalent(&a, &d));
    assert!(semantically_subsumes(&d, &a));
}

#[test]
fn goals_can_be_specified_directly_in_sql() {
    // "dashboard developers can specify user goals directly in SQL" (§4.1).
    let engine = engine_with_cs();
    let query =
        parse_select("SELECT rep_id, AVG(handle_time) FROM customer_service GROUP BY rep_id")
            .unwrap();
    let result = engine.execute(&query).unwrap().result;
    let goal = Goal::from_sql(
        GoalTemplateKind::MeasuringDifferences,
        "Which rep handles calls slowest?",
        query.clone(),
    );
    let mut checker = GoalChecker::new(goal.query.clone(), result);
    // Emitting the same query solves the goal syntactically.
    assert_eq!(checker.check_emitted(&query), Some(Method::Syntactic));
}

#[test]
fn example_2_2_average_forms_agree_end_to_end() {
    // AVG(x) vs SUM(x)/COUNT(x): equivalent per §2.2, identical when run.
    let engine = engine_with_cs();
    let a = parse_select(
        "SELECT rep_id, SUM(handle_time) / COUNT(handle_time) FROM customer_service \
         GROUP BY rep_id",
    )
    .unwrap();
    let b = parse_select("SELECT rep_id, AVG(handle_time) FROM customer_service GROUP BY rep_id")
        .unwrap();
    assert!(semantic_equivalent(&a, &b));
    let ra = engine.execute(&a).unwrap().result;
    let rb = engine.execute(&b).unwrap().result;
    // Values agree row-for-row (column names differ).
    let mut sa = ra.sorted_rows();
    let mut sb = rb.sorted_rows();
    sa.sort();
    sb.sort();
    assert_eq!(sa, sb);
}

#[test]
fn unsatisfiable_goal_never_completes() {
    let engine = engine_with_cs();
    let impossible = parse_select(
        "SELECT queue, COUNT(*) FROM customer_service WHERE queue IN ('ZZZ') GROUP BY queue",
    )
    .unwrap();
    let goal_result = engine.execute(&impossible).unwrap().result;
    assert!(goal_result.is_empty());
    // An empty goal result is trivially covered — SIMBA treats "nothing to
    // see" as seen. This mirrors result subsumption over empty sets.
    let checker = GoalChecker::new(impossible, goal_result);
    let coverage = CoverageStore::new();
    assert_eq!(coverage.covered_rows(&checker.goal_result), 0);
    assert!(coverage.covers(&checker.goal_result));
}
