//! Property tests for the wire decoder: a stream of valid frames must
//! decode identically no matter how the bytes are torn into reads, and
//! arbitrary garbage must never panic, never allocate past the declared
//! payload cap, and always either park (waiting for more bytes) or fail
//! with a protocol error — the decoder has no third state.

use proptest::prelude::*;
use simba_server::{Decoder, Frame, FrameKind, Request, PROTOCOL_VERSION};

/// Strategy for a valid frame: request/response kind, any id, and a
/// payload of arbitrary bytes (the decoder does not parse JSON; payload
/// interpretation happens a layer up).
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        prop_oneof![Just(FrameKind::Request), Just(FrameKind::Response)],
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(kind, id, payload)| {
            Frame::new(kind, id, payload).expect("payload under the size cap")
        })
}

/// Split `bytes` at the given cut fractions, yielding 1..=n+1 chunks that
/// concatenate back to the original — models arbitrary short reads.
fn tear(bytes: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    points.sort_unstable();
    let mut chunks = Vec::new();
    let mut start = 0;
    for p in points {
        chunks.push(bytes[start..p].to_vec());
        start = p;
    }
    chunks.push(bytes[start..].to_vec());
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Frames survive any tearing of the byte stream: feed the encoded
    /// stream chunk by chunk and the decoder yields exactly the original
    /// frames, in order, with nothing left buffered.
    #[test]
    fn torn_reads_reassemble_exactly(
        frames in proptest::collection::vec(frame_strategy(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut decoder = Decoder::new();
        let mut decoded = Vec::new();
        for chunk in tear(&stream, &cuts) {
            decoder.feed(&chunk);
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded.len(), frames.len());
        for (got, want) in decoded.iter().zip(&frames) {
            prop_assert_eq!(got.kind, want.kind);
            prop_assert_eq!(got.request_id, want.request_id);
            prop_assert_eq!(&got.payload, &want.payload);
        }
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// Arbitrary bytes never panic the decoder. Each `next_frame` call
    /// either parks on a short read, yields a frame, or reports a protocol
    /// error; after the first error the stream is poisoned and every later
    /// call must keep failing rather than resynchronize on garbage.
    #[test]
    fn garbage_never_panics_and_errors_stick(
        noise in proptest::collection::vec(any::<u8>(), 0..256),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut decoder = Decoder::new();
        let mut poisoned = false;
        for chunk in tear(&noise, &cuts) {
            decoder.feed(&chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => prop_assert!(!poisoned, "frame after a protocol error"),
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
        }
        if poisoned {
            prop_assert!(decoder.next_frame().is_err(), "poisoned decoder recovered");
        }
    }

    /// A real frame preceded by garbage fails cleanly (bad magic) instead
    /// of hunting for the embedded valid frame — resync on a binary
    /// protocol risks misframing, so the connection is dropped instead.
    #[test]
    fn leading_garbage_poisons_instead_of_resyncing(
        junk in proptest::collection::vec(any::<u8>(), 1..32),
        id in any::<u64>(),
    ) {
        // Force the junk to not accidentally start a valid header.
        let mut junk = junk;
        if junk[0] == b'S' {
            junk[0] = b'X';
        }
        let mut decoder = Decoder::new();
        decoder.feed(&junk);
        let frame = Frame::request(id, &Request::Stats).expect("encodes");
        decoder.feed(&frame.encode());
        // Enough bytes for a header are now buffered; the magic check
        // must reject the stream even though a valid frame follows.
        prop_assert!(decoder.next_frame().is_err());
    }
}

/// The version byte is load-bearing: the same frame with a bumped version
/// is rejected, which is what lets the format evolve behind the number.
#[test]
fn future_protocol_version_is_rejected() {
    let frame = Frame::request(7, &Request::Stats).expect("encodes");
    let mut bytes = frame.encode();
    bytes[4] = PROTOCOL_VERSION + 1;
    let mut decoder = Decoder::new();
    decoder.feed(&bytes);
    assert!(decoder.next_frame().is_err());
}
