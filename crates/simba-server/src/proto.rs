//! The wire protocol: length-prefixed binary frames with JSON payloads.
//!
//! Every message on a connection is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SMBA" (0x53 0x4D 0x42 0x41)
//! 4       1     protocol version (currently 1)
//! 5       1     frame kind: 0 = request, 1 = response
//! 6       8     request id, u64 little-endian
//! 14      4     payload length, u32 little-endian
//! 18      n     payload: UTF-8 JSON of a [`Request`] or [`Response`]
//! ```
//!
//! The header is fixed-size and self-describing, so a [`Decoder`] can
//! reassemble frames from arbitrarily torn reads (TCP gives a byte
//! stream, not messages). Request ids correlate responses with requests:
//! clients may pipeline several requests before reading any response, and
//! the server echoes each request's id on its response (responses come
//! back in request order on one connection).
//!
//! # Versioning rules
//!
//! * The magic and the version byte never move.
//! * A version bump means the *payload schema* changed incompatibly;
//!   frames with an unknown version are rejected before payload parsing.
//! * Within a version, payloads evolve only additively (serde's external
//!   enum tagging ignores nothing — new request kinds require a bump).
//!
//! # Why JSON payloads inside binary frames
//!
//! The framing is binary because stream reassembly and backpressure
//! accounting want fixed offsets and an upfront length; the payloads are
//! JSON (via the vendored `serde_json`) because every type that crosses
//! the wire — queries as SQL text, [`ResultSet`]s, [`EngineError`]s —
//! already round-trips through it byte-exactly, which is the property the
//! remote-vs-local fingerprint equality test pins.

use serde::{Deserialize, Serialize};
use simba_engine::{EngineError, ExecStats, QueryCtx};
use simba_store::{ResultSet, Schema, Table, TableBuilder, Value};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SMBA";

/// Current protocol version; bumped on any incompatible payload change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed frame header size in bytes (magic + version + kind + id + len).
pub const HEADER_LEN: usize = 18;

/// Upper bound on a single frame's payload (64 MiB). A length field above
/// this is treated as a protocol error rather than an allocation request —
/// a garbage or hostile header must not OOM the server.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// What went wrong at the wire layer.
///
/// The two variants deliberately mirror the [`EngineError`] retry
/// classification the client maps them onto: transport failures
/// ([`WireError::Io`]) are worth retrying on a fresh connection
/// (→ `EngineError::Transient`), malformed or mismatched frames
/// ([`WireError::Protocol`]) describe a bug, not a moment
/// (→ `EngineError::Internal`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The transport failed (connect refused, reset, short write, EOF).
    Io(String),
    /// The bytes were readable but not a valid frame or payload.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(m) => write!(f, "wire i/o error: {m}"),
            WireError::Protocol(m) => write!(f, "wire protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.to_string())
    }
}

/// Direction tag in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server.
    Request,
    /// Server → client.
    Response,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_code(b: u8) -> Option<FrameKind> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// One reassembled frame: header fields plus the raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Direction of the frame.
    pub kind: FrameKind,
    /// Correlates a response with the request that caused it.
    pub request_id: u64,
    /// UTF-8 JSON of a [`Request`] or [`Response`].
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame, rejecting payloads over [`MAX_PAYLOAD`].
    pub fn new(kind: FrameKind, request_id: u64, payload: Vec<u8>) -> Result<Frame, WireError> {
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(WireError::Protocol(format!(
                "payload of {} bytes exceeds the {MAX_PAYLOAD}-byte frame limit",
                payload.len()
            )));
        }
        Ok(Frame {
            kind,
            request_id,
            payload,
        })
    }

    /// Frame carrying a serialized [`Request`].
    pub fn request(request_id: u64, req: &Request) -> Result<Frame, WireError> {
        let json = serde_json::to_string(req)
            .map_err(|e| WireError::Protocol(format!("request does not serialize: {e}")))?;
        Frame::new(FrameKind::Request, request_id, json.into_bytes())
    }

    /// Frame carrying a serialized [`Response`].
    pub fn response(request_id: u64, resp: &Response) -> Result<Frame, WireError> {
        let json = serde_json::to_string(resp)
            .map_err(|e| WireError::Protocol(format!("response does not serialize: {e}")))?;
        Frame::new(FrameKind::Response, request_id, json.into_bytes())
    }

    /// Serialize the frame to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.kind.code());
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse the payload as a [`Request`].
    pub fn parse_request(&self) -> Result<Request, WireError> {
        parse_payload(&self.payload)
    }

    /// Parse the payload as a [`Response`].
    pub fn parse_response(&self) -> Result<Response, WireError> {
        parse_payload(&self.payload)
    }
}

fn parse_payload<T: Deserialize>(payload: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| WireError::Protocol(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| WireError::Protocol(format!("bad payload: {e}")))
}

/// Incremental frame reassembler for a byte stream.
///
/// Feed reads of any size with [`feed`](Decoder::feed), then drain
/// complete frames with [`next_frame`](Decoder::next_frame). Torn
/// headers, torn payloads, and multiple frames per read are all handled;
/// a corrupt header (bad magic, unknown version or kind, oversized
/// length) surfaces as a [`WireError::Protocol`] and poisons the stream —
/// framing can't resynchronize after garbage, so the connection must be
/// dropped.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append raw bytes read from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = &self.buf[..HEADER_LEN];
        if header[..4] != MAGIC {
            return Err(WireError::Protocol(format!(
                "bad magic {:02x?} (expected {:02x?})",
                &header[..4],
                MAGIC
            )));
        }
        if header[4] != PROTOCOL_VERSION {
            return Err(WireError::Protocol(format!(
                "unsupported protocol version {} (this build speaks {PROTOCOL_VERSION})",
                header[4]
            )));
        }
        let kind = FrameKind::from_code(header[5])
            .ok_or_else(|| WireError::Protocol(format!("unknown frame kind byte {}", header[5])))?;
        let mut id_bytes = [0u8; 8];
        id_bytes.copy_from_slice(&header[6..14]);
        let request_id = u64::from_le_bytes(id_bytes);
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&header[14..18]);
        let payload_len = u32::from_le_bytes(len_bytes);
        if payload_len > MAX_PAYLOAD {
            return Err(WireError::Protocol(format!(
                "declared payload of {payload_len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
            )));
        }
        let total = HEADER_LEN + payload_len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[HEADER_LEN..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame {
            kind,
            request_id,
            payload,
        }))
    }
}

/// Which engine instance a request addresses, by name and scan
/// parallelism — the server builds (and caches) one engine per distinct
/// selector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSel {
    /// Engine name (`"duckdb-like"`, `"postgres-like"`, ...).
    pub kind: String,
    /// Morsel-parallel scan threads; `1` = sequential, `0` = one per core.
    pub scan_threads: usize,
}

/// A table shipped row-major over the wire.
///
/// The dictionary encoding and zone maps are *not* shipped: the server
/// rebuilds them from the schema and row values, and query results are
/// value-level, so the rebuilt physical layout cannot change any result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTable {
    /// Logical schema (name, column types, analytic roles).
    pub schema: Schema,
    /// Row-major values; every row matches the schema width.
    pub rows: Vec<Vec<Value>>,
}

impl WireTable {
    /// Snapshot a table for shipping.
    pub fn from_table(table: &Table) -> WireTable {
        let mut rows = Vec::with_capacity(table.row_count());
        for i in 0..table.row_count() {
            rows.push(table.row(i));
        }
        WireTable {
            schema: table.schema().clone(),
            rows,
        }
    }

    /// Rebuild an in-memory table, validating width and value types
    /// first — the row data arrived over a network and must not be able
    /// to panic the builder.
    pub fn into_table(self) -> Result<Table, WireError> {
        let width = self.schema.width();
        for (i, row) in self.rows.iter().enumerate() {
            if row.len() != width {
                return Err(WireError::Protocol(format!(
                    "row {i} has {} values for a {width}-column schema",
                    row.len()
                )));
            }
            for (def, v) in self.schema.columns.iter().zip(row) {
                if !def.accepts(v) {
                    return Err(WireError::Protocol(format!(
                        "row {i} value {v:?} does not fit column `{}` ({:?})",
                        def.name, def.data_type
                    )));
                }
            }
        }
        let mut b = TableBuilder::new(self.schema, self.rows.len());
        for row in self.rows {
            b.push_row(row);
        }
        Ok(b.finish())
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Request {
    /// Register (or replace) a table in the addressed engine.
    RegisterTable {
        /// Engine instance to register into.
        engine: EngineSel,
        /// The table, shipped row-major.
        table: WireTable,
    },
    /// Execute one query, shipped as SQL text (`print_select`; the
    /// printer/parser round-trip is property-tested, so the server
    /// re-parses the exact same AST).
    Execute {
        /// Engine instance to execute on.
        engine: EngineSel,
        /// `SELECT` statement text.
        sql: String,
    },
    /// [`Request::Execute`] with the caller's deterministic execution
    /// identity attached (retry attempt, session/step/query position).
    ExecuteAt {
        /// Engine instance to execute on.
        engine: EngineSel,
        /// `SELECT` statement text.
        sql: String,
        /// Execution identity forwarded to [`simba_engine::Dbms::execute_at`].
        ctx: QueryCtx,
    },
    /// Snapshot the server's request/connection counters.
    Stats,
    /// Begin graceful drain: stop accepting connections, finish what is
    /// in flight, then exit.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Response {
    /// A table was registered.
    Registered {
        /// Rows the rebuilt table holds.
        rows: u64,
    },
    /// A query executed successfully.
    Result {
        /// The result set, value-exact.
        result: ResultSet,
        /// Server-side execution statistics.
        stats: ExecStats,
        /// Server-side execution latency in nanoseconds (excludes wire
        /// time; the client measures round-trip latency itself).
        elapsed_ns: u64,
    },
    /// The engine rejected or failed the query; the variant-exact
    /// [`EngineError`] is what the client re-surfaces.
    EngineFailure {
        /// The engine's error, with retry classification intact.
        error: EngineError,
    },
    /// Server counters, in response to [`Request::Stats`].
    Stats {
        /// Totals since the server started.
        stats: ServerStatsSnapshot,
    },
    /// Acknowledges [`Request::Shutdown`]; the server is now draining.
    ShuttingDown,
    /// The request frame parsed but could not be served (unknown engine,
    /// unparseable SQL, malformed table). Protocol-level, not an engine
    /// failure: the client maps it to [`EngineError::Internal`].
    BadRequest {
        /// Human-readable reason.
        message: String,
    },
}

/// Point-in-time server counters, shipped in [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Frames dispatched (all request kinds).
    pub requests: u64,
    /// Execute/ExecuteAt requests served.
    pub executes: u64,
    /// Tables registered.
    pub registers: u64,
    /// Executions that returned an [`EngineError`].
    pub engine_errors: u64,
    /// Requests answered with [`Response::BadRequest`] plus undecodable
    /// frames.
    pub protocol_errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request::ExecuteAt {
            engine: EngineSel {
                kind: "duckdb-like".into(),
                scan_threads: 2,
            },
            sql: "SELECT q, SUM(n) FROM t GROUP BY q".into(),
            ctx: QueryCtx {
                session: 3,
                step: 1,
                query: 4,
                attempt: 1,
            },
        }
    }

    #[test]
    fn frame_encodes_and_decodes() {
        let frame = Frame::request(42, &sample_request()).unwrap();
        let bytes = frame.encode();
        assert_eq!(&bytes[..4], &MAGIC);
        assert_eq!(bytes[4], PROTOCOL_VERSION);

        let mut d = Decoder::new();
        d.feed(&bytes);
        let back = d.next_frame().unwrap().expect("complete frame");
        assert_eq!(back, frame);
        assert_eq!(back.parse_request().unwrap(), sample_request());
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn requests_and_responses_round_trip_as_json() {
        let requests = [
            sample_request(),
            Request::Execute {
                engine: EngineSel {
                    kind: "sqlite-like".into(),
                    scan_threads: 1,
                },
                sql: "SELECT COUNT(*) FROM t".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in &requests {
            let json = serde_json::to_string(r).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, r, "{json}");
        }

        let responses = [
            Response::Registered { rows: 10 },
            Response::Result {
                result: ResultSet::new(
                    vec!["q".into(), "s".into()],
                    vec![vec![Value::str("A"), Value::Float(1.5)]],
                ),
                stats: ExecStats {
                    rows_scanned: 100,
                    rows_matched: 40,
                    groups: 2,
                    morsels_pruned: 1,
                    ..ExecStats::default()
                },
                elapsed_ns: 12_345,
            },
            Response::EngineFailure {
                error: EngineError::Transient("shed".into()),
            },
            Response::Stats {
                stats: ServerStatsSnapshot {
                    requests: 9,
                    ..ServerStatsSnapshot::default()
                },
            },
            Response::ShuttingDown,
            Response::BadRequest {
                message: "unknown engine `oracle`".into(),
            },
        ];
        for r in &responses {
            let json = serde_json::to_string(r).unwrap();
            let back: Response = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, r, "{json}");
        }
    }

    #[test]
    fn decoder_handles_torn_and_concatenated_frames() {
        let a = Frame::request(1, &Request::Stats).unwrap().encode();
        let b = Frame::request(2, &Request::Shutdown).unwrap().encode();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);

        // Feed one byte at a time: every prefix is a legal partial state.
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for byte in &stream {
            d.feed(std::slice::from_ref(byte));
            while let Some(f) = d.next_frame().unwrap() {
                got.push(f.request_id);
            }
        }
        assert_eq!(got, vec![1, 2]);

        // Feed everything at once: both frames drain back to back.
        let mut d = Decoder::new();
        d.feed(&stream);
        assert_eq!(d.next_frame().unwrap().map(|f| f.request_id), Some(1));
        assert_eq!(d.next_frame().unwrap().map(|f| f.request_id), Some(2));
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_rejects_garbage_headers() {
        let mut d = Decoder::new();
        d.feed(b"GARBAGE-NOT-A-FRAME");
        assert!(matches!(d.next_frame(), Err(WireError::Protocol(_))));

        // Wrong version.
        let mut bytes = Frame::request(1, &Request::Stats).unwrap().encode();
        bytes[4] = 99;
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert!(matches!(d.next_frame(), Err(WireError::Protocol(_))));

        // Unknown kind byte.
        let mut bytes = Frame::request(1, &Request::Stats).unwrap().encode();
        bytes[5] = 7;
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert!(matches!(d.next_frame(), Err(WireError::Protocol(_))));

        // Oversized declared payload.
        let mut bytes = Frame::request(1, &Request::Stats).unwrap().encode();
        bytes[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert!(matches!(d.next_frame(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn wire_table_round_trips_and_validates() {
        use simba_store::{ColumnDef, Schema};
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
            ],
        );
        let mut b = simba_store::TableBuilder::new(schema, 2);
        b.push_row(vec![Value::str("A"), Value::Int(1)]);
        b.push_row(vec![Value::str("B"), Value::Null]);
        let table = b.finish();

        let wire = WireTable::from_table(&table);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireTable = serde_json::from_str(&json).unwrap();
        let rebuilt = back.into_table().unwrap();
        assert_eq!(rebuilt.row_count(), 2);
        assert_eq!(rebuilt.row(0), table.row(0));
        assert_eq!(rebuilt.row(1), table.row(1));
        assert_eq!(rebuilt.schema(), table.schema());

        // Width and type mismatches are errors, not panics.
        let mut torn = wire.clone();
        torn.rows[1].pop();
        assert!(matches!(torn.into_table(), Err(WireError::Protocol(_))));
        let mut wrong = wire;
        wrong.rows[0][1] = Value::str("not an int");
        assert!(matches!(wrong.into_table(), Err(WireError::Protocol(_))));
    }

    #[test]
    fn oversized_payload_is_rejected_at_build_time() {
        let payload = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(
            Frame::new(FrameKind::Request, 0, payload),
            Err(WireError::Protocol(_))
        ));
    }
}
