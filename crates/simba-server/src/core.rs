//! Transport-independent server brain.
//!
//! [`ServerCore`] owns the engine catalog and serves decoded [`Request`]s;
//! it knows nothing about sockets. The TCP listener ([`crate::server`])
//! and the in-process loopback transport ([`crate::client`]) both drive
//! the same `handle_frame` path, so the deterministic loopback tests
//! exercise every byte of the encode → decode → dispatch → encode
//! pipeline that a live TCP connection does.

use crate::proto::{
    EngineSel, Frame, FrameKind, Request, Response, ServerStatsSnapshot, WireError,
};
use simba_engine::{Dbms, EngineKind};
use simba_sql::parse_select;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent locks the engine catalog is split across.
/// Connections addressing different engines never contend; 8 shards
/// cover the 4 engine kinds × the handful of scan-thread settings the
/// scenarios use.
const CATALOG_SHARDS: usize = 8;

type CatalogShard = Mutex<Vec<((String, usize), Arc<dyn Dbms>)>>;

/// Request/connection counters, updated with relaxed atomics (they are
/// monotone totals; cross-counter consistency is not needed).
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    connections: AtomicU64,
    active_connections: AtomicU64,
    requests: AtomicU64,
    executes: AtomicU64,
    registers: AtomicU64,
    engine_errors: AtomicU64,
    protocol_errors: AtomicU64,
}

impl ServerStats {
    fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            executes: self.executes.load(Ordering::Relaxed),
            registers: self.registers.load(Ordering::Relaxed),
            engine_errors: self.engine_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// The engine catalog plus request dispatch, shared by every connection.
///
/// Engines are built on demand, one per distinct `(kind, scan_threads)`
/// selector, and live for the life of the server — a client that
/// registers a table and later executes against the same selector (even
/// on a different connection) reaches the same engine instance.
pub struct ServerCore {
    shards: Vec<CatalogShard>,
    stats: ServerStats,
    draining: AtomicBool,
}

impl Default for ServerCore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("draining", &self.is_draining())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl ServerCore {
    /// Fresh core with an empty engine catalog.
    pub fn new() -> ServerCore {
        ServerCore {
            shards: (0..CATALOG_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            stats: ServerStats::default(),
            draining: AtomicBool::new(false),
        }
    }

    /// Has a [`Request::Shutdown`] been received? Transports poll this to
    /// stop accepting and drain.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flip the drain flag directly (used by signal-less test harnesses;
    /// the wire path is [`Request::Shutdown`]).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Record a connection opening (transport bookkeeping for
    /// [`Response::Stats`]).
    pub fn connection_opened(&self) {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.stats
            .active_connections
            .fetch_add(1, Ordering::Relaxed);
        simba_obs::counter!("server.connections").add(1);
    }

    /// Record a connection closing.
    pub fn connection_closed(&self) {
        self.stats
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Record a frame that could not even be decoded (counted separately
    /// from well-framed requests the dispatcher rejects itself).
    pub fn note_protocol_error(&self) {
        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        simba_obs::counter!("server.protocol_errors").add(1);
    }

    /// Current counter totals.
    pub fn stats_snapshot(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Serve one encoded request frame: decode, dispatch, encode the
    /// response with the request's id. This is the full wire path minus
    /// the socket — both TCP connections and the loopback transport call
    /// it with raw frame structs.
    pub fn handle_frame(&self, frame: &Frame) -> Frame {
        let _span = simba_obs::trace::span("server.frame", "server");
        let response = match frame.kind {
            FrameKind::Response => {
                self.note_protocol_error();
                Response::BadRequest {
                    message: "received a response frame on the server side".to_string(),
                }
            }
            FrameKind::Request => match frame.parse_request() {
                Ok(req) => self.handle(&req),
                Err(e) => {
                    self.note_protocol_error();
                    Response::BadRequest {
                        message: format!("unreadable request: {e}"),
                    }
                }
            },
        };
        // A response that fails to serialize would be a harness bug; fall
        // back to a plain BadRequest so the client is never left hanging
        // on a request id.
        Frame::response(frame.request_id, &response).unwrap_or_else(|e| {
            let fallback = Response::BadRequest {
                message: format!("response did not serialize: {e}"),
            };
            Frame {
                kind: FrameKind::Response,
                request_id: frame.request_id,
                payload: serde_json::to_string(&fallback)
                    .unwrap_or_else(|_| String::from("{\"bad_request\":{\"message\":\"\"}}"))
                    .into_bytes(),
            }
        })
    }

    /// Serve one decoded request.
    pub fn handle(&self, req: &Request) -> Response {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        simba_obs::counter!("server.requests").add(1);
        match req {
            Request::RegisterTable { engine, table } => {
                let _span = simba_obs::trace::span("server.register", "server");
                let dbms = match self.engine(engine) {
                    Ok(d) => d,
                    Err(resp) => return resp,
                };
                let rebuilt = match table.clone().into_table() {
                    Ok(t) => t,
                    Err(e) => {
                        self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        return Response::BadRequest {
                            message: format!("malformed table: {e}"),
                        };
                    }
                };
                let rows = rebuilt.row_count() as u64;
                dbms.register(Arc::new(rebuilt));
                self.stats.registers.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("server.registers").add(1);
                Response::Registered { rows }
            }
            Request::Execute { engine, sql } => self.execute(engine, sql, None),
            Request::ExecuteAt { engine, sql, ctx } => self.execute(engine, sql, Some(ctx)),
            Request::Stats => Response::Stats {
                stats: self.stats.snapshot(),
            },
            Request::Shutdown => {
                let _span = simba_obs::trace::span("server.shutdown", "server");
                self.begin_drain();
                Response::ShuttingDown
            }
        }
    }

    fn execute(
        &self,
        sel: &EngineSel,
        sql: &str,
        ctx: Option<&simba_engine::QueryCtx>,
    ) -> Response {
        let _span = simba_obs::trace::span("server.execute", "server");
        let dbms = match self.engine(sel) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        let query = match parse_select(sql) {
            Ok(q) => q,
            Err(e) => {
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Response::BadRequest {
                    message: format!("unparseable SQL: {e}"),
                };
            }
        };
        self.stats.executes.fetch_add(1, Ordering::Relaxed);
        simba_obs::counter!("server.executes").add(1);
        let outcome = match ctx {
            Some(ctx) => dbms.execute_at(&query, ctx),
            None => dbms.execute(&query),
        };
        match outcome {
            Ok(out) => Response::Result {
                result: out.result,
                stats: out.stats,
                // u64 nanoseconds cap at ~584 years; saturate rather than
                // wrap if a clock goes absurd.
                elapsed_ns: u64::try_from(out.elapsed.as_nanos()).unwrap_or(u64::MAX),
            },
            Err(error) => {
                self.stats.engine_errors.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("server.engine_errors").add(1);
                Response::EngineFailure { error }
            }
        }
    }

    /// Look up (building on first use) the engine a selector addresses.
    fn engine(&self, sel: &EngineSel) -> Result<Arc<dyn Dbms>, Response> {
        let kind = match EngineKind::from_name(&sel.kind) {
            Some(k) => k,
            None => {
                self.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return Err(Response::BadRequest {
                    message: format!("unknown engine `{}`", sel.kind),
                });
            }
        };
        let key = (kind.name().to_string(), sel.scan_threads);
        let shard = &self.shards[shard_index(&key)];
        let mut entries = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, dbms)) = entries.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(dbms));
        }
        let dbms = if sel.scan_threads == 1 {
            kind.build()
        } else {
            kind.build_with_threads(sel.scan_threads)
        };
        entries.push((key, Arc::clone(&dbms)));
        Ok(dbms)
    }
}

/// FNV-1a over the selector key, reduced to a shard index. Deterministic
/// (no `RandomState`), so catalog placement is identical across runs.
fn shard_index(key: &(String, usize)) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.0.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    for b in key.1.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % CATALOG_SHARDS as u64) as usize
}

/// One wire round-trip against a core, in process: encode the request,
/// push the bytes through a [`crate::proto::Decoder`], dispatch, decode
/// the response bytes back. Shared by the loopback transport and tests.
pub fn serve_encoded(core: &ServerCore, request_bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut decoder = crate::proto::Decoder::new();
    decoder.feed(request_bytes);
    let frame = decoder
        .next_frame()?
        .ok_or_else(|| WireError::Protocol("incomplete frame".to_string()))?;
    Ok(core.handle_frame(&frame).encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireTable;
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    fn sel(kind: &str) -> EngineSel {
        EngineSel {
            kind: kind.to_string(),
            scan_threads: 1,
        }
    }

    fn tiny_table() -> WireTable {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
            ],
        );
        let mut b = TableBuilder::new(schema, 3);
        b.push_row(vec![Value::str("A"), Value::Int(1)]);
        b.push_row(vec![Value::str("B"), Value::Int(2)]);
        b.push_row(vec![Value::str("A"), Value::Int(4)]);
        WireTable::from_table(&b.finish())
    }

    #[test]
    fn register_then_execute_round_trips() {
        let core = ServerCore::new();
        let resp = core.handle(&Request::RegisterTable {
            engine: sel("sqlite-like"),
            table: tiny_table(),
        });
        assert_eq!(resp, Response::Registered { rows: 3 });

        let resp = core.handle(&Request::Execute {
            engine: sel("sqlite-like"),
            sql: "SELECT q, SUM(n) AS s FROM t GROUP BY q".to_string(),
        });
        match resp {
            Response::Result { result, stats, .. } => {
                let mut rows = result.rows;
                rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
                assert_eq!(
                    rows,
                    vec![
                        vec![Value::str("A"), Value::Int(5)],
                        vec![Value::str("B"), Value::Int(2)],
                    ]
                );
                assert_eq!(stats.rows_scanned, 3);
            }
            other => panic!("expected a result, got {other:?}"),
        }
    }

    #[test]
    fn engine_errors_cross_with_variant_intact() {
        let core = ServerCore::new();
        let resp = core.handle(&Request::Execute {
            engine: sel("postgres-like"),
            sql: "SELECT COUNT(*) FROM missing".to_string(),
        });
        match resp {
            Response::EngineFailure { error } => {
                assert_eq!(
                    error,
                    simba_engine::EngineError::UnknownTable("missing".into())
                );
                assert!(!error.is_transient());
            }
            other => panic!("expected an engine failure, got {other:?}"),
        }
    }

    #[test]
    fn unknown_engine_and_bad_sql_are_bad_requests() {
        let core = ServerCore::new();
        let resp = core.handle(&Request::Execute {
            engine: sel("oracle23ai"),
            sql: "SELECT COUNT(*) FROM t".to_string(),
        });
        assert!(matches!(resp, Response::BadRequest { .. }), "{resp:?}");

        let resp = core.handle(&Request::Execute {
            engine: sel("sqlite-like"),
            sql: "DELETE FROM t".to_string(),
        });
        assert!(matches!(resp, Response::BadRequest { .. }), "{resp:?}");
        assert_eq!(core.stats_snapshot().protocol_errors, 2);
    }

    #[test]
    fn catalog_reuses_engine_instances_across_requests() {
        let core = ServerCore::new();
        core.handle(&Request::RegisterTable {
            engine: sel("duckdb-like"),
            table: tiny_table(),
        });
        // Same selector on a "different connection": table must still be
        // registered (same engine instance).
        let resp = core.handle(&Request::Execute {
            engine: sel("duckdb-like"),
            sql: "SELECT COUNT(*) AS c FROM t".to_string(),
        });
        assert!(matches!(resp, Response::Result { .. }), "{resp:?}");
        // Different scan_threads = a different instance without the table.
        let resp = core.handle(&Request::Execute {
            engine: EngineSel {
                kind: "duckdb-like".to_string(),
                scan_threads: 2,
            },
            sql: "SELECT COUNT(*) AS c FROM t".to_string(),
        });
        assert!(matches!(resp, Response::EngineFailure { .. }), "{resp:?}");
    }

    #[test]
    fn shutdown_flips_the_drain_flag() {
        let core = ServerCore::new();
        assert!(!core.is_draining());
        let resp = core.handle(&Request::Shutdown);
        assert_eq!(resp, Response::ShuttingDown);
        assert!(core.is_draining());
    }

    #[test]
    fn handle_frame_covers_the_full_byte_path() {
        let core = ServerCore::new();
        let frame = Frame::request(7, &Request::Stats).expect("frame builds");
        let reply = core.handle_frame(&frame);
        assert_eq!(reply.kind, FrameKind::Response);
        assert_eq!(reply.request_id, 7);
        match reply.parse_response().expect("response parses") {
            Response::Stats { stats } => assert_eq!(stats.requests, 1),
            other => panic!("expected stats, got {other:?}"),
        }

        // A response frame sent at the server is rejected, not dispatched.
        let bogus = Frame {
            kind: FrameKind::Response,
            request_id: 9,
            payload: Vec::new(),
        };
        let reply = core.handle_frame(&bogus);
        assert!(matches!(
            reply.parse_response(),
            Ok(Response::BadRequest { .. })
        ));
    }
}
