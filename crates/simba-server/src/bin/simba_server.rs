//! `simba-server` — serve the four engines over TCP.
//!
//! ```text
//! simba-server [--addr HOST:PORT] [--window N] [--idle-timeout-ms N]
//!              [--trace-out PATH]
//! simba-server --send-shutdown [--addr HOST:PORT]
//! ```
//!
//! The first form binds and serves until a shutdown frame arrives, then
//! drains gracefully (in-flight requests finish, workers join) and exits
//! 0. With `--trace-out` the server collects its own `server.*` spans and
//! writes one Chrome `trace_event` JSON file at drain — CI asserts on it.
//!
//! The second form is the matching control client: it dials the address,
//! sends a shutdown frame, and waits for the acknowledgement.
//!
//! Configuration is flags-only, deliberately: the workspace determinism
//! lint confines environment reads to the `bench` CLI, and a server that
//! can only be configured by its command line is trivially reproducible
//! from a process listing.

use simba_server::client::{TcpTransport, Transport};
use simba_server::proto::{Frame, Request, Response};
use simba_server::{Server, ServerConfig, ServerCore};
use std::sync::Arc;

const USAGE: &str = "usage: simba-server [--addr HOST:PORT] [--window N] \
                     [--idle-timeout-ms N] [--trace-out PATH]\n       \
                     simba-server --send-shutdown [--addr HOST:PORT]";

struct Cli {
    config: ServerConfig,
    trace_out: Option<String>,
    send_shutdown: bool,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("simba-server: {msg}\n{USAGE}");
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        config: ServerConfig::default(),
        trace_out: None,
        send_shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => usage_error(&format!("{flag} needs a value")),
        };
        match arg.as_str() {
            "--addr" => cli.config.addr = value("--addr"),
            "--window" => match value("--window").parse::<usize>() {
                Ok(n) if n > 0 => cli.config.window = n,
                _ => usage_error("--window wants a positive integer"),
            },
            "--idle-timeout-ms" => match value("--idle-timeout-ms").parse::<u64>() {
                Ok(n) => cli.config.idle_timeout_ms = n,
                Err(_) => usage_error("--idle-timeout-ms wants an integer"),
            },
            "--trace-out" => cli.trace_out = Some(value("--trace-out")),
            "--send-shutdown" => cli.send_shutdown = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }
    cli
}

fn send_shutdown(addr: &str) {
    let mut transport = match TcpTransport::connect(addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simba-server: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    };
    let frame = match Frame::request(0, &Request::Shutdown) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simba-server: {e}");
            std::process::exit(1);
        }
    };
    match transport.round_trip(&frame) {
        Ok(reply) => match reply.parse_response() {
            Ok(Response::ShuttingDown) => println!("server at {addr} is draining"),
            Ok(other) => {
                eprintln!("simba-server: unexpected shutdown reply: {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("simba-server: unreadable shutdown reply: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("simba-server: shutdown round-trip failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = parse_cli();
    if cli.send_shutdown {
        send_shutdown(&cli.config.addr);
        return;
    }

    if cli.trace_out.is_some() {
        simba_obs::trace::set_enabled(true);
    }

    let core = Arc::new(ServerCore::new());
    let server = match Server::bind(cli.config.clone(), Arc::clone(&core)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simba-server: cannot bind {}: {e}", cli.config.addr);
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("simba-server listening on {addr}"),
        Err(_) => println!("simba-server listening on {}", cli.config.addr),
    }

    if let Err(e) = server.run() {
        eprintln!("simba-server: accept loop failed: {e}");
        std::process::exit(1);
    }

    let stats = core.stats_snapshot();
    println!(
        "simba-server drained: {} requests ({} executes, {} registers, {} engine errors, {} protocol errors) over {} connections",
        stats.requests,
        stats.executes,
        stats.registers,
        stats.engine_errors,
        stats.protocol_errors,
        stats.connections,
    );

    if let Some(path) = cli.trace_out {
        let events = simba_obs::trace::take_events();
        let json = simba_obs::trace::export_chrome_trace(&events);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("simba-server: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {} spans to {path}", events.len());
    }
}
