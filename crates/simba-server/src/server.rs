//! TCP transport: accept loop, per-connection workers, graceful drain.
//!
//! Each accepted connection gets two threads: the *reader* (reassembles
//! frames from the stream) and the *executor* (dispatches frames through
//! [`ServerCore`] and writes responses back, in request order). A bounded
//! channel of [`Server::window`](ServerConfig::window) frames sits between
//! them: when a client pipelines faster than its queries execute, the
//! channel fills, the reader blocks, the kernel's TCP window fills, and
//! the client's own writes stall — backpressure end to end with no
//! explicit flow-control frames.
//!
//! All blocking reads use a short poll timeout instead of wall-clock
//! arithmetic: the reader counts consecutive empty polls to detect idle
//! connections, and re-checks the drain flag between polls. This keeps
//! the server free of `Instant::now()` outside the obs layer, matching
//! the workspace-wide determinism lint.

use crate::core::ServerCore;
use crate::proto::{Decoder, Frame, WireError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How often the accept loop wakes to re-check the drain flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Read timeout per poll on a connection; idle detection counts these.
const READ_POLL_MS: u64 = 25;

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Address to listen on (`host:port`; port `0` picks a free port).
    pub addr: String,
    /// Backpressure window: frames a connection may have in flight
    /// (decoded but not yet answered) before the reader stops reading.
    pub window: usize,
    /// Close a connection after this long with no bytes from the client.
    /// `0` disables idle close.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:4640".to_string(),
            window: 32,
            idle_timeout_ms: 30_000,
        }
    }
}

/// A bound TCP listener serving a [`ServerCore`].
pub struct Server {
    listener: TcpListener,
    core: Arc<ServerCore>,
    config: ServerConfig,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .field("config", &self.config)
            .finish()
    }
}

impl Server {
    /// Bind the configured address. The listener is non-blocking so the
    /// accept loop can poll the drain flag between accepts.
    pub fn bind(config: ServerConfig, core: Arc<ServerCore>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            core,
            config,
        })
    }

    /// The address actually bound (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The core this server dispatches into.
    pub fn core(&self) -> Arc<ServerCore> {
        Arc::clone(&self.core)
    }

    /// Accept connections until a [`crate::proto::Request::Shutdown`]
    /// flips the drain flag, then join every live connection and return.
    /// In-flight requests finish; new connections are refused (the
    /// listener closes as soon as this returns).
    pub fn run(self) -> std::io::Result<()> {
        let _span = simba_obs::trace::span("server.run", "server");
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.core.is_draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let core = Arc::clone(&self.core);
                    let window = self.config.window.max(1);
                    let idle_ms = self.config.idle_timeout_ms;
                    workers.push(thread::spawn(move || {
                        serve_connection(stream, core, window, idle_ms)
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            // A worker that panicked already tore down its own connection;
            // drain must not take the listener down with it.
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serve one connection to completion (EOF, idle timeout, drain, or
/// error), keeping the core's connection counters balanced.
fn serve_connection(stream: TcpStream, core: Arc<ServerCore>, window: usize, idle_ms: u64) {
    let _span = simba_obs::trace::span("server.connection", "server");
    core.connection_opened();
    if let Err(_e) = connection_loop(&stream, &core, window, idle_ms) {
        // The error was already counted (protocol) or is an I/O race on a
        // closing socket; either way the connection is done.
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    core.connection_closed();
}

fn connection_loop(
    stream: &TcpStream,
    core: &Arc<ServerCore>,
    window: usize,
    idle_ms: u64,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(Duration::from_millis(READ_POLL_MS)))?;
    let _ = stream.set_nodelay(true);
    let write_half = stream.try_clone()?;
    let (tx, rx) = sync_channel::<Frame>(window);
    let exec_core = Arc::clone(core);
    let executor = thread::spawn(move || executor_loop(write_half, exec_core, rx));

    // `0` disables idle close; otherwise round the budget up to whole polls.
    let max_idle_polls = if idle_ms == 0 {
        u64::MAX
    } else {
        idle_ms.div_ceil(READ_POLL_MS).max(1)
    };

    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut idle_polls: u64 = 0;
    let read_result: Result<(), WireError> = 'reading: loop {
        // Stop taking new requests once draining — but only at a frame
        // boundary, so a request already half-read still completes.
        if core.is_draining() && decoder.buffered() == 0 {
            break Ok(());
        }
        match (&*stream).read(&mut buf) {
            Ok(0) => break Ok(()),
            Ok(n) => {
                idle_polls = 0;
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            // Blocks when `window` frames are in flight:
                            // this is the backpressure point.
                            if tx.send(frame).is_err() {
                                break 'reading Ok(());
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing cannot resynchronize after garbage.
                            core.note_protocol_error();
                            break 'reading Err(e);
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                idle_polls += 1;
                if idle_polls >= max_idle_polls {
                    break Ok(());
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => break Err(e.into()),
        }
    };

    // Closing the channel lets the executor finish the frames it already
    // has (drain semantics), then exit.
    drop(tx);
    let exec_result = executor
        .join()
        .map_err(|_| WireError::Protocol("connection executor panicked".to_string()))?;
    read_result.and(exec_result)
}

/// Dispatch frames in arrival order and write responses back. Response
/// order therefore always matches request order on one connection, which
/// is what lets clients pipeline by request id without reordering logic.
fn executor_loop(
    mut out: TcpStream,
    core: Arc<ServerCore>,
    rx: Receiver<Frame>,
) -> Result<(), WireError> {
    for frame in rx {
        let reply = core.handle_frame(&frame);
        out.write_all(&reply.encode())?;
    }
    let _ = out.flush();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{EngineSel, Request, Response, WireTable};
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    fn spawn_server(config: ServerConfig) -> (SocketAddr, Arc<ServerCore>, thread::JoinHandle<()>) {
        let core = Arc::new(ServerCore::new());
        let server = Server::bind(config, Arc::clone(&core)).expect("bind 127.0.0.1:0");
        let addr = server.local_addr().expect("bound addr");
        let handle = thread::spawn(move || server.run().expect("server run"));
        (addr, core, handle)
    }

    fn send(stream: &mut TcpStream, id: u64, req: &Request) {
        let frame = Frame::request(id, req).expect("frame builds");
        stream.write_all(&frame.encode()).expect("write frame");
    }

    fn recv(stream: &mut TcpStream, decoder: &mut Decoder) -> Frame {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = decoder.next_frame().expect("well-formed response") {
                return frame;
            }
            let n = stream.read(&mut buf).expect("read response");
            assert!(n > 0, "server closed before responding");
            decoder.feed(&buf[..n]);
        }
    }

    fn test_config() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn end_to_end_register_execute_shutdown() {
        let (addr, _core, server) = spawn_server(test_config());
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut decoder = Decoder::new();

        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
            ],
        );
        let mut b = TableBuilder::new(schema, 2);
        b.push_row(vec![Value::str("A"), Value::Int(2)]);
        b.push_row(vec![Value::str("A"), Value::Int(3)]);
        let table = WireTable::from_table(&b.finish());
        let engine = EngineSel {
            kind: "sqlite-like".to_string(),
            scan_threads: 1,
        };

        // Pipeline all three requests before reading any response.
        send(
            &mut stream,
            1,
            &Request::RegisterTable {
                engine: engine.clone(),
                table,
            },
        );
        send(
            &mut stream,
            2,
            &Request::Execute {
                engine,
                sql: "SELECT SUM(n) AS s FROM t".to_string(),
            },
        );
        send(&mut stream, 3, &Request::Shutdown);

        let reply = recv(&mut stream, &mut decoder);
        assert_eq!(reply.request_id, 1);
        assert_eq!(
            reply.parse_response().unwrap(),
            Response::Registered { rows: 2 }
        );

        let reply = recv(&mut stream, &mut decoder);
        assert_eq!(reply.request_id, 2);
        match reply.parse_response().unwrap() {
            Response::Result { result, .. } => {
                assert_eq!(result.rows, vec![vec![Value::Int(5)]]);
            }
            other => panic!("expected a result, got {other:?}"),
        }

        let reply = recv(&mut stream, &mut decoder);
        assert_eq!(reply.request_id, 3);
        assert_eq!(reply.parse_response().unwrap(), Response::ShuttingDown);

        // Graceful drain: the accept loop exits and all workers join.
        server.join().expect("server drains cleanly");
    }

    #[test]
    fn idle_connections_are_closed() {
        let (addr, core, server) = spawn_server(ServerConfig {
            idle_timeout_ms: 50,
            ..test_config()
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Never send anything: the server must hang up on its own.
        let mut buf = [0u8; 16];
        let n = stream.read(&mut buf).expect("clean EOF from idle close");
        assert_eq!(n, 0);
        core.begin_drain();
        server.join().expect("server drains");
    }

    #[test]
    fn garbage_bytes_drop_the_connection_not_the_server() {
        let (addr, core, server) = spawn_server(test_config());
        let mut bad = TcpStream::connect(addr).expect("connect");
        bad.write_all(b"this is not a frame at all........")
            .expect("write");
        let mut buf = [0u8; 16];
        let n = bad.read(&mut buf).expect("server hangs up");
        assert_eq!(n, 0, "garbage should close the connection");

        // The server itself is still healthy for the next client.
        let mut good = TcpStream::connect(addr).expect("connect again");
        let mut decoder = Decoder::new();
        send(&mut good, 1, &Request::Stats);
        let reply = recv(&mut good, &mut decoder);
        match reply.parse_response().unwrap() {
            Response::Stats { stats } => assert!(stats.protocol_errors >= 1),
            other => panic!("expected stats, got {other:?}"),
        }
        core.begin_drain();
        server.join().expect("server drains");
    }
}
