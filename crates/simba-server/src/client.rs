//! Client side: [`RemoteDbms`] speaks the wire protocol behind the
//! ordinary [`Dbms`] trait, so the workload driver cannot tell a remote
//! engine from a local one.
//!
//! Two transports exist: [`TcpTransport`] dials a live `simba-server`,
//! and [`LoopbackTransport`] carries the same encoded bytes straight into
//! an in-process [`ServerCore`] — full encode → decode → dispatch →
//! encode → decode in both directions, minus only the socket. The
//! loopback path is what the deterministic remote-vs-local fingerprint
//! tests run on in CI, where no external process is available.
//!
//! # Error mapping
//!
//! | wire condition | surfaced as | retried? |
//! |---|---|---|
//! | connect/read/write failure | [`EngineError::Transient`] | by the driver's resilience policy |
//! | malformed or mismatched frame | [`EngineError::Internal`] | no |
//! | [`Response::BadRequest`] | [`EngineError::Internal`] | no |
//! | [`Response::EngineFailure`] | the server engine's error, variant-exact | per its own variant |
//!
//! The client itself retries a failed round-trip **once** on a fresh
//! connection (a pooled connection may have been idled out by the server
//! between steps); past that, transient classification hands retry
//! control to the driver so backoff accounting stays in one place.

use crate::core::ServerCore;
use crate::proto::{Decoder, EngineSel, Frame, Request, Response, WireError, WireTable};
use simba_engine::{Dbms, EngineError, EngineKind, QueryCtx, QueryOutput};
use simba_sql::printer::print_select;
use simba_sql::Select;
use simba_store::Table;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Address literal that selects the in-process loopback transport.
pub const LOOPBACK_ADDR: &str = "loopback";

/// One client connection: sends a request frame, returns the matching
/// response frame.
pub trait Transport: Send {
    /// Send one request frame and block for its response frame.
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, WireError>;
}

/// A pooled TCP connection to a `simba-server`.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: Decoder,
}

impl TcpTransport {
    /// Dial the server.
    pub fn connect(addr: &str) -> Result<TcpTransport, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpTransport {
            stream,
            decoder: Decoder::new(),
        })
    }
}

impl Transport for TcpTransport {
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, WireError> {
        self.stream.write_all(&request.encode())?;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(WireError::Io(
                    "server closed the connection mid-response".to_string(),
                ));
            }
            self.decoder.feed(&buf[..n]);
        }
    }
}

/// In-process transport: encodes to bytes, hands them to a shared
/// [`ServerCore`], decodes the response bytes. Deterministic (no sockets,
/// no timeouts) but byte-equivalent to the TCP path.
pub struct LoopbackTransport {
    core: Arc<ServerCore>,
}

impl LoopbackTransport {
    /// Transport into the given core.
    pub fn new(core: Arc<ServerCore>) -> LoopbackTransport {
        LoopbackTransport { core }
    }
}

impl Transport for LoopbackTransport {
    fn round_trip(&mut self, request: &Frame) -> Result<Frame, WireError> {
        let reply_bytes = crate::core::serve_encoded(&self.core, &request.encode())?;
        let mut decoder = Decoder::new();
        decoder.feed(&reply_bytes);
        decoder
            .next_frame()?
            .ok_or_else(|| WireError::Protocol("truncated loopback response".to_string()))
    }
}

/// A remote engine behind the [`Dbms`] trait.
///
/// Holds a small connection pool (one transport per concurrent caller;
/// transports are checked out for a round-trip and returned after). A
/// failed round-trip drops its connection and retries once on a fresh
/// one; persistent failure surfaces as [`EngineError::Transient`] for the
/// driver's resilience policy to handle.
pub struct RemoteDbms {
    addr: String,
    sel: EngineSel,
    kind: EngineKind,
    pool: Mutex<Vec<Box<dyn Transport>>>,
    next_id: AtomicU64,
    /// `register` cannot return an error through the trait; a failure is
    /// parked here and surfaced by the next execute.
    register_failure: Mutex<Option<String>>,
    /// Set when `addr` is [`LOOPBACK_ADDR`]: the private in-process server.
    loopback: Option<Arc<ServerCore>>,
}

impl std::fmt::Debug for RemoteDbms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteDbms")
            .field("addr", &self.addr)
            .field("engine", &self.sel)
            .finish()
    }
}

impl RemoteDbms {
    /// Connect to the engine `kind` served at `addr`.
    ///
    /// `addr` may be [`LOOPBACK_ADDR`], which spins up a private
    /// in-process [`ServerCore`] instead of dialing — same wire bytes, no
    /// network. Otherwise the address is dialed eagerly so an unreachable
    /// server fails loudly at setup, not on the first query of a run.
    pub fn connect(
        addr: &str,
        kind: EngineKind,
        scan_threads: usize,
    ) -> Result<RemoteDbms, WireError> {
        let sel = EngineSel {
            kind: kind.name().to_string(),
            scan_threads,
        };
        let mut loopback = None;
        let mut pool: Vec<Box<dyn Transport>> = Vec::new();
        if addr == LOOPBACK_ADDR {
            let core = Arc::new(ServerCore::new());
            core.connection_opened();
            pool.push(Box::new(LoopbackTransport::new(Arc::clone(&core))));
            loopback = Some(core);
        } else {
            pool.push(Box::new(TcpTransport::connect(addr)?));
        }
        Ok(RemoteDbms {
            addr: addr.to_string(),
            sel,
            kind,
            pool: Mutex::new(pool),
            next_id: AtomicU64::new(1),
            register_failure: Mutex::new(None),
            loopback,
        })
    }

    /// Connect a second client to the same loopback server, so tests can
    /// model several engines sharing one server process.
    pub fn sibling(&self, kind: EngineKind, scan_threads: usize) -> Result<RemoteDbms, WireError> {
        match &self.loopback {
            Some(core) => {
                core.connection_opened();
                Ok(RemoteDbms {
                    addr: self.addr.clone(),
                    sel: EngineSel {
                        kind: kind.name().to_string(),
                        scan_threads,
                    },
                    kind,
                    pool: Mutex::new(vec![Box::new(LoopbackTransport::new(Arc::clone(core)))]),
                    next_id: AtomicU64::new(1),
                    register_failure: Mutex::new(None),
                    loopback: Some(Arc::clone(core)),
                })
            }
            None => RemoteDbms::connect(&self.addr, kind, scan_threads),
        }
    }

    /// The loopback core, when this client is a loopback client (tests
    /// use it to inspect server counters).
    pub fn loopback_core(&self) -> Option<Arc<ServerCore>> {
        self.loopback.as_ref().map(Arc::clone)
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&self) -> Result<(), EngineError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected_response("shutdown", &other)),
        }
    }

    /// Fetch the server's request/connection counters.
    pub fn server_stats(&self) -> Result<crate::proto::ServerStatsSnapshot, EngineError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected_response("stats", &other)),
        }
    }

    fn checkout(&self) -> Result<Box<dyn Transport>, WireError> {
        let pooled = {
            let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
            pool.pop()
        };
        match pooled {
            Some(t) => Ok(t),
            None if self.loopback.is_some() => {
                // Loopback transports are stateless over the shared core.
                let core = self.loopback.as_ref().map(Arc::clone);
                match core {
                    Some(core) => Ok(Box::new(LoopbackTransport::new(core))),
                    None => Err(WireError::Protocol("loopback core vanished".to_string())),
                }
            }
            None => Ok(Box::new(TcpTransport::connect(&self.addr)?)),
        }
    }

    fn checkin(&self, transport: Box<dyn Transport>) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        pool.push(transport);
    }

    /// One request/response exchange with id correlation and a single
    /// reconnect retry on transport failure.
    fn round_trip(&self, request: &Request) -> Result<Response, EngineError> {
        let _span = simba_obs::trace::span("client.round_trip", "server");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::request(id, request).map_err(wire_to_engine)?;
        let mut last_io: Option<WireError> = None;
        // Attempt 0 uses a pooled (possibly stale) connection; attempt 1
        // forces a fresh dial. Anything past that is the driver's job.
        for attempt in 0..2 {
            let mut transport = if attempt == 0 {
                match self.checkout() {
                    Ok(t) => t,
                    Err(e @ WireError::Io(_)) => {
                        last_io = Some(e);
                        continue;
                    }
                    Err(e) => return Err(wire_to_engine(e)),
                }
            } else if self.loopback.is_some() {
                // Loopback has no connection to go stale; don't retry.
                break;
            } else {
                match TcpTransport::connect(&self.addr) {
                    Ok(t) => Box::new(t) as Box<dyn Transport>,
                    Err(e) => {
                        last_io = Some(e);
                        continue;
                    }
                }
            };
            match transport.round_trip(&frame) {
                Ok(reply) => {
                    if reply.request_id != id {
                        // The stream is desynchronized; poison the
                        // connection by not returning it to the pool.
                        return Err(EngineError::Internal(format!(
                            "response id {} does not match request id {id}",
                            reply.request_id
                        )));
                    }
                    let response = reply.parse_response().map_err(wire_to_engine)?;
                    self.checkin(transport);
                    return Ok(response);
                }
                Err(e @ WireError::Io(_)) => {
                    // Drop the dead connection and (maybe) retry fresh.
                    last_io = Some(e);
                }
                Err(e) => return Err(wire_to_engine(e)),
            }
        }
        Err(wire_to_engine(last_io.unwrap_or_else(|| {
            WireError::Io("connection pool exhausted".to_string())
        })))
    }

    fn execute_request(&self, request: &Request) -> Result<QueryOutput, EngineError> {
        if let Some(msg) = self
            .register_failure
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
        {
            return Err(EngineError::Internal(format!(
                "a prior remote register failed: {msg}"
            )));
        }
        match self.round_trip(request)? {
            Response::Result {
                result,
                stats,
                elapsed_ns,
            } => Ok(QueryOutput {
                result,
                stats,
                // Server-side engine latency: the paper's latency metric
                // measures the engine, not the network between harness
                // processes. The driver's own wall-clock wraps this call
                // and captures round-trip latency separately.
                elapsed: Duration::from_nanos(elapsed_ns),
            }),
            Response::EngineFailure { error } => Err(error),
            Response::BadRequest { message } => Err(EngineError::Internal(format!(
                "server rejected the request: {message}"
            ))),
            other => Err(unexpected_response("execute", &other)),
        }
    }
}

impl Dbms for RemoteDbms {
    fn name(&self) -> &'static str {
        // The trait wants a `'static` name; enumerate rather than leak.
        match self.kind {
            EngineKind::SqliteLike => "remote-sqlite-like",
            EngineKind::PostgresLike => "remote-postgres-like",
            EngineKind::DuckDbLike => "remote-duckdb-like",
            EngineKind::MonetDbLike => "remote-monetdb-like",
        }
    }

    fn scan_threads(&self) -> usize {
        self.sel.scan_threads
    }

    fn register(&self, table: Arc<Table>) {
        let _span = simba_obs::trace::span("client.register", "server");
        let request = Request::RegisterTable {
            engine: self.sel.clone(),
            table: WireTable::from_table(&table),
        };
        let outcome = match self.round_trip(&request) {
            Ok(Response::Registered { rows }) if rows as usize == table.row_count() => None,
            Ok(Response::Registered { rows }) => Some(format!(
                "server registered {rows} rows, expected {}",
                table.row_count()
            )),
            Ok(other) => Some(unexpected_response("register", &other).to_string()),
            Err(e) => Some(e.to_string()),
        };
        *self
            .register_failure
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = outcome;
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        self.execute_request(&Request::Execute {
            engine: self.sel.clone(),
            sql: print_select(query),
        })
    }

    fn execute_at(&self, query: &Select, ctx: &QueryCtx) -> Result<QueryOutput, EngineError> {
        self.execute_request(&Request::ExecuteAt {
            engine: self.sel.clone(),
            sql: print_select(query),
            ctx: *ctx,
        })
    }
}

fn wire_to_engine(e: WireError) -> EngineError {
    match e {
        WireError::Io(m) => EngineError::Transient(format!("wire i/o failure: {m}")),
        WireError::Protocol(m) => EngineError::Internal(format!("wire protocol failure: {m}")),
    }
}

fn unexpected_response(what: &str, got: &Response) -> EngineError {
    EngineError::Internal(format!(
        "server sent a mismatched response to a {what} request: {got:?}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::parse_select;
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    fn tiny_table() -> Table {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
            ],
        );
        let mut b = TableBuilder::new(schema, 3);
        b.push_row(vec![Value::str("A"), Value::Int(1)]);
        b.push_row(vec![Value::str("B"), Value::Int(2)]);
        b.push_row(vec![Value::str("A"), Value::Int(4)]);
        b.finish()
    }

    #[test]
    fn loopback_client_matches_local_engine_exactly() {
        let table = Arc::new(tiny_table());
        let query = parse_select("SELECT q, SUM(n) AS s FROM t GROUP BY q").expect("parses");

        let local = EngineKind::SqliteLike.build();
        local.register(Arc::clone(&table));
        let local_out = local.execute(&query).expect("local executes");

        let remote =
            RemoteDbms::connect(LOOPBACK_ADDR, EngineKind::SqliteLike, 1).expect("loopback");
        remote.register(Arc::clone(&table));
        let remote_out = remote.execute(&query).expect("remote executes");

        assert_eq!(remote_out.result, local_out.result);
        assert_eq!(remote_out.stats, local_out.stats);
    }

    #[test]
    fn engine_errors_survive_the_round_trip() {
        let remote =
            RemoteDbms::connect(LOOPBACK_ADDR, EngineKind::PostgresLike, 1).expect("loopback");
        let query = parse_select("SELECT COUNT(*) FROM missing").expect("parses");
        let err = remote.execute(&query).expect_err("unknown table");
        assert_eq!(err, EngineError::UnknownTable("missing".into()));
    }

    #[test]
    fn execute_at_forwards_the_context() {
        let remote =
            RemoteDbms::connect(LOOPBACK_ADDR, EngineKind::DuckDbLike, 1).expect("loopback");
        remote.register(Arc::new(tiny_table()));
        let query = parse_select("SELECT COUNT(*) AS c FROM t").expect("parses");
        let ctx = QueryCtx {
            session: 1,
            step: 2,
            query: 0,
            attempt: 0,
        };
        let out = remote.execute_at(&query, &ctx).expect("remote executes");
        assert_eq!(out.result.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn unreachable_server_fails_eagerly_and_transiently() {
        // Reserved port on localhost with nothing listening: connect must
        // fail now, not on first query.
        let err = RemoteDbms::connect("127.0.0.1:1", EngineKind::SqliteLike, 1)
            .expect_err("nothing listens on port 1");
        assert!(matches!(err, WireError::Io(_)), "{err:?}");
        assert!(wire_to_engine(err).is_transient());
    }

    #[test]
    fn siblings_share_one_loopback_server() {
        let a = RemoteDbms::connect(LOOPBACK_ADDR, EngineKind::SqliteLike, 1).expect("loopback");
        let b = a.sibling(EngineKind::MonetDbLike, 1).expect("sibling");
        a.register(Arc::new(tiny_table()));
        b.register(Arc::new(tiny_table()));
        let stats = a.loopback_core().expect("loopback core").stats_snapshot();
        assert_eq!(stats.registers, 2);
        assert_eq!(stats.connections, 2);
        let query = parse_select("SELECT COUNT(*) AS c FROM t").expect("parses");
        assert_eq!(
            b.execute(&query).expect("executes").result.rows,
            vec![vec![Value::Int(3)]]
        );
    }

    #[test]
    fn names_are_engine_specific() {
        let remote =
            RemoteDbms::connect(LOOPBACK_ADDR, EngineKind::MonetDbLike, 1).expect("loopback");
        assert_eq!(remote.name(), "remote-monetdb-like");
        assert_eq!(remote.scan_threads(), 1);
    }
}
