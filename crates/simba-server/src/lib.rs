//! Serve the four engines over the wire — and drive them remotely.
//!
//! Real exploration front-ends talk to a database over a network, where
//! serialization, queueing, and tail latency dominate interactivity. This
//! crate supplies the three pieces that let the benchmark cross a socket:
//!
//! * [`proto`] — a hand-rolled, length-prefixed binary framing with
//!   version-tagged headers and request-id correlation, carrying
//!   serde-backed JSON payloads ([`proto::Request`] / [`proto::Response`]).
//! * [`core`] + [`server`] — [`core::ServerCore`] (sharded engine catalog,
//!   request dispatch, stats) behind a TCP accept loop with
//!   per-connection worker threads, a bounded in-flight window for
//!   backpressure, idle-connection timeouts, and graceful drain on a
//!   shutdown frame. The `simba-server` binary wraps this.
//! * [`client`] — [`client::RemoteDbms`], a [`simba_engine::Dbms`]
//!   implementation that speaks the protocol over a pooled TCP transport
//!   (or an in-process loopback transport for deterministic tests), maps
//!   wire failures onto [`simba_engine::EngineError::Transient`] /
//!   [`simba_engine::EngineError::Internal`], and reconnects between
//!   attempts so the driver's `ResiliencePolicy` classification drives
//!   retries.
//!
//! Determinism: query *results* crossing the wire are byte-identical to
//! in-process execution — queries ship as SQL text (the printer/parser
//! round-trip is property-tested in `simba-sql`) and values round-trip
//! variant-exactly through the vendored `serde_json` (pinned in
//! `simba-store`). The loopback transport exercises the full
//! encode → frame → decode → dispatch byte path without a socket, which is
//! what lets CI pin remote-vs-local fingerprint equality.

#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod proto;
pub mod server;

pub use client::{RemoteDbms, LOOPBACK_ADDR};
pub use core::ServerCore;
pub use proto::{Decoder, Frame, FrameKind, Request, Response, WireError, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
