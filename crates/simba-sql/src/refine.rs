//! Query refinement detection for session-delta execution.
//!
//! Exploration sessions rarely issue independent queries: each step adds,
//! drops, or tightens a single filter on the previous step (§2 of the paper;
//! IDEBench makes the same observation). When the next query is *provably a
//! refinement* of an earlier one — its WHERE clause implies the earlier
//! WHERE clause, so its rows are a subset of the earlier result — an engine
//! can seed its scan from the earlier step's surviving row set instead of
//! rescanning the table.
//!
//! This module derives the keys and verdicts that decision needs:
//!
//! * [`delta_key`] — identifies "same table, same WHERE" executions whose
//!   surviving row sets are interchangeable.
//! * [`states_key`] — identifies executions whose per-group aggregate states
//!   are interchangeable (same table, WHERE, ordered projections, GROUP BY,
//!   and HAVING — everything that shapes the aggregation, excluding ORDER
//!   BY / LIMIT, which only shape the emitted rows).
//! * [`is_refinement`] — the subsumption verdict, built on the sound
//!   [`implication`](crate::implication) domain analysis: `true` is a proof
//!   that `next`'s rows are a subset of `prev`'s rows; `false` only means
//!   "could not prove".
//!
//! Soundness matters more than completeness here: a wrong `true` silently
//!   returns stale rows, while a wrong `false` merely rescans.

use crate::ast::Select;
use crate::implication::option_implies;
use crate::normalize::normalize_expr;
use crate::printer::print_expr;

/// Key identifying "same table, same WHERE" executions: the lowercased table
/// name plus the sorted, normalized WHERE conjuncts, section-delimited like
/// [`NormalizedSelect::cache_key`](crate::NormalizedSelect::cache_key).
/// Two queries with equal delta keys filter the same rows, so a selection
/// vector captured for one seeds the other without re-evaluating kernels.
pub fn delta_key(q: &Select) -> String {
    let mut out = String::with_capacity(64);
    push_section(&mut out, 't', std::iter::once(q.from.to_ascii_lowercase()));
    push_section(&mut out, 'w', normalized_where(q));
    out
}

/// Key identifying executions whose per-group aggregate states are
/// interchangeable: [`delta_key`] plus the *ordered* normalized projection
/// list (order fixes the aggregate-slot layout), GROUP BY, and HAVING
/// (HAVING conjuncts contribute aggregate slots of their own). ORDER BY and
/// LIMIT are deliberately excluded — they reorder and truncate the emitted
/// rows after aggregation, so cached group states satisfy any ORDER BY /
/// LIMIT variant of the same aggregation.
pub fn states_key(q: &Select) -> String {
    let mut out = delta_key(q);
    push_section(
        &mut out,
        'p',
        q.projections
            .iter()
            .map(|item| print_expr(&normalize_expr(&item.expr))),
    );
    push_section(
        &mut out,
        'g',
        q.group_by.iter().map(|g| print_expr(&normalize_expr(g))),
    );
    push_section(&mut out, 'h', {
        let mut conjuncts: Vec<String> = match &q.having {
            Some(h) => crate::normalize::normalized_conjuncts(h)
                .into_iter()
                .collect(),
            None => Vec::new(),
        };
        conjuncts.sort();
        conjuncts.into_iter()
    });
    out
}

/// Is `next` provably a refinement of `prev` — same table, and every row
/// satisfying `next`'s WHERE also satisfies `prev`'s WHERE? Sound: `true`
/// is always correct; `false` may mean "could not prove". A refinement's
/// result rows are a subset of the earlier query's surviving rows, so a
/// scan for `next` may be seeded from `prev`'s captured selection and
/// re-filtered with `next`'s own kernels.
pub fn is_refinement(next: &Select, prev: &Select) -> bool {
    next.from.eq_ignore_ascii_case(&prev.from)
        && option_implies(next.where_clause.as_ref(), prev.where_clause.as_ref())
}

fn normalized_where(q: &Select) -> impl Iterator<Item = String> {
    let conjuncts: Vec<String> = match &q.where_clause {
        Some(w) => crate::normalize::normalized_conjuncts(w)
            .into_iter()
            .collect(),
        None => Vec::new(),
    };
    conjuncts.into_iter()
}

fn push_section(out: &mut String, tag: char, parts: impl Iterator<Item = String>) {
    out.push(tag);
    out.push('{');
    for (i, p) in parts.enumerate() {
        if i > 0 {
            out.push('\u{1f}');
        }
        out.push_str(&p);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn sel(s: &str) -> Select {
        parse_select(s).unwrap()
    }

    #[test]
    fn delta_key_collapses_spelling_noise() {
        let a = sel("SELECT x FROM t WHERE a = 1 AND b IN ('B', 'A')");
        let b = sel("select y from T where b in ('A', 'B', 'A') and A = 1");
        assert_eq!(delta_key(&a), delta_key(&b), "same table+WHERE, same key");
        let c = sel("SELECT x FROM t WHERE a = 2");
        assert_ne!(delta_key(&a), delta_key(&c));
    }

    #[test]
    fn delta_key_ignores_projection_group_order_limit() {
        let a = sel("SELECT q, COUNT(*) FROM t WHERE a = 1 GROUP BY q ORDER BY q LIMIT 5");
        let b = sel("SELECT AVG(v) FROM t WHERE a = 1");
        assert_eq!(delta_key(&a), delta_key(&b));
    }

    #[test]
    fn delta_key_separates_tables_and_absent_where() {
        let a = sel("SELECT x FROM t");
        let b = sel("SELECT x FROM u");
        assert_ne!(delta_key(&a), delta_key(&b));
        let c = sel("SELECT x FROM t WHERE a = 1");
        assert_ne!(delta_key(&a), delta_key(&c));
    }

    #[test]
    fn states_key_pins_the_aggregation_shape() {
        let base = sel("SELECT q, COUNT(*) FROM t WHERE a = 1 GROUP BY q");
        // ORDER BY / LIMIT variants share the aggregation.
        let sorted = sel("SELECT q, COUNT(*) FROM t WHERE a = 1 GROUP BY q ORDER BY q LIMIT 3");
        assert_eq!(states_key(&base), states_key(&sorted));
        // A different aggregate, group key, filter, or projection order does not.
        assert_ne!(
            states_key(&base),
            states_key(&sel("SELECT q, SUM(v) FROM t WHERE a = 1 GROUP BY q"))
        );
        assert_ne!(
            states_key(&base),
            states_key(&sel("SELECT r, COUNT(*) FROM t WHERE a = 1 GROUP BY r"))
        );
        assert_ne!(
            states_key(&base),
            states_key(&sel("SELECT q, COUNT(*) FROM t WHERE a = 2 GROUP BY q"))
        );
        assert_ne!(
            states_key(&base),
            states_key(&sel("SELECT COUNT(*), q FROM t WHERE a = 1 GROUP BY q"))
        );
        // HAVING contributes aggregate slots, so it is part of the key.
        assert_ne!(
            states_key(&base),
            states_key(&sel(
                "SELECT q, COUNT(*) FROM t WHERE a = 1 GROUP BY q HAVING SUM(v) > 2"
            ))
        );
    }

    #[test]
    fn refinement_requires_same_table_and_implication() {
        let prev = sel("SELECT x FROM t WHERE a > 3");
        let next = sel("SELECT x FROM t WHERE a > 5 AND b = 2");
        assert!(is_refinement(&next, &prev), "tightened filter refines");
        assert!(!is_refinement(&prev, &next), "loosened filter does not");
        let other = sel("SELECT x FROM u WHERE a > 5 AND b = 2");
        assert!(
            !is_refinement(&other, &prev),
            "different table never refines"
        );
    }

    #[test]
    fn refinement_handles_absent_filters() {
        let unfiltered = sel("SELECT x FROM t");
        let filtered = sel("SELECT x FROM t WHERE a = 1");
        assert!(
            is_refinement(&filtered, &unfiltered),
            "any filter refines the full scan"
        );
        assert!(
            !is_refinement(&unfiltered, &filtered),
            "dropping the filter widens the rows"
        );
        assert!(is_refinement(&unfiltered, &unfiltered));
    }

    #[test]
    fn refinement_is_conservative_outside_the_fragment() {
        // Cross-column disjunctions are outside the implication fragment:
        // the verdict must fall back to false, never guess true.
        let prev = sel("SELECT x FROM t WHERE a = 1 OR b = 2");
        let next = sel("SELECT x FROM t WHERE a = 1");
        assert!(!is_refinement(&next, &prev));
    }

    #[test]
    fn exact_requery_is_a_refinement_with_equal_delta_keys() {
        let a = sel("SELECT q, COUNT(*) FROM t WHERE a = 1 GROUP BY q");
        let b = sel("SELECT AVG(v) FROM t WHERE 1 = a");
        assert!(is_refinement(&b, &a));
        assert_eq!(delta_key(&a), delta_key(&b));
    }
}
