//! Fluent builder for `SELECT` statements.
//!
//! The interaction graph's data layer (§3.0.3) assembles queries
//! programmatically from node properties; this builder keeps that code
//! readable.

use crate::ast::*;

/// Builder for [`Select`]. Construct with [`Select::builder`] or
/// [`SelectBuilder::new`].
#[derive(Debug, Clone)]
pub struct SelectBuilder {
    select: Select,
}

impl Select {
    /// Start building a query over `table`.
    pub fn builder(table: impl Into<String>) -> SelectBuilder {
        SelectBuilder::new(table)
    }
}

impl SelectBuilder {
    /// Start building a query over `table`.
    pub fn new(table: impl Into<String>) -> Self {
        Self {
            select: Select::new(table, Vec::new()),
        }
    }

    /// Project a bare column.
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.select
            .projections
            .push(SelectItem::bare(Expr::col(name.into())));
        self
    }

    /// Project an arbitrary expression.
    pub fn project(mut self, expr: Expr) -> Self {
        self.select.projections.push(SelectItem::bare(expr));
        self
    }

    /// Project an expression with an alias.
    pub fn project_as(mut self, expr: Expr, alias: impl Into<String>) -> Self {
        self.select
            .projections
            .push(SelectItem::aliased(expr, alias));
        self
    }

    /// Project `agg(column)`.
    pub fn aggregate(mut self, func: Func, column: impl Into<String>) -> Self {
        self.select
            .projections
            .push(SelectItem::bare(Expr::agg(func, Expr::col(column.into()))));
        self
    }

    /// Project `COUNT(*)`.
    pub fn count_star(mut self) -> Self {
        self.select
            .projections
            .push(SelectItem::bare(Expr::count_star()));
        self
    }

    /// Add one WHERE conjunct.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.select.add_filter(predicate);
        self
    }

    /// Add `column = value` to the WHERE clause.
    pub fn filter_eq(self, column: &str, value: Literal) -> Self {
        self.filter(Expr::binary(
            Expr::col(column),
            BinOp::Eq,
            Expr::Literal(value),
        ))
    }

    /// Add `column IN (values)` to the WHERE clause.
    pub fn filter_in<I, S>(self, column: &str, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.filter(Expr::in_strs(column, values))
    }

    /// Add `column BETWEEN low AND high` to the WHERE clause.
    pub fn filter_between(self, column: &str, low: Literal, high: Literal) -> Self {
        self.filter(Expr::Between {
            expr: Box::new(Expr::col(column)),
            low: Box::new(Expr::Literal(low)),
            high: Box::new(Expr::Literal(high)),
            negated: false,
        })
    }

    /// Group by a column.
    pub fn group_by(mut self, column: impl Into<String>) -> Self {
        self.select.group_by.push(Expr::col(column.into()));
        self
    }

    /// Group by an arbitrary expression.
    pub fn group_by_expr(mut self, expr: Expr) -> Self {
        self.select.group_by.push(expr);
        self
    }

    /// Set the HAVING clause (conjoined with any existing one).
    pub fn having(mut self, predicate: Expr) -> Self {
        self.select.having = Some(match self.select.having.take() {
            Some(h) => h.and(predicate),
            None => predicate,
        });
        self
    }

    /// Append an ORDER BY term.
    pub fn order_by(mut self, expr: Expr, asc: bool) -> Self {
        self.select.order_by.push(OrderByExpr { expr, asc });
        self
    }

    /// Set the LIMIT.
    pub fn limit(mut self, n: u64) -> Self {
        self.select.limit = Some(n);
        self
    }

    /// Finish building.
    pub fn build(self) -> Select {
        self.select
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_select;

    #[test]
    fn builds_paper_goal_query() {
        // §2.3: SELECT hour, COUNT(*) AS call_volume, SUM(abandoned) AS
        // call_abandonment FROM customer_service GROUP BY hour
        let q = Select::builder("customer_service")
            .column("hour")
            .project_as(Expr::count_star(), "call_volume")
            .project_as(
                Expr::agg(Func::Sum, Expr::col("abandoned")),
                "call_abandonment",
            )
            .group_by("hour")
            .build();
        assert_eq!(
            print_select(&q),
            "SELECT hour, COUNT(*) AS call_volume, SUM(abandoned) AS call_abandonment \
             FROM customer_service GROUP BY hour"
        );
    }

    #[test]
    fn builds_filters_incrementally() {
        let q = Select::builder("cs")
            .count_star()
            .filter_in("queue", ["A"])
            .filter_eq("direction", Literal::Str("in".into()))
            .build();
        assert_eq!(q.filters().len(), 2);
    }

    #[test]
    fn builds_having_and_order() {
        let q = Select::builder("cs")
            .column("queue")
            .count_star()
            .group_by("queue")
            .having(Expr::binary(Expr::count_star(), BinOp::Gt, Expr::int(1)))
            .order_by(Expr::count_star(), false)
            .limit(5)
            .build();
        assert!(q.having.is_some());
        assert_eq!(q.limit, Some(5));
        assert!(!q.order_by[0].asc);
    }

    #[test]
    fn between_builder_roundtrips() {
        let q = Select::builder("t")
            .column("x")
            .filter_between("x", Literal::Int(1), Literal::Int(10))
            .build();
        let text = print_select(&q);
        assert!(text.contains("BETWEEN 1 AND 10"), "{text}");
    }
}
