//! Canonical SQL printer.
//!
//! Every AST prints to a unique, stable textual form: keywords uppercase,
//! single spaces, minimal parentheses. `parse(print(ast)) == ast` holds for
//! all parser-reachable ASTs (property-tested), which makes byte-comparison
//! of printed queries a sound *syntactic* equivalence check.

use crate::ast::*;
use std::fmt::Write;

/// Reserved words that must be quoted when used as identifiers.
const KEYWORDS: &[&str] = &[
    "select", "from", "where", "group", "by", "having", "order", "limit", "as", "and", "or", "not",
    "in", "between", "is", "null", "true", "false", "asc", "desc", "distinct",
];

/// Does an identifier need double-quoting to re-parse as itself?
fn needs_quoting(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !first_ok {
        return true;
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return true;
    }
    KEYWORDS.iter().any(|k| name.eq_ignore_ascii_case(k))
}

/// Write an identifier, quoting when necessary.
fn write_ident(name: &str, out: &mut String) {
    if needs_quoting(name) {
        out.push('"');
        out.push_str(name);
        out.push('"');
    } else {
        out.push_str(name);
    }
}

/// Print a `SELECT` statement in canonical form.
pub fn print_select(q: &Select) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("SELECT ");
    for (i, item) in q.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&print_expr(&item.expr));
        if let Some(alias) = &item.alias {
            out.push_str(" AS ");
            write_ident(alias, &mut out);
        }
    }
    out.push_str(" FROM ");
    write_ident(&q.from, &mut out);
    if let Some(w) = &q.where_clause {
        let _ = write!(out, " WHERE {}", print_expr(w));
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&print_expr(g));
        }
    }
    if let Some(h) = &q.having {
        let _ = write!(out, " HAVING {}", print_expr(h));
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&print_expr(&o.expr));
            out.push_str(if o.asc { " ASC" } else { " DESC" });
        }
    }
    if let Some(l) = q.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    out
}

/// Print an expression in canonical form with minimal parentheses.
pub fn print_expr(e: &Expr) -> String {
    let mut out = String::with_capacity(32);
    write_expr(e, Prec::Lowest, &mut out);
    out
}

/// Precedence levels, loosest to tightest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Lowest,
    Or,
    And,
    Not,
    Cmp,
    Add,
    Mul,
    Unary,
}

fn op_prec(op: BinOp) -> Prec {
    match op {
        BinOp::Or => Prec::Or,
        BinOp::And => Prec::And,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => Prec::Cmp,
        BinOp::Add | BinOp::Sub => Prec::Add,
        BinOp::Mul | BinOp::Div => Prec::Mul,
    }
}

fn write_expr(e: &Expr, parent: Prec, out: &mut String) {
    match e {
        Expr::Column(name) => write_ident(name, out),
        Expr::Wildcard => out.push('*'),
        Expr::Literal(lit) => write_literal(lit, out),
        Expr::Unary { op, expr } => {
            let (text, prec) = match op {
                UnaryOp::Not => ("NOT ", Prec::Not),
                UnaryOp::Neg => ("-", Prec::Unary),
            };
            let needs = prec < parent;
            if needs {
                out.push('(');
            }
            out.push_str(text);
            write_expr(expr, prec, out);
            if needs {
                out.push(')');
            }
        }
        Expr::Binary { left, op, right } => {
            let prec = op_prec(*op);
            let needs = prec < parent
                // Comparison chains like `a = b = c` are not valid SQL; always
                // parenthesize nested comparisons for clarity.
                || (prec == Prec::Cmp && parent == Prec::Cmp);
            if needs {
                out.push('(');
            }
            write_expr(left, prec, out);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            // Right operands of arithmetic need a tighter bound: parsing is
            // left-associative, so `a - (b - c)` and `a * (b / c)` must keep
            // their parentheses to round-trip as the same tree.
            let right_prec = if op.is_arithmetic() { bump(prec) } else { prec };
            write_expr(right, right_prec, out);
            if needs {
                out.push(')');
            }
        }
        Expr::Function {
            func,
            args,
            distinct,
        } => {
            out.push_str(func.name());
            out.push('(');
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, Prec::Lowest, out);
            }
            out.push(')');
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needs = Prec::Cmp < parent;
            if needs {
                out.push('(');
            }
            write_expr(expr, Prec::Add, out);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, Prec::Lowest, out);
            }
            out.push(')');
            if needs {
                out.push(')');
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let needs = Prec::Cmp < parent;
            if needs {
                out.push('(');
            }
            write_expr(expr, Prec::Add, out);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_expr(low, Prec::Add, out);
            out.push_str(" AND ");
            write_expr(high, Prec::Add, out);
            if needs {
                out.push(')');
            }
        }
        Expr::IsNull { expr, negated } => {
            let needs = Prec::Cmp < parent;
            if needs {
                out.push('(');
            }
            write_expr(expr, Prec::Add, out);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            if needs {
                out.push(')');
            }
        }
    }
}

fn bump(p: Prec) -> Prec {
    match p {
        Prec::Lowest => Prec::Or,
        Prec::Or => Prec::And,
        Prec::And => Prec::Not,
        Prec::Not => Prec::Cmp,
        Prec::Cmp => Prec::Add,
        Prec::Add => Prec::Mul,
        Prec::Mul => Prec::Unary,
        Prec::Unary => Prec::Unary,
    }
}

fn write_literal(lit: &Literal, out: &mut String) {
    match lit {
        Literal::Null => out.push_str("NULL"),
        Literal::Bool(true) => out.push_str("TRUE"),
        Literal::Bool(false) => out.push_str("FALSE"),
        Literal::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Literal::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                // Keep a trailing `.0` so floats re-parse as floats.
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Literal::Str(s) => {
            out.push('\'');
            for ch in s.chars() {
                if ch == '\'' {
                    out.push('\'');
                }
                out.push(ch);
            }
            out.push('\'');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select};

    fn roundtrip_expr(input: &str) {
        let e = parse_expr(input).unwrap();
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(
            e, reparsed,
            "round-trip failed for `{input}` -> `{printed}`"
        );
    }

    fn roundtrip_select(input: &str) {
        let q = parse_select(input).unwrap();
        let printed = print_select(&q);
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(
            q, reparsed,
            "round-trip failed for `{input}` -> `{printed}`"
        );
    }

    #[test]
    fn prints_canonical_select() {
        let q = parse_select(
            "select  queue ,  count( * ) as n from cs where queue in('A')  group by queue",
        )
        .unwrap();
        assert_eq!(
            print_select(&q),
            "SELECT queue, COUNT(*) AS n FROM cs WHERE queue IN ('A') GROUP BY queue"
        );
    }

    #[test]
    fn roundtrips_representative_expressions() {
        for s in [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a - b - c",
            "a / b / c",
            "NOT a = 1 AND b = 2",
            "NOT (a = 1 AND b = 2)",
            "x BETWEEN 1 AND 5 OR y IN ('p', 'q')",
            "SUM(x) / COUNT(*) >= 0.5",
            "x IS NOT NULL",
            "-x + 3",
            "COUNT(DISTINCT rep)",
            "(a = 1 OR b = 2) AND c = 3",
        ] {
            roundtrip_expr(s);
        }
    }

    #[test]
    fn roundtrips_representative_selects() {
        for s in [
            "SELECT a FROM t",
            "SELECT a, b, COUNT(*) FROM t WHERE a > 1 GROUP BY a, b",
            "SELECT hour, COUNT(*) AS call_volume, SUM(abandoned) AS call_abandonment \
             FROM customer_service GROUP BY hour",
            "SELECT queue, COUNT(lostCalls) FROM customer_service GROUP BY queue \
             HAVING COUNT(lostCalls) > 1",
            "SELECT a FROM t ORDER BY a DESC LIMIT 3",
        ] {
            roundtrip_select(s);
        }
    }

    #[test]
    fn string_escaping_roundtrips() {
        roundtrip_expr("name = 'O''Brien'");
    }

    #[test]
    fn float_keeps_decimal_point() {
        assert_eq!(print_expr(&Expr::float(2.0)), "2.0");
        assert_eq!(print_expr(&Expr::float(2.5)), "2.5");
    }

    #[test]
    fn whitespace_insensitive_inputs_print_identically() {
        let a = parse_select("SELECT a,b FROM t WHERE x=1").unwrap();
        let b = parse_select("select   a , b   from t   where x = 1").unwrap();
        assert_eq!(print_select(&a), print_select(&b));
    }
}
