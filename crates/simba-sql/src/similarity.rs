//! Whitespace-insensitive string similarity.
//!
//! Implements the paper's fallback equivalence rule (§4.1.2): "we infer
//! equivalence if … string matching indicates >95% similarity after
//! processing to remove additional whitespace."

/// Collapse whitespace runs to single spaces, trim, and lowercase.
pub fn canonicalize_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true; // leading whitespace is dropped
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Levenshtein edit distance over `char`s, two-row dynamic programming.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Similarity in `[0, 1]`: `1 - distance / max_len` after canonicalization.
pub fn similarity(a: &str, b: &str) -> f64 {
    let ca = canonicalize_text(a);
    let cb = canonicalize_text(b);
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    let max_len = ca.chars().count().max(cb.chars().count());
    let dist = levenshtein(&ca, &cb);
    1.0 - dist as f64 / max_len as f64
}

/// The paper's similarity threshold for inferred equivalence.
pub const SIMILARITY_THRESHOLD: f64 = 0.95;

/// True when two SQL strings are >95% similar after whitespace removal.
pub fn nearly_identical(a: &str, b: &str) -> bool {
    similarity(a, b) > SIMILARITY_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_collapses_whitespace() {
        assert_eq!(
            canonicalize_text("  SELECT   a\n FROM\tt "),
            "select a from t"
        );
    }

    #[test]
    fn identical_strings_have_similarity_one() {
        assert_eq!(similarity("SELECT a FROM t", "select  a  from  t"), 1.0);
    }

    #[test]
    fn disjoint_strings_have_low_similarity() {
        assert!(similarity("abcdef", "uvwxyz") < 0.2);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn single_char_difference_in_long_query_is_nearly_identical() {
        let a = "SELECT queue, hour, callDirection, COUNT(calls) FROM customer_service \
                 WHERE queue IN ('A') GROUP BY queue, hour, callDirection";
        let b = a.replace("('A')", "('B')");
        assert!(nearly_identical(a, &b));
        assert!(similarity(a, &b) < 1.0);
    }

    #[test]
    fn different_queries_are_not_nearly_identical() {
        let a = "SELECT COUNT(lostCalls) FROM customer_service";
        let b = "SELECT rep, AVG(duration) FROM calls GROUP BY rep";
        assert!(!nearly_identical(a, b));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("", "x"), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = "SELECT a FROM t WHERE x = 1";
        let b = "SELECT a FROM t WHERE x = 2 AND y = 3";
        assert!((similarity(a, b) - similarity(b, a)).abs() < 1e-12);
    }
}
