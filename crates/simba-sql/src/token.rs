//! Lexer for the SIMBA SQL fragment.

use crate::error::ParseError;

/// A lexical token with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Kinds of tokens produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Double-quoted identifier — never treated as a keyword.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::QuotedIdent(s) => format!("quoted identifier `\"{s}\"`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::NotEq => "`<>`".to_string(),
            TokenKind::Lt => "`<`".to_string(),
            TokenKind::LtEq => "`<=`".to_string(),
            TokenKind::Gt => "`>`".to_string(),
            TokenKind::GtEq => "`>=`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Tokenize SQL text into a vector of tokens terminated by [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::with_capacity(input.len() / 4 + 4);
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            b'-' => {
                // `--` starts a line comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: i,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "unexpected `!`"));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        offset: i,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: i,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: i,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (kind, next) = lex_number(input, i)?;
                tokens.push(Token { kind, offset: i });
                i = next;
            }
            b'.' => {
                // Leading-dot float like `.5`.
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (kind, next) = lex_number(input, i)?;
                    tokens.push(Token { kind, offset: i });
                    i = next;
                } else {
                    return Err(ParseError::new(i, "unexpected `.`"));
                }
            }
            b'"' => {
                // Double-quoted identifier.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::new(i, "unterminated quoted identifier"));
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(input[start..j].to_string()),
                    offset: i,
                });
                i = j + 1;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        if i >= bytes.len() {
            return Err(ParseError::new(start, "unterminated string literal"));
        }
        if bytes[i] == b'\'' {
            // `''` escapes a single quote.
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Strings may contain multi-byte UTF-8; copy char-wise.
            let ch = input[i..].chars().next().expect("valid utf8");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
}

fn lex_number(input: &str, start: usize) -> Result<(TokenKind, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if !saw_exp => {
                saw_exp = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if saw_dot || saw_exp {
        let v: f64 = text
            .parse()
            .map_err(|_| ParseError::new(start, format!("invalid float literal `{text}`")))?;
        Ok((TokenKind::Float(v), i))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| ParseError::new(start, format!("invalid integer literal `{text}`")))?;
        Ok((TokenKind::Int(v), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ks = kinds("SELECT a, COUNT(*) FROM t WHERE x >= 1.5");
        assert!(matches!(ks[0], TokenKind::Ident(ref s) if s == "SELECT"));
        assert!(ks.contains(&TokenKind::Star));
        assert!(ks.contains(&TokenKind::GtEq));
        assert!(ks.contains(&TokenKind::Float(1.5)));
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        let ks = kinds("'it''s'");
        assert_eq!(ks[0], TokenKind::Str("it's".to_string()));
    }

    #[test]
    fn lexes_not_equal_variants() {
        assert_eq!(kinds("<>")[0], TokenKind::NotEq);
        assert_eq!(kinds("!=")[0], TokenKind::NotEq);
    }

    #[test]
    fn lexes_comments() {
        let ks = kinds("a -- a comment\n b");
        assert_eq!(ks.len(), 3); // a, b, EOF
    }

    #[test]
    fn lexes_scientific_notation() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5E-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn lexes_quoted_identifier() {
        let ks = kinds("\"weird name\"");
        assert_eq!(ks[0], TokenKind::QuotedIdent("weird name".to_string()));
    }

    #[test]
    fn quoted_keyword_is_not_a_keyword_token() {
        let ks = kinds("\"not\"");
        assert_eq!(ks[0], TokenKind::QuotedIdent("not".to_string()));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn offsets_point_at_token_start() {
        let ts = tokenize("ab  cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn dotted_identifiers_kept_whole() {
        let ks = kinds("t.col");
        assert_eq!(ks[0], TokenKind::Ident("t.col".to_string()));
    }
}
