//! Error types for the SQL frontend.

use std::fmt;

/// An error produced while lexing or parsing SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors produced by SQL-level analysis (outside of parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The query shape is outside the supported fragment.
    Unsupported(String),
    /// A referenced column does not exist in the schema under analysis.
    UnknownColumn(String),
    /// An expression was typed incorrectly (e.g. `SUM` of a string column).
    TypeMismatch(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Unsupported(msg) => write!(f, "unsupported SQL: {msg}"),
            SqlError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            SqlError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}
