//! SQL frontend for the SIMBA benchmark.
//!
//! Dashboards emit a constrained SQL fragment (single-table aggregation
//! queries with conjunctive predicates — see §2–§3 of the paper). This crate
//! provides everything the benchmark needs to create, parse, print, and
//! reason about that fragment:
//!
//! * [`ast`] — the abstract syntax tree ([`Select`], [`Expr`], [`Literal`]).
//! * [`parser`] — a recursive-descent parser ([`parse_select`], [`parse_expr`]).
//! * [`printer`] — a canonical pretty-printer (every AST prints to a unique,
//!   stable textual form, making *syntactic* equivalence meaningful).
//! * [`normalize`] — semantic normal form used by the equivalence suite
//!   (flattened conjuncts, folded constants, sorted commutative operands).
//! * [`implication`] — sound-but-incomplete predicate implication, the basis
//!   of query subsumption checks.
//! * [`refine`] — refinement verdicts and delta keys for session-delta
//!   execution (is the next query provably a subset of the previous one?).
//! * [`similarity`] — whitespace-insensitive string similarity implementing
//!   the paper's ">95% match" fallback rule (§4.1.2).
//!
//! # Example
//!
//! ```
//! use simba_sql::{parse_select, normalize::NormalizedSelect};
//!
//! let a = parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap();
//! let b = parse_select("select queue, count( * ) from cs group by queue").unwrap();
//! assert_eq!(NormalizedSelect::from_select(&a), NormalizedSelect::from_select(&b));
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod implication;
pub mod normalize;
pub mod parser;
pub mod printer;
pub mod refine;
pub mod similarity;
pub mod token;

pub use ast::{BinOp, Expr, Func, Literal, OrderByExpr, Select, SelectItem, UnaryOp};
pub use builder::SelectBuilder;
pub use error::{ParseError, SqlError};
pub use normalize::{query_cache_key, NormalizedSelect};
pub use parser::{parse_expr, parse_select};
pub use refine::{delta_key, is_refinement, states_key};
