//! Abstract syntax tree for the SQL fragment emitted by dashboards.
//!
//! The fragment is deliberately constrained (single-table SELECT with
//! conjunctive predicates, grouping, and aggregation) — the paper's formative
//! study (§2.1) found that dashboard queries "maintain a consistent
//! structure", and this AST captures exactly that structure.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A SQL literal value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Literal {
    /// Numeric value of the literal if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(v) => Some(*v as f64),
            Literal::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// True if two literals denote the same value, treating `1` and `1.0`
    /// as equal.
    pub fn same_value(&self, other: &Literal) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Literal {}

impl PartialOrd for Literal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Literal {
    fn cmp(&self, other: &Self) -> Ordering {
        use Literal::*;
        fn rank(l: &Literal) -> u8 {
            match l {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Literal::Null => 0u8.hash(state),
            Literal::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash identically when they denote the same value
            // so that `same_value` equality is hash-consistent.
            Literal::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Literal::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Literal::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// True for `=`, `<>`, `<`, `<=`, `>`, `>=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    /// True for `+`, `-`, `*`, `/`.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }

    /// Mirror a comparison across its operands (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    /// True if the operator is commutative (`a op b` = `b op a`).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Or | BinOp::And | BinOp::Eq | BinOp::NotEq | BinOp::Add | BinOp::Mul
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Built-in functions: the aggregates and scalar (date-part / binning)
/// functions that dashboard queries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Func {
    // Aggregates.
    Count,
    Sum,
    Avg,
    Min,
    Max,
    // Scalar date-part extraction (operate on temporal columns).
    Year,
    Month,
    Day,
    Hour,
    DayOfWeek,
    // Binned aggregation support: `BIN(expr, width)` floors the expression
    // to a multiple of `width` (IDEBench-style binning).
    Bin,
    // Absolute value; used by derived/computed fields.
    Abs,
}

impl Func {
    /// True for `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`.
    pub fn is_aggregate(self) -> bool {
        matches!(
            self,
            Func::Count | Func::Sum | Func::Avg | Func::Min | Func::Max
        )
    }

    /// True for the date-part extraction functions.
    pub fn is_date_part(self) -> bool {
        matches!(
            self,
            Func::Year | Func::Month | Func::Day | Func::Hour | Func::DayOfWeek
        )
    }

    /// SQL spelling of the function name.
    pub fn name(self) -> &'static str {
        match self {
            Func::Count => "COUNT",
            Func::Sum => "SUM",
            Func::Avg => "AVG",
            Func::Min => "MIN",
            Func::Max => "MAX",
            Func::Year => "YEAR",
            Func::Month => "MONTH",
            Func::Day => "DAY",
            Func::Hour => "HOUR",
            Func::DayOfWeek => "DAYOFWEEK",
            Func::Bin => "BIN",
            Func::Abs => "ABS",
        }
    }

    /// Parse a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => Func::Count,
            "SUM" => Func::Sum,
            "AVG" => Func::Avg,
            "MIN" => Func::Min,
            "MAX" => Func::Max,
            "YEAR" => Func::Year,
            "MONTH" => Func::Month,
            "DAY" => Func::Day,
            "HOUR" => Func::Hour,
            "DAYOFWEEK" => Func::DayOfWeek,
            "BIN" => Func::Bin,
            "ABS" => Func::Abs,
            _ => return None,
        })
    }
}

/// A SQL scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference. Column names are compared case-insensitively by
    /// the normalizer; the AST preserves the spelling it was built with.
    Column(String),
    /// A literal constant.
    Literal(Literal),
    /// `COUNT(*)`.
    Wildcard,
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// Function call; `distinct` is only meaningful for aggregates.
    Function {
        func: Func,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// Convenience constructor for a string literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::Str(v.into()))
    }

    /// Convenience constructor for a binary operation.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(self, BinOp::Or, other)
    }

    /// `func(expr)` aggregate call.
    pub fn agg(func: Func, arg: Expr) -> Expr {
        Expr::Function {
            func,
            args: vec![arg],
            distinct: false,
        }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Expr {
        Expr::Function {
            func: Func::Count,
            args: vec![Expr::Wildcard],
            distinct: false,
        }
    }

    /// `expr IN (values)` where values are string literals.
    pub fn in_strs<I: IntoIterator<Item = S>, S: Into<String>>(col: &str, values: I) -> Expr {
        Expr::InList {
            expr: Box::new(Expr::col(col)),
            list: values.into_iter().map(Expr::str).collect(),
            negated: false,
        }
    }

    /// True if the expression contains an aggregate function call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { func, args, .. } => {
                func.is_aggregate() || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => false,
        }
    }

    /// Append all column names referenced by the expression to `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(name) => out.push(name),
            Expr::Literal(_) | Expr::Wildcard => {}
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// All column names referenced by the expression, deduplicated, in
    /// first-appearance order.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        let mut seen = std::collections::HashSet::new();
        cols.retain(|c| seen.insert(*c));
        cols
    }

    /// Split a predicate tree into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Combine predicates with `AND`; `None` if the input is empty.
    pub fn conjoin(preds: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        preds.into_iter().reduce(Expr::and)
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    /// An item without an alias.
    pub fn bare(expr: Expr) -> Self {
        Self { expr, alias: None }
    }

    /// An item with an alias (`expr AS alias`).
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        Self {
            expr,
            alias: Some(alias.into()),
        }
    }

    /// The output column name: the alias if present, otherwise the canonical
    /// printed form of the expression.
    pub fn output_name(&self) -> String {
        match &self.alias {
            Some(a) => a.clone(),
            None => crate::printer::print_expr(&self.expr),
        }
    }
}

/// One `ORDER BY` term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderByExpr {
    pub expr: Expr,
    pub asc: bool,
}

/// A complete `SELECT` statement over a single (denormalized) table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Select {
    pub projections: Vec<SelectItem>,
    pub from: String,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByExpr>,
    pub limit: Option<u64>,
}

impl Select {
    /// A minimal `SELECT` over `table` with the given projections.
    pub fn new(table: impl Into<String>, projections: Vec<SelectItem>) -> Self {
        Self {
            projections,
            from: table.into(),
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        }
    }

    /// True if any projection or the HAVING clause aggregates.
    pub fn is_aggregate_query(&self) -> bool {
        !self.group_by.is_empty()
            || self.projections.iter().any(|p| p.expr.contains_aggregate())
            || self.having.as_ref().is_some_and(Expr::contains_aggregate)
    }

    /// All column names referenced anywhere in the statement, deduplicated.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols = Vec::new();
        for item in &self.projections {
            item.expr.collect_columns(&mut cols);
        }
        if let Some(w) = &self.where_clause {
            w.collect_columns(&mut cols);
        }
        for g in &self.group_by {
            g.collect_columns(&mut cols);
        }
        if let Some(h) = &self.having {
            h.collect_columns(&mut cols);
        }
        for o in &self.order_by {
            o.expr.collect_columns(&mut cols);
        }
        let mut seen = std::collections::HashSet::new();
        cols.retain(|c| seen.insert(*c));
        cols
    }

    /// Top-level conjuncts of the WHERE clause (empty when absent).
    pub fn filters(&self) -> Vec<&Expr> {
        self.where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default()
    }

    /// Add one conjunct to the WHERE clause.
    pub fn add_filter(&mut self, predicate: Expr) {
        self.where_clause = Some(match self.where_clause.take() {
            Some(w) => w.and(predicate),
            None => predicate,
        });
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_select(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_expr(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_ordering_mixes_int_and_float() {
        assert_eq!(Literal::Int(3).cmp(&Literal::Float(3.0)), Ordering::Equal);
        assert!(Literal::Int(2) < Literal::Float(2.5));
        assert!(Literal::Null < Literal::Int(0));
        assert!(Literal::Int(1) < Literal::Str("a".into()));
    }

    #[test]
    fn literal_same_value_across_types() {
        assert!(Literal::Int(4).same_value(&Literal::Float(4.0)));
        assert!(!Literal::Int(4).same_value(&Literal::Str("4".into())));
    }

    #[test]
    fn conjunct_splitting_flattens_nested_ands() {
        let e = Expr::col("a")
            .and(Expr::col("b").and(Expr::col("c")))
            .and(Expr::col("d"));
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 4);
    }

    #[test]
    fn conjoin_rebuilds_predicate() {
        let parts = vec![Expr::col("a"), Expr::col("b")];
        let e = Expr::conjoin(parts).unwrap();
        assert_eq!(e.conjuncts().len(), 2);
        assert!(Expr::conjoin(std::iter::empty()).is_none());
    }

    #[test]
    fn aggregate_detection() {
        let q = Select::new("t", vec![SelectItem::bare(Expr::count_star())]);
        assert!(q.is_aggregate_query());
        let q2 = Select::new("t", vec![SelectItem::bare(Expr::col("a"))]);
        assert!(!q2.is_aggregate_query());
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let mut q = Select::new(
            "t",
            vec![
                SelectItem::bare(Expr::col("a")),
                SelectItem::bare(Expr::agg(Func::Sum, Expr::col("b"))),
            ],
        );
        q.add_filter(Expr::binary(Expr::col("a"), BinOp::Gt, Expr::int(1)));
        q.group_by.push(Expr::col("a"));
        let cols = q.referenced_columns();
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn add_filter_appends_conjuncts() {
        let mut q = Select::new("t", vec![SelectItem::bare(Expr::col("a"))]);
        q.add_filter(Expr::binary(Expr::col("a"), BinOp::Eq, Expr::int(1)));
        q.add_filter(Expr::binary(Expr::col("b"), BinOp::Eq, Expr::int(2)));
        assert_eq!(q.filters().len(), 2);
    }

    #[test]
    fn binop_flip_mirrors_comparisons() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::GtEq.flip(), BinOp::LtEq);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
    }

    #[test]
    fn output_name_prefers_alias() {
        let item = SelectItem::aliased(Expr::count_star(), "total");
        assert_eq!(item.output_name(), "total");
        let bare = SelectItem::bare(Expr::col("x"));
        assert_eq!(bare.output_name(), "x");
    }
}
