//! Sound-but-incomplete predicate implication.
//!
//! Query subsumption (§4.1.2: "if one query is the prefix of another ... or
//! if semantically one query should subsume the other") reduces, for the
//! single-table fragment, to predicate implication: the goal query's rows are
//! a subset of an observed query's rows when `goal.WHERE ⇒ observed.WHERE`.
//!
//! We compile a conjunctive predicate into per-expression [`Domain`]s
//! (an interval plus allowed/excluded value sets) and check domain
//! containment. Any construct we cannot reason about precisely (disjunctions
//! across different expressions, arithmetic between columns, …) makes the
//! compilation fail, and callers fall back to weaker checks — implication is
//! therefore *sound*: a `true` answer is always correct.

use crate::ast::{BinOp, Expr, Literal};
use crate::normalize::normalize_expr;
use crate::printer::print_expr;
use std::collections::{BTreeMap, BTreeSet};

/// An interval endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    Unbounded,
    /// Inclusive endpoint.
    Incl(Literal),
    /// Exclusive endpoint.
    Excl(Literal),
}

/// The set of values an expression may take under a conjunctive predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    /// Lower interval endpoint.
    pub low: Bound,
    /// Upper interval endpoint.
    pub high: Bound,
    /// If present, the value must be a member of this set (`IN` / `=`).
    pub allowed: Option<BTreeSet<Literal>>,
    /// The value must not be any member of this set (`NOT IN` / `<>`).
    pub excluded: BTreeSet<Literal>,
    /// `IS NOT NULL` was asserted.
    pub not_null: bool,
    /// `IS NULL` was asserted (the domain is exactly {NULL}).
    pub only_null: bool,
}

impl Default for Domain {
    fn default() -> Self {
        Domain {
            low: Bound::Unbounded,
            high: Bound::Unbounded,
            allowed: None,
            excluded: BTreeSet::new(),
            not_null: false,
            only_null: false,
        }
    }
}

impl Domain {
    /// True when the domain places no constraint at all.
    pub fn is_unconstrained(&self) -> bool {
        self == &Domain::default()
    }

    fn tighten_low(&mut self, bound: Bound) {
        self.low = match (&self.low, &bound) {
            (Bound::Unbounded, _) => bound,
            (_, Bound::Unbounded) => self.low.clone(),
            (Bound::Incl(a) | Bound::Excl(a), Bound::Incl(b) | Bound::Excl(b)) => {
                if b > a {
                    bound
                } else if a > b {
                    self.low.clone()
                } else if matches!(self.low, Bound::Excl(_)) || matches!(bound, Bound::Excl(_)) {
                    Bound::Excl(a.clone())
                } else {
                    Bound::Incl(a.clone())
                }
            }
        };
    }

    fn tighten_high(&mut self, bound: Bound) {
        self.high = match (&self.high, &bound) {
            (Bound::Unbounded, _) => bound,
            (_, Bound::Unbounded) => self.high.clone(),
            (Bound::Incl(a) | Bound::Excl(a), Bound::Incl(b) | Bound::Excl(b)) => {
                if b < a {
                    bound
                } else if a < b {
                    self.high.clone()
                } else if matches!(self.high, Bound::Excl(_)) || matches!(bound, Bound::Excl(_)) {
                    Bound::Excl(a.clone())
                } else {
                    Bound::Incl(a.clone())
                }
            }
        };
    }

    fn restrict_allowed(&mut self, values: BTreeSet<Literal>) {
        self.allowed = Some(match self.allowed.take() {
            Some(existing) => existing.intersection(&values).cloned().collect(),
            None => values,
        });
    }

    /// A domain that admits nothing: `IS NULL` asserted alongside any
    /// constraint that NULL cannot satisfy.
    pub fn is_contradictory(&self) -> bool {
        self.only_null
            && (self.not_null
                || self.allowed.is_some()
                || !self.excluded.is_empty()
                || self.low != Bound::Unbounded
                || self.high != Bound::Unbounded)
    }

    /// Is every value admitted by `self` also admitted by `other`?
    /// Conservative: returns `false` when containment cannot be proven.
    pub fn contained_in(&self, other: &Domain) -> bool {
        // The empty domain is contained in everything.
        if self.is_contradictory() {
            return true;
        }
        if other.is_unconstrained() {
            return true;
        }
        if other.is_contradictory() {
            return false;
        }
        if other.only_null {
            return self.only_null;
        }
        if self.only_null {
            // {NULL} is contained only in unconstrained or only_null domains:
            // any comparison/IN constraint rejects NULL under SQL semantics —
            // and so does an explicit NOT NULL.
            return false;
        }

        // Every value set admitted by `self`.
        if let Some(allowed) = &self.allowed {
            // Finite domain: check each value the domain *actually* admits
            // (members rejected by self's own interval/exclusions make the
            // effective domain smaller — possibly empty, which is contained
            // in everything).
            return allowed
                .iter()
                .filter(|v| self.admits(v))
                .all(|v| other.admits(v));
        }

        // `self` is interval/exclusion-shaped. `other` must not require a
        // finite membership set we cannot verify.
        if other.allowed.is_some() {
            return false;
        }
        // Interval containment.
        if !low_contained(&self.low, &other.low) || !high_contained(&self.high, &other.high) {
            return false;
        }
        // `other`'s exclusions must be excluded by `self` too (either listed,
        // or outside self's interval).
        for ex in &other.excluded {
            let outside = !interval_admits(&self.low, &self.high, ex);
            if !self.excluded.contains(ex) && !outside {
                return false;
            }
        }
        // NOT NULL: intervals and exclusion constraints already reject NULL
        // under SQL comparison semantics, so any null-rejecting domain
        // satisfies an `IS NOT NULL` requirement.
        if other.not_null && !self.is_null_rejecting() {
            return false;
        }
        true
    }

    /// Does the domain admit this specific (non-null) literal?
    pub fn admits(&self, v: &Literal) -> bool {
        if self.is_contradictory() {
            return false;
        }
        if self.only_null {
            return matches!(v, Literal::Null);
        }
        if matches!(v, Literal::Null) {
            return !self.is_null_rejecting();
        }
        if let Some(allowed) = &self.allowed {
            if !allowed.iter().any(|a| a.same_value(v)) {
                return false;
            }
        }
        if self.excluded.iter().any(|e| e.same_value(v)) {
            return false;
        }
        interval_admits(&self.low, &self.high, v)
    }

    /// True when NULL cannot satisfy this domain's constraints under SQL
    /// comparison semantics.
    fn is_null_rejecting(&self) -> bool {
        self.not_null
            || self.allowed.is_some()
            || !self.excluded.is_empty()
            || self.low != Bound::Unbounded
            || self.high != Bound::Unbounded
    }
}

fn interval_admits(low: &Bound, high: &Bound, v: &Literal) -> bool {
    // Ordered comparisons across type classes are UNKNOWN in SQL, which a
    // WHERE clause treats as "row excluded" — so a bound of a different
    // class admits nothing.
    let lo_ok = match low {
        Bound::Unbounded => true,
        Bound::Incl(b) => same_class(v, b) && v >= b,
        Bound::Excl(b) => same_class(v, b) && v > b,
    };
    let hi_ok = match high {
        Bound::Unbounded => true,
        Bound::Incl(b) => same_class(v, b) && v <= b,
        Bound::Excl(b) => same_class(v, b) && v < b,
    };
    lo_ok && hi_ok
}

/// Are two literals in the same comparable type class (numbers together,
/// strings together, booleans together)?
fn same_class(a: &Literal, b: &Literal) -> bool {
    fn class(l: &Literal) -> u8 {
        match l {
            Literal::Null => 0,
            Literal::Bool(_) => 1,
            Literal::Int(_) | Literal::Float(_) => 2,
            Literal::Str(_) => 3,
        }
    }
    class(a) == class(b)
}

/// Is `inner` a lower bound at least as tight as `outer`?
fn low_contained(inner: &Bound, outer: &Bound) -> bool {
    match (outer, inner) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Incl(o), Bound::Incl(i) | Bound::Excl(i)) => i >= o,
        (Bound::Excl(o), Bound::Excl(i)) => i >= o,
        (Bound::Excl(o), Bound::Incl(i)) => i > o,
    }
}

/// Is `inner` an upper bound at least as tight as `outer`?
fn high_contained(inner: &Bound, outer: &Bound) -> bool {
    match (outer, inner) {
        (Bound::Unbounded, _) => true,
        (_, Bound::Unbounded) => false,
        (Bound::Incl(o), Bound::Incl(i) | Bound::Excl(i)) => i <= o,
        (Bound::Excl(o), Bound::Excl(i)) => i <= o,
        (Bound::Excl(o), Bound::Incl(i)) => i < o,
    }
}

/// A conjunctive predicate compiled to per-expression domains, keyed by the
/// canonical printed form of the left-hand expression.
pub type DomainMap = BTreeMap<String, Domain>;

/// Compile a (normalized or raw) predicate into a [`DomainMap`].
///
/// Returns `None` if the predicate contains constructs outside the
/// conjunctive-atom fragment (e.g. disjunctions over different expressions or
/// comparisons between two non-literal expressions).
pub fn compile_conjunction(pred: &Expr) -> Option<DomainMap> {
    let normalized = normalize_expr(pred);
    let mut map = DomainMap::new();
    for conjunct in normalized.conjuncts() {
        absorb_atom(conjunct, &mut map)?;
    }
    Some(map)
}

fn absorb_atom(atom: &Expr, map: &mut DomainMap) -> Option<()> {
    match atom {
        Expr::Literal(Literal::Bool(true)) => Some(()),
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let Expr::Literal(value) = right.as_ref() else {
                return None;
            };
            if matches!(left.as_ref(), Expr::Literal(_)) {
                return None;
            }
            let key = print_expr(left);
            let dom = map.entry(key).or_default();
            match op {
                BinOp::Eq => dom.restrict_allowed([value.clone()].into()),
                BinOp::NotEq => {
                    dom.excluded.insert(value.clone());
                }
                BinOp::Lt => dom.tighten_high(Bound::Excl(value.clone())),
                BinOp::LtEq => dom.tighten_high(Bound::Incl(value.clone())),
                BinOp::Gt => dom.tighten_low(Bound::Excl(value.clone())),
                BinOp::GtEq => dom.tighten_low(Bound::Incl(value.clone())),
                _ => unreachable!(),
            }
            Some(())
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let mut values = BTreeSet::new();
            for item in list {
                let Expr::Literal(lit) = item else {
                    return None;
                };
                values.insert(lit.clone());
            }
            let key = print_expr(expr);
            let dom = map.entry(key).or_default();
            if *negated {
                dom.excluded.extend(values);
            } else {
                dom.restrict_allowed(values);
            }
            Some(())
        }
        Expr::IsNull { expr, negated } => {
            let key = print_expr(expr);
            let dom = map.entry(key).or_default();
            if *negated {
                dom.not_null = true;
            } else {
                dom.only_null = true;
            }
            Some(())
        }
        // A disjunction confined to a single expression compiles to a value
        // set union; anything broader bails out.
        Expr::Binary { op: BinOp::Or, .. } => {
            let mut disjuncts = Vec::new();
            collect_disjuncts(atom, &mut disjuncts);
            let mut key: Option<String> = None;
            let mut values = BTreeSet::new();
            for d in disjuncts {
                let (k, v) = match d {
                    Expr::Binary {
                        left,
                        op: BinOp::Eq,
                        right,
                    } => {
                        let Expr::Literal(lit) = right.as_ref() else {
                            return None;
                        };
                        (print_expr(left), vec![lit.clone()])
                    }
                    Expr::InList {
                        expr,
                        list,
                        negated: false,
                    } => {
                        let mut vs = Vec::with_capacity(list.len());
                        for item in list {
                            let Expr::Literal(lit) = item else {
                                return None;
                            };
                            vs.push(lit.clone());
                        }
                        (print_expr(expr), vs)
                    }
                    _ => return None,
                };
                match &key {
                    None => key = Some(k),
                    Some(existing) if *existing == k => {}
                    Some(_) => return None,
                }
                values.extend(v);
            }
            let key = key?;
            map.entry(key).or_default().restrict_allowed(values);
            Some(())
        }
        _ => None,
    }
}

fn collect_disjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        left,
        op: BinOp::Or,
        right,
    } = e
    {
        collect_disjuncts(left, out);
        collect_disjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Does `p ⇒ q` hold? Sound: `true` is always correct; `false` may mean
/// "could not prove".
pub fn implies(p: &Expr, q: &Expr) -> bool {
    let Some(dp) = compile_conjunction(p) else {
        return false;
    };
    let Some(dq) = compile_conjunction(q) else {
        return false;
    };
    domains_imply(&dp, &dq)
}

/// Domain-level implication: every constraint in `q` must contain the
/// corresponding constraint in `p`.
pub fn domains_imply(p: &DomainMap, q: &DomainMap) -> bool {
    for (key, q_dom) in q {
        if q_dom.is_unconstrained() {
            continue;
        }
        match p.get(key) {
            Some(p_dom) => {
                if !p_dom.contained_in(q_dom) {
                    return false;
                }
            }
            // p places no constraint on this expression: implication only
            // holds if q's constraint is trivial, which we ruled out.
            None => return false,
        }
    }
    true
}

/// Optional predicates: `None` means "no filter" (always true).
pub fn option_implies(p: Option<&Expr>, q: Option<&Expr>) -> bool {
    match (p, q) {
        (_, None) => true,
        (None, Some(q)) => {
            compile_conjunction(q).is_some_and(|dq| dq.values().all(Domain::is_unconstrained))
        }
        (Some(p), Some(q)) => implies(p, q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn imp(p: &str, q: &str) -> bool {
        implies(&parse_expr(p).unwrap(), &parse_expr(q).unwrap())
    }

    #[test]
    fn reflexive() {
        for s in [
            "x = 1",
            "q IN ('A', 'B')",
            "x > 3 AND y <= 2",
            "x IS NOT NULL",
        ] {
            assert!(imp(s, s), "`{s}` should imply itself");
        }
    }

    #[test]
    fn in_subset_implies_superset() {
        assert!(imp("q IN ('A')", "q IN ('A', 'B')"));
        assert!(imp("q IN ('A', 'B')", "q IN ('A', 'B', 'C')"));
        assert!(!imp("q IN ('A', 'Z')", "q IN ('A', 'B')"));
    }

    #[test]
    fn equality_implies_membership() {
        assert!(imp("q = 'A'", "q IN ('A', 'B')"));
        assert!(!imp("q IN ('A', 'B')", "q = 'A'"));
    }

    #[test]
    fn range_tightening() {
        assert!(imp("x > 5", "x > 3"));
        assert!(imp("x >= 5", "x > 3"));
        assert!(!imp("x > 3", "x > 5"));
        assert!(imp("x > 5 AND x < 7", "x > 3 AND x < 10"));
        assert!(imp("x BETWEEN 4 AND 6", "x >= 4"));
    }

    #[test]
    fn exclusive_vs_inclusive_bounds() {
        assert!(imp("x > 5", "x >= 5"));
        assert!(!imp("x >= 5", "x > 5"));
        assert!(imp("x < 5", "x <= 5"));
        assert!(!imp("x <= 5", "x < 5"));
    }

    #[test]
    fn conjunction_weakening() {
        assert!(imp("a = 1 AND b = 2", "a = 1"));
        assert!(imp("a = 1 AND b = 2", "b = 2"));
        assert!(!imp("a = 1", "a = 1 AND b = 2"));
    }

    #[test]
    fn true_predicate_implied_by_all() {
        assert!(imp("a = 1", "TRUE"));
    }

    #[test]
    fn equality_within_range() {
        assert!(imp("x = 5", "x > 3"));
        assert!(imp("x = 5", "x BETWEEN 5 AND 10"));
        assert!(!imp("x = 2", "x > 3"));
    }

    #[test]
    fn not_equal_exclusions() {
        assert!(imp("x <> 3", "x <> 3"));
        assert!(!imp("x <> 3", "x <> 4"));
        assert!(imp("x IN (1, 2)", "x <> 3"));
        assert!(!imp("x IN (1, 3)", "x <> 3"));
    }

    #[test]
    fn null_handling() {
        assert!(imp("x IS NULL", "x IS NULL"));
        assert!(!imp("x IS NULL", "x = 1"));
        assert!(!imp("x IS NULL", "x IS NOT NULL"));
        assert!(imp("x = 1", "x IS NOT NULL"));
        assert!(imp("x > 0", "x IS NOT NULL"));
    }

    #[test]
    fn disjunction_on_single_column_as_set() {
        assert!(imp("q = 'A' OR q = 'B'", "q IN ('A', 'B', 'C')"));
        assert!(!imp("q = 'A' OR q = 'Z'", "q IN ('A', 'B')"));
    }

    #[test]
    fn cross_column_disjunction_bails_to_false() {
        // Not provable in our fragment — must conservatively answer false.
        assert!(!imp("a = 1 OR b = 2", "a = 1 OR b = 2 OR c = 3"));
    }

    #[test]
    fn date_part_expressions_as_keys() {
        assert!(imp("HOUR(ts) = 9", "HOUR(ts) IN (8, 9, 10)"));
        assert!(!imp("HOUR(ts) = 7", "HOUR(ts) IN (8, 9, 10)"));
    }

    #[test]
    fn mixed_int_float_comparisons() {
        assert!(imp("x = 5", "x >= 4.5"));
        assert!(imp("x > 4.5", "x > 4"));
    }

    #[test]
    fn option_semantics() {
        let p = parse_expr("x = 1").unwrap();
        assert!(option_implies(Some(&p), None));
        assert!(!option_implies(None, Some(&p)));
        assert!(option_implies(None, None));
    }

    #[test]
    fn contradictory_in_sets_yield_empty_domain_and_imply_anything_finite() {
        // p: q IN ('A') AND q IN ('B') — empty domain, admits nothing, so it
        // is contained in any allowed-set domain.
        assert!(imp("q IN ('A') AND q IN ('B')", "q IN ('C')"));
    }
}
