//! Semantic normal form for queries and predicates.
//!
//! The equivalence suite (§4.1.2 of the paper) needs to decide whether two
//! syntactically different queries *mean* the same thing. We normalize both
//! sides and compare:
//!
//! * identifiers lowercased,
//! * constants folded (`1 + 1` → `2`),
//! * comparisons oriented expression-first (`5 < x` → `x > 5`),
//! * `BETWEEN` lowered to range conjuncts, single-element `IN` to `=`,
//! * `NOT` pushed through comparisons and De Morgan'd through `AND`/`OR`
//!   (sound under SQL's WHERE-clause semantics, where `UNKNOWN` filters the
//!   row exactly like `FALSE`),
//! * commutative operands sorted,
//! * `SUM(x) / COUNT(x)` rewritten to `AVG(x)` (the paper's Example 2.2
//!   derives averages this way),
//! * conjunct and projection sets compared order-insensitively.

use crate::ast::*;
use crate::printer::print_expr;
use std::collections::BTreeSet;

/// A `SELECT` statement reduced to its semantic content. Two queries with
/// equal `NormalizedSelect`s are semantically equivalent (the converse does
/// not hold — this is a sound, incomplete check).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NormalizedSelect {
    /// Lowercased table name.
    pub table: String,
    /// Canonical printed forms of the normalized projection expressions,
    /// order-insensitive, aliases dropped (aliases rename output columns but
    /// do not change which data is retrieved).
    pub projections: BTreeSet<String>,
    /// Canonical printed forms of the normalized WHERE conjuncts.
    pub conjuncts: BTreeSet<String>,
    /// Canonical printed forms of the normalized GROUP BY expressions.
    pub group_by: BTreeSet<String>,
    /// Canonical printed forms of the normalized HAVING conjuncts.
    pub having: BTreeSet<String>,
    /// ORDER BY terms (order matters), canonical printed with direction.
    pub order_by: Vec<String>,
    pub limit: Option<u64>,
}

impl NormalizedSelect {
    /// Normalize a parsed `SELECT`.
    pub fn from_select(q: &Select) -> Self {
        let projections = q
            .projections
            .iter()
            .map(|item| print_expr(&normalize_expr(&item.expr)))
            .collect();
        let conjuncts = match &q.where_clause {
            Some(w) => normalized_conjuncts(w),
            None => BTreeSet::new(),
        };
        let group_by = q
            .group_by
            .iter()
            .map(|g| print_expr(&normalize_expr(g)))
            .collect();
        let having = match &q.having {
            Some(h) => normalized_conjuncts(h),
            None => BTreeSet::new(),
        };
        let order_by = q
            .order_by
            .iter()
            .map(|o| {
                let dir = if o.asc { "ASC" } else { "DESC" };
                format!("{} {dir}", print_expr(&normalize_expr(&o.expr)))
            })
            .collect();
        NormalizedSelect {
            table: q.from.to_ascii_lowercase(),
            projections,
            conjuncts,
            group_by,
            having,
            order_by,
            limit: q.limit,
        }
    }
}

impl NormalizedSelect {
    /// Render the normal form as one stable string. Note that this is the
    /// *semantic* form: projections are an alias-dropping, order-insensitive
    /// set, so it identifies queries retrieving the same data, not queries
    /// producing identical result shapes — use [`query_cache_key`] for
    /// result caching.
    pub fn cache_key(&self) -> String {
        let mut out = String::with_capacity(96);
        let mut join = |section: &str, parts: &mut dyn Iterator<Item = &String>| {
            out.push_str(section);
            out.push('{');
            let mut first = true;
            for p in parts {
                if !first {
                    out.push('\u{1f}');
                }
                first = false;
                out.push_str(p);
            }
            out.push('}');
        };
        join("t", &mut std::iter::once(&self.table));
        join("p", &mut self.projections.iter());
        join("w", &mut self.conjuncts.iter());
        join("g", &mut self.group_by.iter());
        join("h", &mut self.having.iter());
        join("o", &mut self.order_by.iter());
        match self.limit {
            Some(l) => out.push_str(&format!("l{{{l}}}")),
            None => out.push_str("l{}"),
        }
        out
    }
}

/// Cache key for a query's *results*: the semantic normal form plus the
/// output shape (the ordered, aliased projection list). Two queries share a
/// key iff a cached `ResultSet` for one can be returned
/// verbatim for the other — same rows in the same columns under the same
/// names. Spelling noise (case, whitespace, conjunct order, folded
/// constants) still collapses; projection reordering, duplication, or
/// re-aliasing — which change the result's column layout — does not.
///
/// This is the key the driver's sharded result cache uses, so equivalent
/// queries issued by different users share one cached result.
pub fn query_cache_key(q: &Select) -> String {
    let mut out = NormalizedSelect::from_select(q).cache_key();
    // Output shape: projection expressions in query order with aliases. The
    // *original* (unnormalized) print is used because it is what names the
    // output column; identifier case folds away (all name consumers in this
    // workspace compare case-insensitively) but string-literal case is data
    // and must stay significant.
    out.push_str("s{");
    for (i, item) in q.projections.iter().enumerate() {
        if i > 0 {
            out.push('\u{1f}');
        }
        out.push_str(&fold_case_outside_strings(&print_expr(&item.expr)));
        if let Some(alias) = &item.alias {
            out.push('\u{1e}');
            out.push_str(&alias.to_ascii_lowercase());
        }
    }
    out.push('}');
    out
}

/// Lowercase everything except the interiors of single-quoted SQL string
/// literals. (An escaped quote `''` toggles the flag twice, landing back in
/// the literal, so it is handled correctly.)
fn fold_case_outside_strings(s: &str) -> String {
    let mut in_string = false;
    s.chars()
        .map(|c| {
            if c == '\'' {
                in_string = !in_string;
                c
            } else if in_string {
                c
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect()
}

/// Normalize a predicate into its canonical conjunct set.
pub fn normalized_conjuncts(pred: &Expr) -> BTreeSet<String> {
    let normalized = normalize_expr(pred);
    normalized
        .conjuncts()
        .iter()
        .map(|c| print_expr(c))
        .collect()
}

/// Normalize an expression tree (see module docs for the rewrite list).
pub fn normalize_expr(e: &Expr) -> Expr {
    let e = lower_idents(e);
    let e = push_not(&e, false);
    let e = fold_constants(&e);
    let e = rewrite_structures(&e);
    let e = sort_commutative(&e);
    // Sorting clusters literal operands of commutative chains together,
    // exposing new constant folds; fold once more so the form is a fixpoint.
    fold_constants(&e)
}

fn lower_idents(e: &Expr) -> Expr {
    map_expr(e, &|node| match node {
        Expr::Column(name) => Expr::Column(name.to_ascii_lowercase()),
        other => other,
    })
}

/// Bottom-up structural map.
fn map_expr(e: &Expr, f: &impl Fn(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(map_expr(expr, f)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(map_expr(left, f)),
            op: *op,
            right: Box::new(map_expr(right, f)),
        },
        Expr::Function {
            func,
            args,
            distinct,
        } => Expr::Function {
            func: *func,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
            distinct: *distinct,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(map_expr(expr, f)),
            list: list.iter().map(|a| map_expr(a, f)).collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(map_expr(expr, f)),
            low: Box::new(map_expr(low, f)),
            high: Box::new(map_expr(high, f)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(map_expr(expr, f)),
            negated: *negated,
        },
    };
    f(rebuilt)
}

/// Push `NOT` down to atoms. `negate` is true when an odd number of `NOT`s
/// surround the current node.
fn push_not(e: &Expr, negate: bool) -> Expr {
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => push_not(expr, !negate),
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } if negate => Expr::binary(push_not(left, true), BinOp::Or, push_not(right, true)),
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } if negate => Expr::binary(push_not(left, true), BinOp::And, push_not(right, true)),
        Expr::Binary { left, op, right } if op.is_comparison() && negate => {
            let flipped = match op {
                BinOp::Eq => BinOp::NotEq,
                BinOp::NotEq => BinOp::Eq,
                BinOp::Lt => BinOp::GtEq,
                BinOp::LtEq => BinOp::Gt,
                BinOp::Gt => BinOp::LtEq,
                BinOp::GtEq => BinOp::Lt,
                _ => unreachable!(),
            };
            Expr::binary(push_not(left, false), flipped, push_not(right, false))
        }
        Expr::Binary { left, op, right } => {
            let rebuilt = Expr::binary(push_not(left, false), *op, push_not(right, false));
            wrap_not(rebuilt, negate)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let rebuilt = Expr::InList {
                expr: Box::new(push_not(expr, false)),
                list: list.iter().map(|x| push_not(x, false)).collect(),
                negated: *negated != negate,
            };
            rebuilt
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(push_not(expr, false)),
            low: Box::new(push_not(low, false)),
            high: Box::new(push_not(high, false)),
            negated: *negated != negate,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(push_not(expr, false)),
            negated: *negated != negate,
        },
        Expr::Literal(Literal::Bool(b)) if negate => Expr::Literal(Literal::Bool(!b)),
        other => wrap_not(other.clone(), negate),
    }
}

fn wrap_not(e: Expr, negate: bool) -> Expr {
    if negate {
        Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(e),
        }
    } else {
        e
    }
}

fn fold_constants(e: &Expr) -> Expr {
    map_expr(e, &|node| {
        if let Expr::Binary { left, op, right } = &node {
            if op.is_arithmetic() {
                if let (Expr::Literal(a), Expr::Literal(b)) = (left.as_ref(), right.as_ref()) {
                    if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                        let v = match op {
                            BinOp::Add => x + y,
                            BinOp::Sub => x - y,
                            BinOp::Mul => x * y,
                            BinOp::Div => {
                                if y == 0.0 {
                                    return node;
                                }
                                x / y
                            }
                            _ => unreachable!(),
                        };
                        return if v.fract() == 0.0
                            && matches!((a, b), (Literal::Int(_), Literal::Int(_)))
                            && !matches!(op, BinOp::Div)
                        {
                            Expr::Literal(Literal::Int(v as i64))
                        } else {
                            Expr::Literal(Literal::Float(v))
                        };
                    }
                }
            }
        }
        node
    })
}

fn rewrite_structures(e: &Expr) -> Expr {
    map_expr(e, &|node| match node {
        // Orient comparisons expression-first.
        Expr::Binary {
            ref left,
            op,
            ref right,
        } if op.is_comparison()
            && matches!(left.as_ref(), Expr::Literal(_))
            && !matches!(right.as_ref(), Expr::Literal(_)) =>
        {
            Expr::binary(right.as_ref().clone(), op.flip(), left.as_ref().clone())
        }
        // Single-element IN becomes equality / inequality.
        Expr::InList {
            ref expr,
            ref list,
            negated,
        } if list.len() == 1 => Expr::binary(
            expr.as_ref().clone(),
            if negated { BinOp::NotEq } else { BinOp::Eq },
            list[0].clone(),
        ),
        // Empty IN list is always false (empty NOT IN is always true).
        Expr::InList {
            ref list, negated, ..
        } if list.is_empty() => Expr::Literal(Literal::Bool(negated)),
        // Deduplicate and sort IN lists of literals.
        Expr::InList {
            expr,
            mut list,
            negated,
        } => {
            if list.iter().all(|x| matches!(x, Expr::Literal(_))) {
                list.sort_by_key(print_expr);
                list.dedup();
                if list.len() == 1 {
                    return Expr::binary(
                        expr.as_ref().clone(),
                        if negated { BinOp::NotEq } else { BinOp::Eq },
                        list.pop().expect("len checked"),
                    );
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            }
        }
        // BETWEEN lowers to range conjuncts; NOT BETWEEN to a disjunction.
        Expr::Between {
            ref expr,
            ref low,
            ref high,
            negated,
        } => {
            let ge = Expr::binary(expr.as_ref().clone(), BinOp::GtEq, low.as_ref().clone());
            let le = Expr::binary(expr.as_ref().clone(), BinOp::LtEq, high.as_ref().clone());
            if negated {
                Expr::binary(
                    Expr::binary(expr.as_ref().clone(), BinOp::Lt, low.as_ref().clone()),
                    BinOp::Or,
                    Expr::binary(expr.as_ref().clone(), BinOp::Gt, high.as_ref().clone()),
                )
            } else {
                ge.and(le)
            }
        }
        // SUM(x) / COUNT(x) and SUM(x) / COUNT(*) canonicalize to AVG(x).
        Expr::Binary {
            ref left,
            op: BinOp::Div,
            ref right,
        } => {
            if let (
                Expr::Function {
                    func: Func::Sum,
                    args: sum_args,
                    distinct: false,
                },
                Expr::Function {
                    func: Func::Count,
                    args: count_args,
                    distinct: false,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                let count_matches = count_args.len() == 1
                    && (count_args[0] == Expr::Wildcard || count_args == sum_args);
                if sum_args.len() == 1 && count_matches {
                    return Expr::Function {
                        func: Func::Avg,
                        args: sum_args.clone(),
                        distinct: false,
                    };
                }
            }
            node
        }
        other => other,
    })
}

fn sort_commutative(e: &Expr) -> Expr {
    map_expr(e, &|node| match node {
        Expr::Binary {
            ref left,
            op,
            ref right,
        } if op.is_commutative() && !matches!(op, BinOp::Eq | BinOp::NotEq) => {
            // Flatten the whole same-operator subtree, sort by canonical
            // print, and rebuild left-deep.
            let mut leaves = Vec::new();
            flatten(&node, op, &mut leaves);
            leaves.sort_by_key(print_expr);
            let _ = (left, right);
            leaves
                .into_iter()
                .reduce(|a, b| Expr::binary(a, op, b))
                .expect("flatten yields at least one leaf")
        }
        other => other,
    })
}

fn flatten(e: &Expr, target: BinOp, out: &mut Vec<Expr>) {
    if let Expr::Binary { left, op, right } = e {
        if *op == target {
            flatten(left, target, out);
            flatten(right, target, out);
            return;
        }
    }
    out.push(e.clone());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select};

    fn norm(input: &str) -> String {
        print_expr(&normalize_expr(&parse_expr(input).unwrap()))
    }

    fn nsel(input: &str) -> NormalizedSelect {
        NormalizedSelect::from_select(&parse_select(input).unwrap())
    }

    #[test]
    fn case_insensitive_identifiers() {
        assert_eq!(norm("Queue = 'A'"), norm("queue = 'A'"));
    }

    #[test]
    fn comparison_orientation() {
        assert_eq!(norm("5 < x"), norm("x > 5"));
        assert_eq!(norm("1 = a"), norm("a = 1"));
    }

    #[test]
    fn between_lowering() {
        assert_eq!(norm("x BETWEEN 1 AND 5"), norm("x >= 1 AND x <= 5"));
    }

    #[test]
    fn not_between_lowering() {
        assert_eq!(norm("x NOT BETWEEN 1 AND 5"), norm("x < 1 OR x > 5"));
    }

    #[test]
    fn single_in_becomes_equality() {
        assert_eq!(norm("q IN ('A')"), norm("q = 'A'"));
        assert_eq!(norm("q NOT IN ('A')"), norm("q <> 'A'"));
    }

    #[test]
    fn in_list_sorted_and_deduped() {
        assert_eq!(norm("q IN ('B', 'A', 'B')"), norm("q IN ('A', 'B')"));
    }

    #[test]
    fn empty_in_is_false() {
        assert_eq!(norm("q IN ()"), "FALSE");
    }

    #[test]
    fn not_pushed_through_comparisons() {
        assert_eq!(norm("NOT x > 1"), norm("x <= 1"));
        assert_eq!(norm("NOT x = 1"), norm("x <> 1"));
        assert_eq!(norm("NOT NOT x = 1"), norm("x = 1"));
    }

    #[test]
    fn de_morgan() {
        assert_eq!(norm("NOT (a = 1 AND b = 2)"), norm("a <> 1 OR b <> 2"));
        assert_eq!(norm("NOT (a = 1 OR b = 2)"), norm("a <> 1 AND b <> 2"));
    }

    #[test]
    fn not_in_negation() {
        assert_eq!(norm("NOT q IN ('A', 'B')"), norm("q NOT IN ('A', 'B')"));
    }

    #[test]
    fn constant_folding() {
        assert_eq!(norm("x > 2 + 3"), norm("x > 5"));
        assert_eq!(norm("x > 10 / 4"), norm("x > 2.5"));
    }

    #[test]
    fn commutative_sorting() {
        assert_eq!(norm("a = 1 AND b = 2"), norm("b = 2 AND a = 1"));
        assert_eq!(norm("a = 1 OR b = 2"), norm("b = 2 OR a = 1"));
    }

    #[test]
    fn sum_over_count_is_avg() {
        assert_eq!(norm("SUM(x) / COUNT(x)"), norm("AVG(x)"));
        assert_eq!(norm("SUM(x) / COUNT(*)"), norm("AVG(x)"));
        // Different argument: not an average.
        assert_ne!(norm("SUM(x) / COUNT(y)"), norm("AVG(x)"));
    }

    #[test]
    fn select_equivalence_ignores_aliases_and_order() {
        let a = nsel("SELECT queue, COUNT(*) AS n FROM cs GROUP BY queue");
        let b = nsel("SELECT COUNT(*) total, Queue FROM CS GROUP BY QUEUE");
        assert_eq!(a, b);
    }

    #[test]
    fn select_equivalence_conjunct_order_irrelevant() {
        let a = nsel("SELECT x FROM t WHERE a = 1 AND b = 2");
        let b = nsel("SELECT x FROM t WHERE b = 2 AND a = 1");
        assert_eq!(a, b);
    }

    #[test]
    fn select_with_different_filters_not_equal() {
        let a = nsel("SELECT x FROM t WHERE a = 1");
        let b = nsel("SELECT x FROM t WHERE a = 2");
        assert_ne!(a, b);
    }

    #[test]
    fn paper_example_avg_forms_equivalent() {
        // Example 2.2: rep-level average via SUM/COUNT vs AVG.
        let a = nsel("SELECT rep_id, SUM(calls) / COUNT(calls) FROM cs GROUP BY rep_id");
        let b = nsel("SELECT rep_id, AVG(calls) FROM cs GROUP BY rep_id");
        assert_eq!(a, b);
    }

    #[test]
    fn normalization_is_idempotent() {
        for s in [
            "NOT (a = 1 AND b IN ('x', 'y'))",
            "x BETWEEN 1 AND 5 AND q IN ('B', 'A')",
            "SUM(v) / COUNT(*) > 0.5 OR 3 < y",
        ] {
            let once = normalize_expr(&parse_expr(s).unwrap());
            let twice = normalize_expr(&once);
            assert_eq!(once, twice, "not idempotent for `{s}`");
        }
    }

    #[test]
    fn cache_key_matches_for_equivalent_queries() {
        let a = parse_select("SELECT queue, COUNT(*) FROM cs WHERE a = 1 AND b = 2 GROUP BY queue")
            .unwrap();
        let b =
            parse_select("select Queue, count( * ) from CS where b = 2 and a = 1 group by QUEUE")
                .unwrap();
        assert_eq!(crate::query_cache_key(&a), crate::query_cache_key(&b));
    }

    #[test]
    fn cache_key_differs_for_different_queries() {
        let a = parse_select("SELECT x FROM t WHERE a = 1").unwrap();
        let b = parse_select("SELECT x FROM t WHERE a = 2").unwrap();
        let c = parse_select("SELECT x FROM t WHERE a = 1 LIMIT 5").unwrap();
        assert_ne!(crate::query_cache_key(&a), crate::query_cache_key(&b));
        assert_ne!(crate::query_cache_key(&a), crate::query_cache_key(&c));
    }

    #[test]
    fn cache_key_sections_prevent_cross_clause_collisions() {
        // A conjunct moving between WHERE and HAVING must change the key.
        let a = parse_select("SELECT q, COUNT(*) FROM t WHERE n > 1 GROUP BY q").unwrap();
        let b = parse_select("SELECT q, COUNT(*) FROM t GROUP BY q HAVING n > 1").unwrap();
        assert_ne!(crate::query_cache_key(&a), crate::query_cache_key(&b));
    }

    #[test]
    fn cache_key_pins_the_result_shape() {
        // Reordered, duplicated, or re-aliased projections produce results
        // with different column layouts, so they must not share a key even
        // though their semantic normal forms coincide.
        let key = |s: &str| crate::query_cache_key(&parse_select(s).unwrap());
        let base = key("SELECT queue, COUNT(*) FROM cs GROUP BY queue");
        assert_ne!(
            base,
            key("SELECT COUNT(*), queue FROM cs GROUP BY queue"),
            "reorder"
        );
        assert_ne!(
            key("SELECT queue FROM cs"),
            key("SELECT queue, queue FROM cs"),
            "dup"
        );
        assert_ne!(
            base,
            key("SELECT queue, COUNT(*) AS n FROM cs GROUP BY queue"),
            "alias"
        );
        // AVG vs SUM/COUNT retrieve the same data but name the output
        // column differently — observably distinct results.
        assert_ne!(
            key("SELECT AVG(calls) FROM cs"),
            key("SELECT SUM(calls) / COUNT(calls) FROM cs")
        );
        // String-literal case is data, not spelling.
        assert_ne!(key("SELECT 'A', 'a' FROM t"), key("SELECT 'a', 'A' FROM t"));
    }
}
