//! Recursive-descent parser for the SIMBA SQL fragment.

use crate::ast::*;
use crate::error::ParseError;
use crate::token::{tokenize, Token, TokenKind};

/// Parse a complete `SELECT` statement.
pub fn parse_select(input: &str) -> Result<Select, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let select = p.select()?;
    p.expect_eof()?;
    Ok(select)
}

/// Parse a standalone scalar/boolean expression.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    /// Consume the next token if it is the given keyword (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.offset(),
                format!("expected keyword `{kw}`, found {}", self.peek().describe()),
            ))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.offset(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            TokenKind::Eof => Ok(()),
            other => Err(ParseError::new(
                self.offset(),
                format!("unexpected trailing input: {}", other.describe()),
            )),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(ParseError::new(
                self.offset(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut projections = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_keyword("AS") {
                Some(self.ident()?)
            } else {
                // Implicit alias: a bare identifier that is not a clause keyword.
                match self.peek() {
                    TokenKind::Ident(s) if !is_clause_keyword(s) => Some(self.ident()?),
                    TokenKind::QuotedIdent(_) => Some(self.ident()?),
                    _ => None,
                }
            };
            projections.push(SelectItem { expr, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        self.expect_keyword("FROM")?;
        let from = self.ident()?;

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderByExpr { expr, asc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                TokenKind::Int(v) if v >= 0 => Some(v as u64),
                other => {
                    return Err(ParseError::new(
                        self.offset(),
                        format!(
                            "expected non-negative integer after LIMIT, found {}",
                            other.describe()
                        ),
                    ))
                }
            }
        } else {
            None
        };

        Ok(Select {
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.peek_keyword("IS") {
            self.advance();
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.peek_keyword("NOT") {
            // Look ahead: NOT IN / NOT BETWEEN; otherwise leave NOT alone.
            let next = &self.tokens.get(self.pos + 1).map(|t| &t.kind);
            let follows = matches!(
                next,
                Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case("IN") || s.eq_ignore_ascii_case("BETWEEN")
            );
            if follows {
                self.advance();
                true
            } else {
                false
            }
        } else {
            false
        };

        if self.eat_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            let mut list = Vec::new();
            if self.peek() != &TokenKind::RParen {
                loop {
                    list.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }

        if negated {
            return Err(ParseError::new(
                self.offset(),
                "expected IN or BETWEEN after NOT",
            ));
        }

        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            // Fold negation of numeric literals immediately.
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::QuotedIdent(name) => {
                self.advance();
                Ok(Expr::Column(name))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Literal::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if self.peek() == &TokenKind::LParen {
                    let Some(func) = Func::from_name(&name) else {
                        return Err(ParseError::new(
                            self.offset(),
                            format!("unknown function `{name}`"),
                        ));
                    };
                    self.advance(); // consume `(`
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if self.eat(&TokenKind::Star) {
                        args.push(Expr::Wildcard);
                    } else if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function {
                        func,
                        args,
                        distinct,
                    });
                }
                Ok(Expr::Column(name))
            }
            other => Err(ParseError::new(
                self.offset(),
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

fn is_clause_keyword(word: &str) -> bool {
    const CLAUSES: &[&str] = &[
        "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AND", "OR", "NOT", "IN",
        "BETWEEN", "IS", "AS", "ASC", "DESC",
    ];
    CLAUSES.iter().any(|k| word.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let q = parse_select("SELECT a FROM t").unwrap();
        assert_eq!(q.from, "t");
        assert_eq!(q.projections.len(), 1);
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn parses_full_clause_set() {
        let q = parse_select(
            "SELECT queue, COUNT(*) AS n FROM cs WHERE hour >= 9 AND queue IN ('A','B') \
             GROUP BY queue HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.projections[1].alias.as_deref(), Some("n"));
        assert_eq!(q.filters().len(), 2);
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_count_star() {
        let q = parse_select("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(q.projections[0].expr, Expr::count_star());
    }

    #[test]
    fn parses_count_distinct() {
        let e = parse_expr("COUNT(DISTINCT rep_id)").unwrap();
        match e {
            Expr::Function {
                func: Func::Count,
                distinct,
                ..
            } => assert!(distinct),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_between_and_not_between() {
        let e = parse_expr("x BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expr("x NOT BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn parses_in_and_not_in() {
        let e = parse_expr("q IN ('A', 'B')").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, ref list, .. } if list.len() == 2));
        let e = parse_expr("q NOT IN ('A')").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parses_is_null_variants() {
        assert!(matches!(
            parse_expr("x IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn not_binds_looser_than_comparison() {
        let e = parse_expr("NOT x = 1").unwrap();
        match e {
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => {
                assert!(matches!(*expr, Expr::Binary { op: BinOp::Eq, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::int(-5));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::float(-2.5));
    }

    #[test]
    fn implicit_alias_allowed() {
        let q = parse_select("SELECT COUNT(*) total FROM t").unwrap();
        assert_eq!(q.projections[0].alias.as_deref(), Some("total"));
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(parse_select("SELECT FOO(a) FROM t").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_select("SELECT a FROM t extra garbage !!!").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse_select("SELECT a").is_err());
    }

    #[test]
    fn parses_nested_function_division() {
        // The paper's Example 2.2 shape: AVG via SUM/COUNT.
        let e = parse_expr("SUM(abandoned) / COUNT(calls)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Div, .. }));
        assert!(e.contains_aggregate());
    }

    #[test]
    fn parses_bin_function() {
        let e = parse_expr("BIN(price, 10)").unwrap();
        assert!(matches!(e, Expr::Function { func: Func::Bin, ref args, .. } if args.len() == 2));
    }

    #[test]
    fn parses_keywords_case_insensitively() {
        let q = parse_select("select a from t where a > 1 group by a").unwrap();
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn parenthesized_or_inside_and() {
        let e = parse_expr("(a = 1 OR a = 2) AND b = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::And,
                left,
                ..
            } => {
                assert!(matches!(*left, Expr::Binary { op: BinOp::Or, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_in_list_parses() {
        let e = parse_expr("q IN ()").unwrap();
        assert!(matches!(e, Expr::InList { ref list, .. } if list.is_empty()));
    }
}
