//! Property tests: printer/parser round trips and normalizer laws over
//! randomly generated ASTs.

use proptest::prelude::*;
use simba_sql::normalize::{normalize_expr, NormalizedSelect};
use simba_sql::printer::{print_expr, print_select};
use simba_sql::{
    parse_expr, parse_select, BinOp, Expr, Func, Literal, OrderByExpr, Select, SelectItem,
};

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(Expr::int),
        (-100.0f64..100.0).prop_map(|v| Expr::float((v * 4.0).round() / 4.0)),
        "[a-z]{1,6}".prop_map(Expr::str),
        Just(Expr::Literal(Literal::Bool(true))),
        Just(Expr::Literal(Literal::Null)),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    "[a-z][a-z0-9_]{0,8}".prop_map(Expr::col)
}

/// Scalar (non-boolean) expressions.
fn scalar_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal_strategy(), column_strategy()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                proptest::sample::select(vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div,])
            )
                .prop_map(|(l, r, op)| Expr::binary(l, op, r)),
            (
                inner.clone(),
                proptest::sample::select(vec![
                    Func::Hour,
                    Func::Day,
                    Func::Month,
                    Func::Year,
                    Func::Abs,
                ])
            )
                .prop_map(|(e, f)| Expr::Function {
                    func: f,
                    args: vec![e],
                    distinct: false
                }),
            inner,
        ]
    })
}

/// Boolean predicates.
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (
            scalar_strategy(),
            scalar_strategy(),
            proptest::sample::select(vec![
                BinOp::Eq,
                BinOp::NotEq,
                BinOp::Lt,
                BinOp::LtEq,
                BinOp::Gt,
                BinOp::GtEq,
            ])
        )
            .prop_map(|(l, r, op)| Expr::binary(l, op, r)),
        (
            column_strategy(),
            proptest::collection::vec(literal_strategy(), 1..4),
            any::<bool>()
        )
            .prop_map(|(c, list, neg)| Expr::InList {
                expr: Box::new(c),
                list,
                negated: neg,
            }),
        (column_strategy(), any::<bool>()).prop_map(|(c, neg)| Expr::IsNull {
            expr: Box::new(c),
            negated: neg,
        }),
        (
            column_strategy(),
            scalar_strategy(),
            scalar_strategy(),
            any::<bool>()
        )
            .prop_map(|(c, lo, hi, neg)| Expr::Between {
                expr: Box::new(c),
                low: Box::new(lo),
                high: Box::new(hi),
                negated: neg,
            }),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.and(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.or(r)),
            inner.prop_map(|e| Expr::Unary {
                op: simba_sql::UnaryOp::Not,
                expr: Box::new(e)
            }),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec(
            prop_oneof![
                column_strategy().prop_map(SelectItem::bare),
                (
                    column_strategy(),
                    proptest::sample::select(vec![
                        Func::Count,
                        Func::Sum,
                        Func::Avg,
                        Func::Min,
                        Func::Max,
                    ])
                )
                    .prop_map(|(c, f)| SelectItem::bare(Expr::agg(f, c))),
                Just(SelectItem::bare(Expr::count_star())),
                (column_strategy(), "[a-z]{1,5}").prop_map(|(c, a)| SelectItem::aliased(c, a)),
            ],
            1..5,
        ),
        "[a-z][a-z0-9_]{0,10}",
        proptest::option::of(predicate_strategy()),
        proptest::collection::vec(column_strategy(), 0..3),
        proptest::option::of(0u64..1000),
        proptest::collection::vec(
            (column_strategy(), any::<bool>()).prop_map(|(e, asc)| OrderByExpr { expr: e, asc }),
            0..2,
        ),
    )
        .prop_map(
            |(projections, from, where_clause, group_by, limit, order_by)| Select {
                projections,
                from,
                where_clause,
                group_by,
                having: None,
                order_by,
                limit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// print → parse → print is a fixed point for expressions.
    #[test]
    fn expr_print_parse_roundtrip(e in predicate_strategy()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(print_expr(&reparsed), printed);
    }

    /// print → parse → print is a fixed point for SELECT statements.
    #[test]
    fn select_print_parse_roundtrip(q in select_strategy()) {
        let printed = print_select(&q);
        let reparsed = parse_select(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(print_select(&reparsed), printed);
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_is_idempotent(e in predicate_strategy()) {
        let once = normalize_expr(&e);
        let twice = normalize_expr(&once);
        prop_assert_eq!(&once, &twice, "normalize not idempotent for `{}`", e);
    }

    /// Normal forms are insensitive to textual noise: reparsing the printed
    /// query yields the same normalized select.
    #[test]
    fn normalized_select_stable_under_reprint(q in select_strategy()) {
        let n1 = NormalizedSelect::from_select(&q);
        let reparsed = parse_select(&print_select(&q)).expect("printable queries reparse");
        let n2 = NormalizedSelect::from_select(&reparsed);
        prop_assert_eq!(n1, n2);
    }

    /// Conjunct splitting and rejoining preserves the conjunct multiset.
    #[test]
    fn conjuncts_roundtrip(parts in proptest::collection::vec(predicate_strategy(), 1..5)) {
        let joined = Expr::conjoin(parts.clone()).expect("non-empty");
        // Each original part either appears directly, or was itself an AND
        // that flattened; count total flattened leaves instead.
        let expected: usize = parts.iter().map(|p| p.conjuncts().len()).sum();
        prop_assert_eq!(joined.conjuncts().len(), expected);
    }
}
