//! Property test: predicate implication is SOUND.
//!
//! `implies(p, q)` claims every row satisfying `p` satisfies `q`. We verify
//! against ground truth by evaluating both predicates over randomized rows
//! (through `simba-engine`'s evaluator semantics would be ideal, but to keep
//! the dependency direction clean we implement a tiny reference evaluator
//! here). Any counterexample is an implication-soundness bug.

use proptest::prelude::*;
use simba_sql::implication::implies;
use simba_sql::{BinOp, Expr, Literal};
use std::collections::HashMap;

const COLUMNS: &[&str] = &["a", "b", "c"];
const STRINGS: &[&str] = &["x", "y", "z", "w"];

/// A test row: column → optional value (None = NULL).
type Row = HashMap<&'static str, Option<RowValue>>;

#[derive(Debug, Clone, PartialEq)]
enum RowValue {
    Int(i64),
    Str(&'static str),
}

/// Three-valued reference evaluation of the predicate fragment the
/// implication engine reasons about.
fn eval(pred: &Expr, row: &Row) -> Option<bool> {
    match pred {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => match (eval(left, row), eval(right, row)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => match (eval(left, row), eval(right, row)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let lv = value_of(left, row)?;
            let rv = lit_value(right)?;
            match op {
                // Equality across type classes is plain "not equal";
                // ordered comparison across classes is UNKNOWN.
                BinOp::Eq => Some(lv == rv),
                BinOp::NotEq => Some(lv != rv),
                _ => compare(&lv, &rv).map(|ord| match op {
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::GtEq => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                }),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = value_of(expr, row)?;
            let found = list.iter().filter_map(lit_value).any(|lv| v == lv);
            Some(found != *negated)
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = value_of(expr, row)?;
            let lo = lit_value(low)?;
            let hi = lit_value(high)?;
            let inside = compare(&v, &lo)? != std::cmp::Ordering::Less
                && compare(&v, &hi)? != std::cmp::Ordering::Greater;
            Some(inside != *negated)
        }
        Expr::IsNull { expr, negated } => {
            let Expr::Column(name) = expr.as_ref() else {
                return None;
            };
            let is_null = row.get(name.as_str()).is_none_or(Option::is_none);
            Some(is_null != *negated)
        }
        Expr::Literal(Literal::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn value_of(e: &Expr, row: &Row) -> Option<RowValue> {
    match e {
        Expr::Column(name) => row.get(name.as_str()).cloned().flatten(),
        _ => None,
    }
}

fn lit_value(e: &Expr) -> Option<RowValue> {
    match e {
        Expr::Literal(Literal::Int(v)) => Some(RowValue::Int(*v)),
        Expr::Literal(Literal::Str(s)) => {
            STRINGS.iter().find(|x| *x == s).map(|s| RowValue::Str(s))
        }
        _ => None,
    }
}

fn compare(a: &RowValue, b: &RowValue) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (RowValue::Int(x), RowValue::Int(y)) => Some(x.cmp(y)),
        (RowValue::Str(x), RowValue::Str(y)) => Some(x.cmp(y)),
        _ => None,
    }
}

/// Random atomic predicate over a small value universe (so rows actually hit
/// the constants).
fn atom_strategy() -> impl Strategy<Value = Expr> {
    let col = proptest::sample::select(COLUMNS);
    prop_oneof![
        // numeric comparison
        (
            col.clone(),
            -5i64..5,
            proptest::sample::select(vec![
                BinOp::Eq,
                BinOp::NotEq,
                BinOp::Lt,
                BinOp::LtEq,
                BinOp::Gt,
                BinOp::GtEq,
            ])
        )
            .prop_map(|(c, v, op)| Expr::binary(Expr::col(c), op, Expr::int(v))),
        // string membership
        (
            col.clone(),
            proptest::sample::subsequence(STRINGS.to_vec(), 1..=3),
            any::<bool>()
        )
            .prop_map(|(c, vs, neg)| Expr::InList {
                expr: Box::new(Expr::col(c)),
                list: vs.into_iter().map(Expr::str).collect(),
                negated: neg,
            }),
        // between
        (col.clone(), -5i64..3, 0i64..4).prop_map(|(c, lo, w)| Expr::Between {
            expr: Box::new(Expr::col(c)),
            low: Box::new(Expr::int(lo)),
            high: Box::new(Expr::int(lo + w)),
            negated: false,
        }),
        // null checks
        (col, any::<bool>()).prop_map(|(c, neg)| Expr::IsNull {
            expr: Box::new(Expr::col(c)),
            negated: neg,
        }),
    ]
}

fn predicate_strategy() -> impl Strategy<Value = Expr> {
    proptest::collection::vec(atom_strategy(), 1..4)
        .prop_map(|atoms| Expr::conjoin(atoms).expect("non-empty"))
}

fn row_value_strategy() -> impl Strategy<Value = Option<RowValue>> {
    prop_oneof![
        3 => (-6i64..6).prop_map(|v| Some(RowValue::Int(v))),
        2 => proptest::sample::select(STRINGS).prop_map(|s| Some(RowValue::Str(s))),
        1 => Just(None),
    ]
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        row_value_strategy(),
        row_value_strategy(),
        row_value_strategy(),
    )
        .prop_map(|(a, b, c)| {
            let mut row = HashMap::new();
            row.insert("a", a);
            row.insert("b", b);
            row.insert("c", c);
            row
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Soundness: implies(p, q) ⇒ (∀ rows: p true ⇒ q true).
    #[test]
    fn implication_is_sound(
        p in predicate_strategy(),
        q in predicate_strategy(),
        rows in proptest::collection::vec(row_strategy(), 30),
    ) {
        if implies(&p, &q) {
            for row in &rows {
                if eval(&p, row) == Some(true) {
                    prop_assert_eq!(
                        eval(&q, row), Some(true),
                        "implication unsound: p=`{}` q=`{}` row={:?}", p, q, row
                    );
                }
            }
        }
    }

    /// Reflexivity on the compilable fragment: every conjunctive predicate
    /// implies itself.
    #[test]
    fn implication_is_reflexive(p in predicate_strategy()) {
        prop_assert!(implies(&p, &p), "`{}` must imply itself", p);
    }

    /// Transitivity where provable: p⇒q and q⇒r gives p⇒r soundly (we check
    /// semantically, not that the prover also proves p⇒r, which
    /// incompleteness permits it to miss).
    #[test]
    fn implication_chain_is_sound(
        p in predicate_strategy(),
        q in predicate_strategy(),
        r in predicate_strategy(),
        rows in proptest::collection::vec(row_strategy(), 20),
    ) {
        if implies(&p, &q) && implies(&q, &r) {
            for row in &rows {
                if eval(&p, row) == Some(true) {
                    prop_assert_eq!(eval(&r, row), Some(true));
                }
            }
        }
    }

    /// Normalization preserves three-valued WHERE semantics ("keeps the row"
    /// is identical before and after).
    #[test]
    fn normalization_preserves_filter_semantics(
        p in predicate_strategy(),
        rows in proptest::collection::vec(row_strategy(), 30),
    ) {
        let normalized = simba_sql::normalize::normalize_expr(&p);
        for row in &rows {
            let before = eval(&p, row) == Some(true);
            let after = eval(&normalized, row) == Some(true);
            prop_assert_eq!(
                before, after,
                "normalization changed semantics: `{}` -> `{}` on {:?}", p, normalized, row
            );
        }
    }
}
