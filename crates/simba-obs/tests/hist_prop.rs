//! Property test pinning the histogram's advertised accuracy: any quantile
//! estimate is within 1/16 relative error of an exact sorted oracle.

use proptest::prelude::*;
use simba_obs::LatencyHistogram;

/// Mix magnitudes: exact linear range, µs-scale, ms-scale, and huge values
/// near the top octaves, so every bucket regime is exercised.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        16u64..100_000,
        100_000u64..10_000_000_000,
        (u64::MAX / 2)..u64::MAX,
    ]
}

proptest! {
    #[test]
    fn quantiles_match_sorted_oracle_within_bucket_error(
        values in proptest::collection::vec(value_strategy(), 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // Same rank definition as LatencyHistogram::quantile_ns.
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        let est = h.quantile_ns(q);
        // Bucket midpoints are within half a bucket (1/32); clamping to the
        // observed min/max can move the estimate at most one full bucket
        // width (1/16). The +1 covers integer rounding at tiny values.
        let tolerance = exact / 16 + 1;
        prop_assert!(
            est.abs_diff(exact) <= tolerance,
            "q={q} n={} exact={exact} est={est} tolerance={tolerance}",
            sorted.len()
        );
    }

    #[test]
    fn count_mean_and_extremes_are_exact(
        values in proptest::collection::vec(value_strategy(), 1..300),
    ) {
        let mut h = LatencyHistogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record_ns(v);
            sum += u128::from(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min_ns(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max_ns(), *values.iter().max().unwrap());
        let mean = sum as f64 / values.len() as f64;
        prop_assert!((h.mean_ns() - mean).abs() <= mean * 1e-9 + 1e-9);
    }
}
