//! Span collection against the process-global collector. These tests live
//! in their own integration binary — and serialize on a local mutex — so
//! draining the collector cannot race with unrelated unit tests.

#![cfg(not(feature = "obs-off"))]

use simba_obs::trace;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Enable tracing, run `f`, disable, and return everything it recorded.
fn traced(sample_every: u64, f: impl FnOnce()) -> Vec<trace::TraceEvent> {
    trace::set_sample_every(sample_every);
    trace::set_enabled(true);
    let _ = trace::take_events(); // drop leftovers from earlier activity
    f();
    trace::set_enabled(false);
    trace::set_sample_every(1);
    trace::take_events()
}

#[test]
fn spans_nest_within_their_parents() {
    let _g = lock();
    let events = traced(1, || {
        let _root = trace::span("test.session", "driver");
        {
            let _step = trace::span("test.step", "driver");
            let _exec = trace::span("test.execute", "engine");
            std::hint::black_box(0u64);
        }
    });
    assert_eq!(events.len(), 3, "{events:?}");
    let root = events.iter().find(|e| e.name == "test.session").unwrap();
    let step = events.iter().find(|e| e.name == "test.step").unwrap();
    let exec = events.iter().find(|e| e.name == "test.execute").unwrap();
    assert_eq!((root.depth, step.depth, exec.depth), (0, 1, 2));
    assert_eq!(root.tid, step.tid);
    assert_eq!(root.tid, exec.tid);
    // Interval containment: each child starts and ends inside its parent.
    for (parent, child) in [(root, step), (step, exec)] {
        assert!(child.start_ns >= parent.start_ns, "{parent:?} {child:?}");
        assert!(
            child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns,
            "{parent:?} {child:?}"
        );
    }
    // take_events sorts parents before the spans they contain.
    let sorted = trace::take_events();
    assert!(sorted.is_empty(), "take_events drains");
}

#[test]
fn sampling_keeps_whole_root_trees() {
    let _g = lock();
    let events = traced(2, || {
        for _ in 0..6 {
            let _root = trace::span("test.sampled_root", "driver");
            let _child = trace::span("test.sampled_child", "engine");
        }
    });
    let roots = events
        .iter()
        .filter(|e| e.name == "test.sampled_root")
        .count();
    let children = events
        .iter()
        .filter(|e| e.name == "test.sampled_child")
        .count();
    assert_eq!(roots, 3, "1/2 sampling of 6 consecutive roots: {events:?}");
    assert_eq!(children, roots, "children follow their root's decision");
}

#[test]
fn sample_zero_and_disabled_record_nothing() {
    let _g = lock();
    let none = traced(0, || {
        let _root = trace::span("test.zero", "driver");
    });
    assert!(none.is_empty(), "sample 0 disables recording: {none:?}");

    trace::set_enabled(false);
    {
        let _root = trace::span("test.disabled", "driver");
    }
    assert!(trace::take_events().is_empty());
}

#[test]
fn chrome_export_is_valid_json_with_complete_events() {
    let _g = lock();
    let events = traced(1, || {
        let _root = trace::span("test.export_root", "driver");
        let _child = trace::span("test.export_child", "cache");
    });
    let json = trace::export_chrome_trace(&events);
    let parsed: serde::Content = serde_json::from_str(&json).expect("trace parses as JSON");
    let list = match parsed.get("traceEvents") {
        Some(serde::Content::Seq(items)) => items,
        other => panic!("traceEvents array missing: {other:?}"),
    };
    assert_eq!(list.len(), events.len());
    for item in list {
        assert_eq!(
            item.get("ph"),
            Some(&serde::Content::Str("X".into())),
            "complete events only"
        );
        assert!(item.get("name").is_some() && item.get("cat").is_some());
        assert!(item.get("ts").is_some() && item.get("dur").is_some());
    }
}
