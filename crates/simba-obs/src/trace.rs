//! Span tracing with Chrome `trace_event` export.
//!
//! A span is an RAII guard: [`span`] stamps a monotonic start time, the
//! guard's `Drop` stamps the duration and pushes one complete event into a
//! lock-striped global collector. Threads keep a nesting depth in a
//! thread-local, so whether a span is a *root* (depth 0) is known without
//! any global coordination; the sampling decision (`1/N` roots) is made
//! once per root and inherited by everything nested under it, keeping
//! traces self-consistent — a sampled session carries all of its cache
//! lookups and engine phases, an unsampled one carries none.
//!
//! Costs when tracing is disabled: one relaxed atomic load per [`span`]
//! call, no clock reads. When a root is not sampled: two thread-local cell
//! updates per span. With the `obs-off` cargo feature the entire module
//! compiles to no-ops.
//!
//! [`export_chrome_trace`] renders drained events in the Chrome
//! `trace_event` JSON format (`ph: "X"` complete events, microsecond
//! timestamps), which opens directly in `about:tracing` or Perfetto.

use std::fmt::Write as _;

#[cfg(not(feature = "obs-off"))]
use std::cell::Cell;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Mutex, OnceLock};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

/// Collector stripes; events land in `stripes[tid % STRIPES]` so worker
/// threads rarely contend on the same lock.
#[cfg(not(feature = "obs-off"))]
const STRIPES: usize = 16;

/// One completed span, in nanoseconds since the process trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, e.g. `"engine.scan"`.
    pub name: &'static str,
    /// Layer category: `"driver"`, `"cache"`, `"engine"`, or `"data"`.
    pub cat: &'static str,
    /// Start, nanoseconds since the trace epoch (first clock use).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace-local thread id (small integers assigned on first span).
    pub tid: u64,
    /// Nesting depth at emission: 0 for roots (e.g. `driver.session`).
    pub depth: u32,
}

#[cfg(not(feature = "obs-off"))]
static ENABLED: AtomicBool = AtomicBool::new(false);
#[cfg(not(feature = "obs-off"))]
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(1);
#[cfg(not(feature = "obs-off"))]
static ROOT_SEQ: AtomicU64 = AtomicU64::new(0);
#[cfg(not(feature = "obs-off"))]
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static SAMPLED: Cell<bool> = const { Cell::new(false) };
}

#[cfg(not(feature = "obs-off"))]
fn stripes() -> &'static [Mutex<Vec<TraceEvent>>; STRIPES] {
    static S: OnceLock<[Mutex<Vec<TraceEvent>>; STRIPES]> = OnceLock::new();
    S.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

#[cfg(not(feature = "obs-off"))]
fn epoch() -> &'static Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    E.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
#[cfg(not(feature = "obs-off"))]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Nanoseconds since the process trace epoch (always 0 with `obs-off`).
#[cfg(feature = "obs-off")]
pub fn now_ns() -> u64 {
    0
}

/// Trace-local id of the calling thread (assigned on first use).
#[cfg(not(feature = "obs-off"))]
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Trace-local id of the calling thread (always 0 with `obs-off`).
#[cfg(feature = "obs-off")]
pub fn thread_id() -> u64 {
    0
}

/// Turn the collector on or off. Enable before the traced run starts:
/// spans opened while disabled stay inert even if tracing is enabled
/// before they close.
#[cfg(not(feature = "obs-off"))]
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// No-op with `obs-off`.
#[cfg(feature = "obs-off")]
pub fn set_enabled(_on: bool) {}

/// Whether the collector is currently enabled.
#[cfg(not(feature = "obs-off"))]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Always false with `obs-off`.
#[cfg(feature = "obs-off")]
pub fn is_enabled() -> bool {
    false
}

/// Record every `n`-th root span (and everything nested under it).
/// `1` records everything, `0` records nothing.
#[cfg(not(feature = "obs-off"))]
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// No-op with `obs-off`.
#[cfg(feature = "obs-off")]
pub fn set_sample_every(_n: u64) {}

/// Parse a sampling spec: `"8"` or `"1/8"` → 8; `"0"` disables.
pub fn parse_sample(s: &str) -> Option<u64> {
    let s = s.trim();
    match s.strip_prefix("1/") {
        Some(rest) => rest.trim().parse().ok(),
        None => s.parse().ok(),
    }
}

/// RAII span: created by [`span`], records a [`TraceEvent`] on drop.
#[cfg(not(feature = "obs-off"))]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    prev_depth: u32,
    armed: bool,
    entered: bool,
}

/// Inert span guard (`obs-off` build).
#[cfg(feature = "obs-off")]
pub struct SpanGuard {
    _inert: (),
}

/// Open a span named `name` in layer category `cat`. The returned guard
/// records one event when dropped; bind it (`let _span = ...`) so it stays
/// open for the region being measured.
#[cfg(not(feature = "obs-off"))]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            name,
            cat,
            start_ns: 0,
            prev_depth: 0,
            armed: false,
            entered: false,
        };
    }
    let prev_depth = DEPTH.with(Cell::get);
    let armed = if prev_depth == 0 {
        let every = SAMPLE_EVERY.load(Ordering::Relaxed);
        let sampled = every != 0
            && ROOT_SEQ
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(every);
        SAMPLED.with(|s| s.set(sampled));
        sampled
    } else {
        SAMPLED.with(Cell::get)
    };
    DEPTH.with(|d| d.set(prev_depth + 1));
    SpanGuard {
        name,
        cat,
        start_ns: if armed { now_ns() } else { 0 },
        prev_depth,
        armed,
        entered: true,
    }
}

/// Open a span (inert with `obs-off`).
#[cfg(feature = "obs-off")]
pub fn span(_name: &'static str, _cat: &'static str) -> SpanGuard {
    SpanGuard { _inert: () }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.entered {
            return;
        }
        DEPTH.with(|d| d.set(self.prev_depth));
        if self.prev_depth == 0 {
            SAMPLED.with(|s| s.set(false));
        }
        if self.armed {
            let dur_ns = now_ns().saturating_sub(self.start_ns);
            let tid = thread_id();
            let event = TraceEvent {
                name: self.name,
                cat: self.cat,
                start_ns: self.start_ns,
                dur_ns,
                tid,
                depth: self.prev_depth,
            };
            if let Ok(mut buf) = stripes()[(tid as usize) % STRIPES].lock() {
                buf.push(event);
            }
        }
    }
}

/// Drain all collected events, sorted by start time (parents before the
/// spans they contain).
#[cfg(not(feature = "obs-off"))]
pub fn take_events() -> Vec<TraceEvent> {
    let mut all = Vec::new();
    for stripe in stripes() {
        if let Ok(mut buf) = stripe.lock() {
            all.append(&mut buf);
        }
    }
    all.sort_by(|a, b| {
        (a.start_ns, std::cmp::Reverse(a.dur_ns), a.name).cmp(&(
            b.start_ns,
            std::cmp::Reverse(b.dur_ns),
            b.name,
        ))
    });
    all
}

/// Always empty with `obs-off`.
#[cfg(feature = "obs-off")]
pub fn take_events() -> Vec<TraceEvent> {
    Vec::new()
}

/// Render events as Chrome `trace_event` JSON: a `traceEvents` array of
/// `ph: "X"` complete events with microsecond `ts`/`dur`. Open the file in
/// `about:tracing` or <https://ui.perfetto.dev>.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 110 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_into(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03}}}",
            e.tid,
            e.start_ns / 1_000,
            e.start_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
        );
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (span names are controlled identifiers,
/// but the exporter must never emit invalid JSON).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sample_accepts_plain_and_one_over_n() {
        assert_eq!(parse_sample("8"), Some(8));
        assert_eq!(parse_sample("1/8"), Some(8));
        assert_eq!(parse_sample(" 1/ 16 "), Some(16));
        assert_eq!(parse_sample("0"), Some(0));
        assert_eq!(parse_sample("x"), None);
        assert_eq!(parse_sample("2/8"), None);
    }

    #[test]
    fn export_escapes_and_formats_microseconds() {
        let events = [TraceEvent {
            name: "a\"b",
            cat: "driver",
            start_ns: 1_234_567,
            dur_ns: 890,
            tid: 3,
            depth: 0,
        }];
        let json = export_chrome_trace(&events);
        assert!(json.contains("\"name\":\"a\\\"b\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":0.890"), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn export_of_no_events_is_valid_scaffolding() {
        let json = export_chrome_trace(&[]);
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    // Span collection itself is exercised in `tests/trace_spans.rs`, a
    // separate integration binary, so draining the global collector cannot
    // race with other unit tests in this binary.
}
