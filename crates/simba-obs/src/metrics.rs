//! A process-global registry of named counters, gauges, and histograms.
//!
//! Naming convention: `layer.thing` for counters and gauges
//! (`engine.rows_scanned`, `cache.hits`) and `layer.phase.step` for
//! duration histograms (`engine.phase.scan`, `driver.phase.queue_delay`).
//! Call sites cache their handle in a `OnceLock` (the [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge), and [`phase!`](crate::phase) macros do this), so the steady-state cost of
//! a probe is one relaxed atomic load when metrics are disabled and one
//! `fetch_add` (counters) or striped-mutex push (histograms) when enabled.
//!
//! Collection is scoped, not toggled: a [`MetricsScope`] guard enables
//! recording while alive (reference-counted, so nested scopes compose),
//! and a run takes a [`capture`] at its start and a [`snapshot_since`] at
//! its end to scope the cumulative global registry to itself. Deltas are
//! process-global — two instrumented runs recording *concurrently* fold
//! into each other's snapshots; the `bench` CLI runs specs sequentially so
//! its snapshots are exact.

use crate::hist::LatencyHistogram;
use crate::trace::SpanGuard;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Histogram stripes: worker threads record into `stripes[tid % 8]` to
/// avoid serializing on one mutex.
const HIST_STRIPES: usize = 8;

static ACTIVE: AtomicU64 = AtomicU64::new(0);

/// Whether any [`MetricsScope`] is alive. Probes check this first, so
/// recording is a no-op outside instrumented runs.
#[cfg(not(feature = "obs-off"))]
#[inline]
pub fn is_enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0
}

/// Always false with `obs-off`: every probe below compiles to nothing.
#[cfg(feature = "obs-off")]
#[inline]
pub fn is_enabled() -> bool {
    false
}

/// RAII guard that enables metric recording while alive. Scopes are
/// reference-counted: recording stays on until the last scope drops.
pub struct MetricsScope {
    _private: (),
}

impl MetricsScope {
    /// Enable metric recording until the returned guard is dropped.
    pub fn enter() -> MetricsScope {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        MetricsScope { _private: () }
    }
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    hists: Mutex<Vec<(String, Histogram)>>,
}

fn registry() -> &'static Registry {
    static R: OnceLock<Registry> = OnceLock::new();
    R.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
    })
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current cumulative value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the current value (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if is_enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A duration histogram handle backed by lock-striped [`LatencyHistogram`]s.
#[derive(Clone)]
pub struct Histogram {
    stripes: Arc<Vec<Mutex<LatencyHistogram>>>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            stripes: Arc::new(
                (0..HIST_STRIPES)
                    .map(|_| Mutex::new(LatencyHistogram::new()))
                    .collect(),
            ),
        }
    }

    /// Record one duration (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, d: Duration) {
        if is_enabled() {
            self.force_record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// Record one value in nanoseconds (no-op while metrics are disabled).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if is_enabled() {
            self.force_record_ns(ns);
        }
    }

    fn force_record_ns(&self, ns: u64) {
        let i = crate::trace::thread_id() as usize % HIST_STRIPES;
        if let Ok(mut h) = self.stripes[i].lock() {
            h.record_ns(ns);
        }
    }

    /// Fold all stripes into one histogram.
    pub fn merged(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for s in self.stripes.iter() {
            if let Ok(h) = s.lock() {
                out.merge(&h);
            }
        }
        out
    }
}

/// Register-or-get the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut v = registry()
        .counters
        .lock()
        .expect("metrics registry poisoned");
    if let Some((_, cell)) = v.iter().find(|(n, _)| n == name) {
        return Counter { cell: cell.clone() };
    }
    let cell = Arc::new(AtomicU64::new(0));
    v.push((name.to_string(), cell.clone()));
    Counter { cell }
}

/// Register-or-get the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut v = registry().gauges.lock().expect("metrics registry poisoned");
    if let Some((_, cell)) = v.iter().find(|(n, _)| n == name) {
        return Gauge { cell: cell.clone() };
    }
    let cell = Arc::new(AtomicU64::new(0));
    v.push((name.to_string(), cell.clone()));
    Gauge { cell }
}

/// Register-or-get the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut v = registry().hists.lock().expect("metrics registry poisoned");
    if let Some((_, h)) = v.iter().find(|(n, _)| n == name) {
        return h.clone();
    }
    let h = Histogram::new();
    v.push((name.to_string(), h.clone()));
    h
}

/// A point-in-time baseline of every registered metric, taken at run start
/// so [`snapshot_since`] can report only what the run itself recorded.
pub struct RegistryCapture {
    counters: Vec<(String, u64)>,
    hists: Vec<(String, LatencyHistogram)>,
}

impl RegistryCapture {
    /// A baseline with nothing in it: `snapshot_since(&empty)` reports the
    /// registry's full cumulative state.
    pub fn empty() -> RegistryCapture {
        RegistryCapture {
            counters: Vec::new(),
            hists: Vec::new(),
        }
    }
}

/// Capture the current value of every registered metric.
pub fn capture() -> RegistryCapture {
    let r = registry();
    let counters = r
        .counters
        .lock()
        .map(|v| {
            v.iter()
                .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
                .collect()
        })
        .unwrap_or_default();
    let hists = r
        .hists
        .lock()
        .map(|v| v.iter().map(|(n, h)| (n.clone(), h.merged())).collect())
        .unwrap_or_default();
    RegistryCapture { counters, hists }
}

/// Snapshot everything recorded since `before` was captured: counters and
/// histograms report the delta, gauges report their current value. Metrics
/// that did not move are omitted; entries are sorted by name.
pub fn snapshot_since(before: &RegistryCapture) -> MetricsSnapshot {
    let r = registry();
    let mut counters: Vec<CounterEntry> = Vec::new();
    if let Ok(v) = r.counters.lock() {
        for (name, cell) in v.iter() {
            let prior = before
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v);
            let delta = cell.load(Ordering::Relaxed).saturating_sub(prior);
            if delta > 0 {
                counters.push(CounterEntry {
                    name: name.clone(),
                    value: delta,
                });
            }
        }
    }
    let mut gauges: Vec<GaugeEntry> = Vec::new();
    if let Ok(v) = r.gauges.lock() {
        for (name, cell) in v.iter() {
            let value = cell.load(Ordering::Relaxed);
            if value > 0 {
                gauges.push(GaugeEntry {
                    name: name.clone(),
                    value,
                });
            }
        }
    }
    let mut histograms: Vec<HistogramEntry> = Vec::new();
    if let Ok(v) = r.hists.lock() {
        for (name, h) in v.iter() {
            let merged = h.merged();
            let scoped = match before.hists.iter().find(|(n, _)| n == name) {
                Some((_, prior)) => merged.delta(prior),
                None => merged,
            };
            if !scoped.is_empty() {
                histograms.push(HistogramEntry::from_histogram(name.clone(), &scoped));
            }
        }
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    gauges.sort_by(|a, b| a.name.cmp(&b.name));
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// The registry's full cumulative state.
pub fn snapshot() -> MetricsSnapshot {
    snapshot_since(&RegistryCapture::empty())
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name, e.g. `engine.rows_scanned`.
    pub name: String,
    /// Value accumulated within the snapshot window.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name, e.g. `cache.entries`.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One duration histogram in a [`MetricsSnapshot`], summarized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Metric name, e.g. `engine.phase.scan`.
    pub name: String,
    /// Number of recordings in the window.
    pub count: u64,
    /// Total time across all recordings, in milliseconds.
    pub total_ms: f64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Median in microseconds (≤ 1/16 relative bucket error).
    pub p50_us: u64,
    /// 95th percentile in microseconds.
    pub p95_us: u64,
    /// 99th percentile in microseconds.
    pub p99_us: u64,
    /// Largest recording in microseconds.
    pub max_us: u64,
}

impl HistogramEntry {
    /// Summarize `h` under `name`.
    pub fn from_histogram(name: String, h: &LatencyHistogram) -> HistogramEntry {
        HistogramEntry {
            name,
            count: h.count(),
            total_ms: h.sum_ns() as f64 / 1e6,
            mean_us: h.mean_ns() / 1e3,
            p50_us: h.quantile_ns(0.5) / 1_000,
            p95_us: h.quantile_ns(0.95) / 1_000,
            p99_us: h.quantile_ns(0.99) / 1_000,
            max_us: h.max_ns() / 1_000,
        }
    }
}

/// A serializable point-in-time view of the registry, carried in
/// `RunReport.metrics` (schema v3). Entry lists are sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters that moved within the window.
    pub counters: Vec<CounterEntry>,
    /// Gauges with a non-zero value.
    pub gauges: Vec<GaugeEntry>,
    /// Histograms with at least one recording in the window.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// True when nothing moved in the window.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// Guard pairing a trace span with a phase-duration histogram recording;
/// built by the [`phase!`](crate::phase) macro.
pub struct PhaseGuard {
    _span: SpanGuard,
    metric: Option<(Histogram, Instant)>,
}

impl PhaseGuard {
    /// Wrap `span`; `hist` is only resolved when metrics are enabled.
    pub fn new(span: SpanGuard, hist: impl FnOnce() -> Histogram) -> PhaseGuard {
        let metric = if is_enabled() {
            Some((hist(), Instant::now()))
        } else {
            None
        };
        PhaseGuard {
            _span: span,
            metric,
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((h, t0)) = self.metric.take() {
            h.record(t0.elapsed());
        }
    }
}

/// Open a phase: a trace span plus a duration-histogram recording, both
/// closed when the returned guard drops.
///
/// ```
/// let _p = simba_obs::phase!("engine.scan", "engine", "engine.phase.scan");
/// ```
#[macro_export]
macro_rules! phase {
    ($span:expr, $cat:expr, $metric:expr) => {{
        static __PHASE_HIST: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::metrics::PhaseGuard::new($crate::trace::span($span, $cat), || {
            __PHASE_HIST
                .get_or_init(|| $crate::metrics::histogram($metric))
                .clone()
        })
    }};
}

/// A `&'static Counter` for `$name`, registered once per call site.
///
/// ```
/// simba_obs::counter!("engine.rows_scanned").add(128);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __COUNTER: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        __COUNTER.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// A `&'static Histogram` for `$name`, registered once per call site —
/// for recording durations that are already known (e.g. a computed queue
/// delay) without opening a [`phase!`](crate::phase) guard.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __HIST: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        __HIST.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// A `&'static Gauge` for `$name`, registered once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __GAUGE: ::std::sync::OnceLock<$crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        __GAUGE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    // The enable refcount is process-global; tests that depend on the
    // enabled/disabled state serialize on this lock so parallel test
    // threads cannot observe each other's scopes.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn handles_are_shared_by_name() {
        let _g = lock();
        let _scope = MetricsScope::enter();
        let a = counter("test.shared");
        let b = counter("test.shared");
        a.add(3);
        b.add(4);
        assert_eq!(a.value(), 7);
        assert_eq!(b.value(), 7);
    }

    #[test]
    fn recording_is_gated_on_scopes() {
        let _g = lock();
        let c = counter("test.gated");
        let h = histogram("test.gated_hist");
        c.add(5);
        h.record_ns(1_000);
        assert_eq!(c.value(), 0, "no scope alive: counter add is a no-op");
        assert!(h.merged().is_empty(), "no scope alive: record is a no-op");
        {
            let _outer = MetricsScope::enter();
            let _inner = MetricsScope::enter();
            c.add(5);
            drop(_inner);
            c.add(2); // outer scope still holds recording open
            h.record_ns(1_000);
        }
        c.add(9);
        assert_eq!(c.value(), 7);
        assert_eq!(h.merged().count(), 1);
    }

    #[test]
    fn snapshot_since_scopes_to_the_window() {
        let _g = lock();
        let _scope = MetricsScope::enter();
        let c = counter("test.windowed");
        let h = histogram("test.windowed_hist");
        let ga = gauge("test.windowed_gauge");
        c.add(10);
        h.record_ns(50_000);
        let before = capture();
        c.add(7);
        h.record_ns(2_000_000);
        ga.set(42);
        let snap = snapshot_since(&before);
        let counter_entry = snap
            .counters
            .iter()
            .find(|e| e.name == "test.windowed")
            .expect("windowed counter present");
        assert_eq!(counter_entry.value, 7, "only the delta is reported");
        let hist_entry = snap
            .histograms
            .iter()
            .find(|e| e.name == "test.windowed_hist")
            .expect("windowed histogram present");
        assert_eq!(hist_entry.count, 1);
        assert!(hist_entry.p50_us >= 1_800 && hist_entry.p50_us <= 2_100);
        assert_eq!(
            snap.gauges
                .iter()
                .find(|e| e.name == "test.windowed_gauge")
                .map(|e| e.value),
            Some(42)
        );
        // Names are sorted for stable serialized output.
        let names: Vec<&str> = snap.counters.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn phase_macro_records_span_and_histogram() {
        let _g = lock();
        let _scope = MetricsScope::enter();
        let before = capture();
        {
            let _p = crate::phase!("test.phase_span", "test", "test.phase.step");
            std::hint::black_box(0u64);
        }
        let snap = snapshot_since(&before);
        assert!(
            snap.histograms
                .iter()
                .any(|e| e.name == "test.phase.step" && e.count == 1),
            "phase! recorded into the histogram: {:?}",
            snap.histograms
        );
    }

    #[test]
    fn snapshot_serializes_round_trip() {
        let snap = MetricsSnapshot {
            counters: vec![CounterEntry {
                name: "cache.hits".into(),
                value: 12,
            }],
            gauges: vec![GaugeEntry {
                name: "cache.entries".into(),
                value: 3,
            }],
            histograms: vec![HistogramEntry {
                name: "engine.phase.scan".into(),
                count: 4,
                total_ms: 1.5,
                mean_us: 375.0,
                p50_us: 300,
                p95_us: 700,
                p99_us: 700,
                max_us: 812,
            }],
        };
        let content = snap.to_content();
        let back = MetricsSnapshot::from_content(&content).expect("round trip");
        assert_eq!(snap, back);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![]
        }
        .is_empty());
    }
}
