//! Zero-dependency observability substrate for the simba workspace.
//!
//! The benchmark is only as trustworthy as its measurement: a query latency
//! that cannot be attributed to plan/prune/scan/aggregate phases, cache
//! coalescing, or scheduler queueing is one opaque number. This crate
//! provides the two primitives every layer records into:
//!
//! - [`trace`] — a span/event tracing core: thread-local span stacks,
//!   monotonic-clock timestamps, a lock-striped global collector, and
//!   Chrome `trace_event`-format JSON export so any run opens directly in
//!   `about:tracing` or [Perfetto](https://ui.perfetto.dev).
//! - [`metrics`] — a registry of named counters, gauges, and histograms
//!   (backed by [`LatencyHistogram`]) with cheap atomic recording and a
//!   serializable point-in-time [`MetricsSnapshot`].
//!
//! Both are **off by default** and cost two relaxed atomic loads per probe
//! when disabled; roots can additionally be sampled (`1/N`) so tracing at
//! 100k sessions stays cheap. Building with the `obs-off` cargo feature
//! compiles every probe down to nothing, for proving zero overhead.
//!
//! Everything is hand-rolled like the workspace's vendored dependencies:
//! no external crates, no network.

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::LatencyHistogram;
pub use metrics::{
    CounterEntry, GaugeEntry, HistogramEntry, MetricsScope, MetricsSnapshot, RegistryCapture,
};
pub use trace::{SpanGuard, TraceEvent};
