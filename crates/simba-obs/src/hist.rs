//! Log-bucketed latency histograms.
//!
//! Query latencies under load span six orders of magnitude (sub-µs cache
//! hits to multi-ms scans), so fixed-width buckets either blur the head or
//! truncate the tail. Buckets here grow geometrically: values below
//! `LINEAR_BUCKETS` ns are exact, and every power-of-two octave above
//! that is split into `SUB_BUCKETS` sub-buckets, bounding relative
//! quantile error at 1/16 (~6%) while keeping the histogram a flat 976-slot
//! array that is cheap to record into and to merge across worker threads.

use std::time::Duration;

/// Values below this many nanoseconds get exact single-value buckets.
const LINEAR_BUCKETS: u64 = 16;
/// Sub-buckets per power-of-two octave.
const SUB_BUCKETS: u64 = 16;
/// Octaves: exponents 4..=63.
const BUCKETS: usize = (LINEAR_BUCKETS + 60 * SUB_BUCKETS) as usize;

/// A mergeable histogram of durations with geometric buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one duration; values beyond `u64::MAX` ns (~584 years)
    /// saturate into the top bucket rather than wrapping.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one value in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram in (used to combine per-worker histograms).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The recordings in `self` that are not in `earlier` — bucket-wise
    /// subtraction, used to scope a global cumulative histogram to one run
    /// (capture at start, delta at end). `earlier` must be a prefix of
    /// `self`'s history; buckets saturate at zero otherwise.
    ///
    /// The delta's min/max are recovered from its extremal non-empty
    /// buckets (floor of the lowest, ceiling of the highest clamped to
    /// `self.max_ns`), so they carry the same ≤ 1/16 relative error as
    /// quantiles rather than being exact.
    pub fn delta(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        let mut lowest = None;
        let mut highest = None;
        for (i, (a, b)) in self.counts.iter().zip(&earlier.counts).enumerate() {
            let c = a.saturating_sub(*b);
            out.counts[i] = c;
            if c > 0 {
                lowest.get_or_insert(i);
                highest = Some(i);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum_ns = self.sum_ns.saturating_sub(earlier.sum_ns);
        if let (Some(lo), Some(hi)) = (lowest, highest) {
            out.min_ns = bucket_floor(lo).max(self.min_ns.min(bucket_ceiling(lo)));
            out.max_ns = bucket_ceiling(hi).min(self.max_ns);
        }
        out
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64
    }

    /// Sum of all recorded values in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds: the midpoint of the
    /// first bucket whose cumulative count reaches `q * count`, clamped to
    /// the observed min/max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_floor(i);
                let hi = bucket_ceiling(i);
                return (lo + (hi - lo) / 2).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns < LINEAR_BUCKETS {
        ns as usize
    } else {
        let e = 63 - ns.leading_zeros() as u64; // >= 4
        let sub = (ns >> (e - 4)) & (SUB_BUCKETS - 1);
        (LINEAR_BUCKETS + (e - 4) * SUB_BUCKETS + sub) as usize
    }
}

/// Smallest value mapping to bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_BUCKETS {
        idx
    } else {
        let e = (idx - LINEAR_BUCKETS) / SUB_BUCKETS + 4;
        let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
        (1 << e) + (sub << (e - 4))
    }
}

/// Largest value mapping to bucket `idx`.
fn bucket_ceiling(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_BUCKETS {
        idx
    } else {
        let e = (idx - LINEAR_BUCKETS) / SUB_BUCKETS + 4;
        let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
        // u128: the top bucket's exclusive upper bound is 2^64.
        let next = (1u128 << e) + (u128::from(sub + 1) << (e - 4));
        (next - 1).min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // floor/ceiling invert bucket_index at every boundary.
        for idx in 0..BUCKETS {
            let lo = bucket_floor(idx);
            let hi = bucket_ceiling(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx, "floor of {idx}");
            assert_eq!(bucket_index(hi), idx, "ceiling of {idx}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..16 {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 15);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record_ns(i * 1_000); // 1µs .. 10ms uniform
        }
        let p50 = h.quantile_ns(0.5) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((p50 / 5_000_000.0 - 1.0).abs() < 0.10, "p50 {p50}");
        assert!((p99 / 9_900_000.0 - 1.0).abs() < 0.10, "p99 {p99}");
        assert!(h.quantile_ns(1.0) <= h.max_ns());
        assert!(h.quantile_ns(0.0) >= h.min_ns());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let ns = i * 977 % 100_000;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            whole.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert_eq!(a.min_ns(), whole.min_ns());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile_ns(q), whole.quantile_ns(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.quantile_ns(0.0), 0);
        assert_eq!(h.quantile_ns(1.0), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn u64_max_saturates_into_top_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), u64::MAX);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.quantile_ns(0.5), u64::MAX, "clamped to observed max");
        // Duration wider than u64 nanoseconds saturates instead of wrapping.
        h.record(Duration::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn delta_recovers_the_suffix() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 2_000, 30_000] {
            h.record_ns(ns);
        }
        let before = h.clone();
        for ns in [5_000u64, 400_000] {
            h.record_ns(ns);
        }
        let d = h.delta(&before);
        assert_eq!(d.count(), 2);
        // min/max carry bucket resolution, not exactness.
        assert!(d.min_ns() <= 5_000 && d.min_ns() >= 5_000 * 15 / 16);
        assert!(d.max_ns() >= 400_000 * 15 / 16 && d.max_ns() <= h.max_ns());
        let p100 = d.quantile_ns(1.0) as f64;
        assert!((p100 / 400_000.0 - 1.0).abs() < 0.07, "p100 {p100}");
    }

    #[test]
    fn delta_of_identical_histograms_is_empty() {
        let mut h = LatencyHistogram::new();
        h.record_ns(42);
        let d = h.delta(&h.clone());
        assert!(d.is_empty());
        assert_eq!(d.quantile_ns(0.99), 0);
    }
}
