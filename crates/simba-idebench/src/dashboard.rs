//! Random dashboard generation: what IDEBench's unconstrained simulation
//! implicitly builds (§6.3, Figure 9 of the paper).

use rand::seq::SliceRandom;
use rand::Rng;
use simba_sql::{Expr, Func, Select, SelectItem};
use simba_store::{ColumnRole, Schema};

/// One randomly generated visualization: 1–3 dimension columns (numeric
/// ones binned) and one aggregate.
#[derive(Debug, Clone)]
pub struct RandomViz {
    pub id: usize,
    /// Dimension columns with optional bin width.
    pub dims: Vec<(String, Option<i64>)>,
    /// Aggregate function and argument column (`None` = `COUNT(*)`).
    pub agg: (Func, Option<String>),
}

impl RandomViz {
    /// The visualization's base query over `table`.
    pub fn base_query(&self, table: &str) -> Select {
        let mut projections: Vec<SelectItem> = Vec::new();
        let mut group_by = Vec::new();
        for (field, bin) in &self.dims {
            let e = match bin {
                Some(width) => Expr::Function {
                    func: Func::Bin,
                    args: vec![Expr::col(field.clone()), Expr::int(*width)],
                    distinct: false,
                },
                None => Expr::col(field.clone()),
            };
            projections.push(SelectItem::bare(e.clone()));
            group_by.push(e);
        }
        let agg_expr = match &self.agg {
            (f, Some(col)) => Expr::agg(*f, Expr::col(col.clone())),
            (_, None) => Expr::count_star(),
        };
        projections.push(SelectItem::bare(agg_expr));
        let mut q = Select::new(table, projections);
        q.group_by = group_by;
        q
    }

    /// Number of (unaggregated) data attributes.
    pub fn attr_count(&self) -> usize {
        self.dims.len()
    }
}

/// The implicit dashboard of one IDEBench run: a random visualization set
/// with dense random links.
#[derive(Debug, Clone)]
pub struct RandomDashboard {
    pub vizzes: Vec<RandomViz>,
    /// Directed links `source → target` between visualization indices.
    pub links: Vec<(usize, usize)>,
}

impl RandomDashboard {
    /// Generate a random dashboard over `schema`.
    ///
    /// Defaults follow the paper's observation of IDEBench behavior:
    /// 7–20 visualizations, densely linked so that a single interaction
    /// triggers ~9 visualization updates on average.
    pub fn generate(schema: &Schema, rng: &mut impl Rng) -> Self {
        Self::generate_with(schema, rng, 7..=20, 0.65)
    }

    /// Generate with explicit visualization-count range and link density.
    pub fn generate_with(
        schema: &Schema,
        rng: &mut impl Rng,
        viz_range: std::ops::RangeInclusive<usize>,
        link_density: f64,
    ) -> Self {
        let categorical: Vec<&str> = schema
            .columns_with_role(ColumnRole::Categorical)
            .into_iter()
            .map(|c| c.name.as_str())
            .collect();
        let numeric: Vec<&str> = schema
            .columns
            .iter()
            .filter(|c| c.role != ColumnRole::Categorical)
            .map(|c| c.name.as_str())
            .collect();
        let quantitative: Vec<&str> = schema
            .columns_with_role(ColumnRole::Quantitative)
            .into_iter()
            .map(|c| c.name.as_str())
            .collect();

        let n = rng.gen_range(viz_range);
        let mut vizzes = Vec::with_capacity(n);
        for id in 0..n {
            let n_dims = rng.gen_range(1..=3usize);
            let mut dims = Vec::with_capacity(n_dims);
            for _ in 0..n_dims {
                // IDEBench bins numeric axes; categorical axes group as-is.
                if !categorical.is_empty() && rng.gen_bool(0.6) {
                    let f = categorical.choose(rng).expect("non-empty");
                    if !dims.iter().any(|(d, _): &(String, Option<i64>)| d == f) {
                        dims.push((f.to_string(), None));
                    }
                } else if !numeric.is_empty() {
                    let f = numeric.choose(rng).expect("non-empty");
                    if !dims.iter().any(|(d, _): &(String, Option<i64>)| d == f) {
                        let width = *[5i64, 10, 20, 50, 100].choose(rng).expect("non-empty");
                        dims.push((f.to_string(), Some(width)));
                    }
                }
            }
            if dims.is_empty() {
                // Degenerate draw: fall back to the first available column.
                if let Some(f) = categorical.first() {
                    dims.push((f.to_string(), None));
                } else if let Some(f) = numeric.first() {
                    dims.push((f.to_string(), Some(10)));
                }
            }
            let agg = if quantitative.is_empty() || rng.gen_bool(0.4) {
                (Func::Count, None)
            } else {
                let f = *[Func::Sum, Func::Avg, Func::Min, Func::Max]
                    .choose(rng)
                    .expect("non-empty");
                (
                    f,
                    Some(quantitative.choose(rng).expect("non-empty").to_string()),
                )
            };
            vizzes.push(RandomViz { id, dims, agg });
        }

        let mut links = Vec::new();
        for s in 0..n {
            for t in 0..n {
                if s != t && rng.gen_bool(link_density) {
                    links.push((s, t));
                }
            }
        }
        Self { vizzes, links }
    }

    /// Visualizations updated when `source` is interacted with (its link
    /// targets plus itself).
    pub fn affected(&self, source: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .links
            .iter()
            .filter(|(s, _)| *s == source)
            .map(|(_, t)| *t)
            .collect();
        out.push(source);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Average out-degree plus one — the updates a single interaction
    /// triggers (Figure 9 reports ~9 for IT Monitor runs).
    pub fn avg_updates_per_interaction(&self) -> f64 {
        if self.vizzes.is_empty() {
            return 0.0;
        }
        let total: usize = (0..self.vizzes.len()).map(|v| self.affected(v).len()).sum();
        total as f64 / self.vizzes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simba_data::DashboardDataset;

    fn schema() -> Schema {
        DashboardDataset::ItMonitor.schema()
    }

    #[test]
    fn generates_viz_counts_in_range() {
        let s = schema();
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let d = RandomDashboard::generate(&s, &mut rng);
            assert!((7..=20).contains(&d.vizzes.len()), "{}", d.vizzes.len());
        }
    }

    #[test]
    fn fifty_runs_average_thirteen_vizzes() {
        // §6.3: "IDEBench created an average of 13 visualizations (min=7,
        // max=20)".
        let s = schema();
        let mut total = 0usize;
        for seed in 0..50 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            total += RandomDashboard::generate(&s, &mut rng).vizzes.len();
        }
        let avg = total as f64 / 50.0;
        assert!((11.0..=16.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn dense_links_trigger_many_updates() {
        let s = schema();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = RandomDashboard::generate(&s, &mut rng);
        let updates = d.avg_updates_per_interaction();
        assert!(updates >= 4.0, "avg updates {updates}");
    }

    #[test]
    fn base_queries_are_valid_sql() {
        let s = schema();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = RandomDashboard::generate(&s, &mut rng);
        for viz in &d.vizzes {
            let q = viz.base_query("it_monitor");
            let text = q.to_string();
            let reparsed = simba_sql::parse_select(&text).unwrap();
            assert_eq!(q, reparsed, "{text}");
            assert!(!q.group_by.is_empty());
        }
    }

    #[test]
    fn dims_are_unique_per_viz() {
        let s = schema();
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let d = RandomDashboard::generate(&s, &mut rng);
            for viz in &d.vizzes {
                let mut names: Vec<&str> = viz.dims.iter().map(|(f, _)| f.as_str()).collect();
                names.sort_unstable();
                names.dedup();
                assert_eq!(names.len(), viz.dims.len());
            }
        }
    }
}
