//! The engine-free IDEBench walk: query generation split from execution.
//!
//! [`IdeBenchRunner`](crate::session::IdeBenchRunner) interleaved drawing
//! interactions with executing their queries, so the stochastic loop could
//! not be replayed through the concurrent workload driver. This module owns
//! the generation half — implicit-dashboard creation, the accumulated
//! per-visualization filter state, and the add/modify/remove draws — as an
//! iterator of steps, leaving execution to whoever consumes it (the runner
//! for single-session logs, `IdebenchSource` for driver workloads).
//!
//! Rng draw order is identical to the historical runner loop (dashboard
//! generation first, then per step: target draw, action draw, filter
//! draws), so a walk with seed `s` emits byte-for-byte the SQL the runner
//! executed with `IdeBenchConfig { seed: s, .. }`.

use crate::dashboard::RandomDashboard;
use crate::session::{ActionProbs, IdeBenchConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_sql::{Expr, Select};
use simba_store::{ColumnRole, Table};

/// A filter on one column, as IDEBench composes them.
#[derive(Debug, Clone)]
pub(crate) enum IdeFilter {
    In { field: String, values: Vec<String> },
    Range { field: String, lo: f64, hi: f64 },
}

impl IdeFilter {
    fn to_expr(&self) -> Expr {
        match self {
            IdeFilter::In { field, values } => Expr::in_strs(field, values.iter().cloned()),
            IdeFilter::Range { field, lo, hi } => Expr::Between {
                expr: Box::new(Expr::col(field.clone())),
                low: Box::new(Expr::float(*lo)),
                high: Box::new(Expr::float(*hi)),
                negated: false,
            },
        }
    }

    fn field(&self) -> &str {
        match self {
            IdeFilter::In { field, .. } | IdeFilter::Range { field, .. } => field,
        }
    }
}

/// One step of the walk: the action taken and the queries it triggers.
#[derive(Debug, Clone)]
pub struct IdeStep {
    /// Step index; `0` is the initial render.
    pub step: usize,
    /// Human-readable action description.
    pub action: String,
    /// Refreshed queries: `("viz_<id>", query)`, in visualization order.
    pub queries: Vec<(String, Select)>,
}

/// Walks one IDEBench session over a table without executing queries.
pub struct IdeBenchWalk<'a> {
    table: &'a Table,
    probs: ActionProbs,
    interactions: usize,
    rng: ChaCha8Rng,
    dashboard: RandomDashboard,
    filters: Vec<Vec<IdeFilter>>,
    table_name: String,
    next_step: usize,
}

impl<'a> IdeBenchWalk<'a> {
    /// Generate the implicit dashboard and set up the walk.
    pub fn new(table: &'a Table, config: &IdeBenchConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x1DE);
        let dashboard = RandomDashboard::generate(table.schema(), &mut rng);
        let filters = vec![Vec::new(); dashboard.vizzes.len()];
        IdeBenchWalk {
            table,
            probs: config.probs.clone(),
            interactions: config.interactions,
            rng,
            dashboard,
            filters,
            table_name: table.name().to_string(),
            next_step: 0,
        }
    }

    /// The implicit dashboard this walk created.
    pub fn dashboard(&self) -> &RandomDashboard {
        &self.dashboard
    }

    /// Advance the walk one step (the initial render first, then
    /// `interactions` random filter mutations), or `None` when done.
    #[allow(clippy::should_implement_trait)] // not an Iterator: borrows state per call
    pub fn next(&mut self) -> Option<IdeStep> {
        let step = self.next_step;
        if step > self.interactions {
            return None;
        }
        self.next_step += 1;
        if step == 0 {
            let queries = (0..self.dashboard.vizzes.len())
                .map(|viz| self.viz_query(viz))
                .collect();
            return Some(IdeStep {
                step,
                action: "initial render".into(),
                queries,
            });
        }
        let target = self.rng.gen_range(0..self.dashboard.vizzes.len());
        let action = self.random_action(target);
        // Propagate: every linked visualization re-executes.
        let queries = self
            .dashboard
            .affected(target)
            .into_iter()
            .map(|affected| self.viz_query(affected))
            .collect();
        Some(IdeStep {
            step,
            action,
            queries,
        })
    }

    /// The query a visualization currently displays: its base query plus
    /// its own accumulated filters plus filters propagated from linking
    /// sources.
    fn viz_query(&self, viz: usize) -> (String, Select) {
        let mut q = self.dashboard.vizzes[viz].base_query(&self.table_name);
        // Own filters.
        for f in &self.filters[viz] {
            q.add_filter(f.to_expr());
        }
        // Filters from sources linking into this visualization.
        for (s, t) in &self.dashboard.links {
            if *t == viz {
                for f in &self.filters[*s] {
                    q.add_filter(f.to_expr());
                }
            }
        }
        (format!("viz_{viz}"), q)
    }

    /// Draw an interaction from the configured probabilities and mutate the
    /// target's filter list.
    fn random_action(&mut self, target: usize) -> String {
        let p: f64 = self.rng.gen_range(0.0..1.0);
        let probs = self.probs.clone();
        let filters = &mut self.filters[target];
        if p < probs.add_filter || filters.is_empty() {
            let f = random_filter(self.table, &mut self.rng);
            let desc = format!("add filter on {}", f.field());
            self.filters[target].push(f);
            desc
        } else if p < probs.add_filter + probs.modify_filter {
            let idx = self.rng.gen_range(0..filters.len());
            let f = random_filter(self.table, &mut self.rng);
            let desc = format!("modify filter on {}", f.field());
            self.filters[target][idx] = f;
            desc
        } else {
            let idx = self.rng.gen_range(0..filters.len());
            let removed = self.filters[target].remove(idx);
            format!("remove filter on {}", removed.field())
        }
    }
}

/// A uniformly random filter over a random column (IDEBench parameter
/// selection is uniform).
fn random_filter(table: &Table, rng: &mut ChaCha8Rng) -> IdeFilter {
    let schema = table.schema();
    let idx = rng.gen_range(0..schema.width());
    let def = &schema.columns[idx];
    let col = table.column(idx);
    match def.role {
        ColumnRole::Categorical => {
            let distinct: Vec<String> = col
                .distinct_values()
                .into_iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect();
            let k = rng.gen_range(1..=distinct.len().clamp(1, 3));
            let values: Vec<String> = distinct.choose_multiple(rng, k).cloned().collect();
            IdeFilter::In {
                field: def.name.clone(),
                values,
            }
        }
        _ => {
            let (lo, hi) = match col.min_max() {
                Some((a, b)) => (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0)),
                None => (0.0, 0.0),
            };
            let span = (hi - lo).max(f64::EPSILON);
            let a = lo + rng.gen_range(0.0..1.0) * span;
            let b = lo + rng.gen_range(0.0..1.0) * span;
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            IdeFilter::Range {
                field: def.name.clone(),
                lo: a,
                hi: b,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_data::DashboardDataset;

    fn table() -> Table {
        DashboardDataset::ItMonitor.generate_rows(1_000, 3)
    }

    #[test]
    fn walk_is_deterministic_and_bounded() {
        let t = table();
        let config = IdeBenchConfig {
            seed: 5,
            interactions: 7,
            ..Default::default()
        };
        let drain = || {
            let mut walk = IdeBenchWalk::new(&t, &config);
            let mut steps = Vec::new();
            while let Some(s) = walk.next() {
                steps.push(s);
            }
            steps
        };
        let a = drain();
        let b = drain();
        assert_eq!(a.len(), 8, "render + 7 interactions");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.action, y.action);
            let qa: Vec<String> = x.queries.iter().map(|(_, q)| q.to_string()).collect();
            let qb: Vec<String> = y.queries.iter().map(|(_, q)| q.to_string()).collect();
            assert_eq!(qa, qb);
        }
    }

    #[test]
    fn initial_render_covers_every_visualization() {
        let t = table();
        let mut walk = IdeBenchWalk::new(&t, &IdeBenchConfig::default());
        let n = walk.dashboard().vizzes.len();
        let render = walk.next().unwrap();
        assert_eq!(render.step, 0);
        assert_eq!(render.action, "initial render");
        assert_eq!(render.queries.len(), n);
    }
}
