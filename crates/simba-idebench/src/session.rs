//! The IDEBench stochastic interaction loop (§4.2 and §5 of the paper).
//!
//! End users are simulated as behaving randomly: at each step an interaction
//! type is drawn from fixed probabilities (add / modify / remove a filter),
//! a target visualization is chosen uniformly, and the new filter state is
//! propagated to every linked visualization — each of which re-executes its
//! query. There is no goal model and no termination condition other than the
//! configured interaction count.

use crate::dashboard::RandomDashboard;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_core::session::QueryRecord;
use simba_engine::Dbms;
use simba_sql::{Expr, Select};
use simba_store::{ColumnRole, Table};

/// IDEBench action probabilities (the "default probabilities for generating
/// actions" of §6.2.4). Filters dominate — the paper found IDEBench
/// "emphasizes adding filters" (avg 13.2 filters per visualization query).
#[derive(Debug, Clone)]
pub struct ActionProbs {
    pub add_filter: f64,
    pub modify_filter: f64,
    pub remove_filter: f64,
}

impl Default for ActionProbs {
    fn default() -> Self {
        Self {
            add_filter: 0.70,
            modify_filter: 0.22,
            remove_filter: 0.08,
        }
    }
}

/// IDEBench run configuration.
#[derive(Debug, Clone)]
pub struct IdeBenchConfig {
    pub seed: u64,
    /// Number of interactions to simulate.
    pub interactions: usize,
    pub probs: ActionProbs,
}

impl Default for IdeBenchConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            interactions: 30,
            probs: ActionProbs::default(),
        }
    }
}

/// One simulated interaction and the queries it triggered.
#[derive(Debug, Clone)]
pub struct IdeInteraction {
    pub step: usize,
    pub action: String,
    pub queries: Vec<QueryRecord>,
}

/// The record of one IDEBench run.
#[derive(Debug, Clone)]
pub struct IdeBenchLog {
    pub dashboard: RandomDashboard,
    pub engine: String,
    pub seed: u64,
    pub interactions: Vec<IdeInteraction>,
}

impl IdeBenchLog {
    /// Every executed query.
    pub fn queries(&self) -> impl Iterator<Item = &QueryRecord> {
        self.interactions.iter().flat_map(|i| i.queries.iter())
    }

    /// All query durations.
    pub fn durations(&self) -> Vec<std::time::Duration> {
        self.queries().map(|q| q.duration).collect()
    }

    /// Average visualization updates per interaction (excluding the initial
    /// render).
    pub fn avg_updates_per_interaction(&self) -> f64 {
        let moves: Vec<&IdeInteraction> = self.interactions.iter().filter(|i| i.step > 0).collect();
        if moves.is_empty() {
            return 0.0;
        }
        moves.iter().map(|i| i.queries.len()).sum::<usize>() as f64 / moves.len() as f64
    }
}

/// A filter on one column, as IDEBench composes them.
#[derive(Debug, Clone)]
enum IdeFilter {
    In { field: String, values: Vec<String> },
    Range { field: String, lo: f64, hi: f64 },
}

impl IdeFilter {
    fn to_expr(&self) -> Expr {
        match self {
            IdeFilter::In { field, values } => Expr::in_strs(field, values.iter().cloned()),
            IdeFilter::Range { field, lo, hi } => Expr::Between {
                expr: Box::new(Expr::col(field.clone())),
                low: Box::new(Expr::float(*lo)),
                high: Box::new(Expr::float(*hi)),
                negated: false,
            },
        }
    }

    fn field(&self) -> &str {
        match self {
            IdeFilter::In { field, .. } | IdeFilter::Range { field, .. } => field,
        }
    }
}

/// Runs IDEBench sessions over a table and engine.
pub struct IdeBenchRunner<'a> {
    pub table: &'a Table,
    pub engine: &'a dyn Dbms,
    pub config: IdeBenchConfig,
}

impl<'a> IdeBenchRunner<'a> {
    pub fn new(table: &'a Table, engine: &'a dyn Dbms, config: IdeBenchConfig) -> Self {
        Self {
            table,
            engine,
            config,
        }
    }

    /// Simulate one run: generate the implicit dashboard, render it, then
    /// perform random filter interactions.
    pub fn run(&self) -> Result<IdeBenchLog, simba_engine::EngineError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x1DE);
        let schema = self.table.schema();
        let dashboard = RandomDashboard::generate(schema, &mut rng);
        let table_name = self.table.name().to_string();

        // Per-visualization accumulated filters.
        let mut filters: Vec<Vec<IdeFilter>> = vec![Vec::new(); dashboard.vizzes.len()];
        let mut interactions = Vec::with_capacity(self.config.interactions + 1);

        // Initial render.
        let mut records = Vec::with_capacity(dashboard.vizzes.len());
        for viz in &dashboard.vizzes {
            let q = self.viz_query(&dashboard, &filters, viz.id, &table_name);
            records.push(self.execute(viz.id, &q)?);
        }
        interactions.push(IdeInteraction {
            step: 0,
            action: "initial render".into(),
            queries: records,
        });

        for step in 1..=self.config.interactions {
            let target = rng.gen_range(0..dashboard.vizzes.len());
            let action = self.random_action(&mut filters[target], &mut rng);

            // Propagate: every linked visualization re-executes.
            let mut records = Vec::new();
            for &affected in &dashboard.affected(target) {
                let q = self.viz_query(&dashboard, &filters, affected, &table_name);
                records.push(self.execute(affected, &q)?);
            }
            interactions.push(IdeInteraction {
                step,
                action,
                queries: records,
            });
        }

        Ok(IdeBenchLog {
            dashboard,
            engine: self.engine.name().to_string(),
            seed: self.config.seed,
            interactions,
        })
    }

    fn execute(&self, viz: usize, q: &Select) -> Result<QueryRecord, simba_engine::EngineError> {
        let out = self.engine.execute(q)?;
        Ok(QueryRecord {
            vis: format!("viz_{viz}"),
            sql: q.to_string(),
            duration: out.elapsed,
            rows: out.result.n_rows(),
        })
    }

    /// The query a visualization currently displays: its base query plus its
    /// own accumulated filters plus filters propagated from linking sources.
    fn viz_query(
        &self,
        dashboard: &RandomDashboard,
        filters: &[Vec<IdeFilter>],
        viz: usize,
        table: &str,
    ) -> Select {
        let mut q = dashboard.vizzes[viz].base_query(table);
        // Own filters.
        for f in &filters[viz] {
            q.add_filter(f.to_expr());
        }
        // Filters from sources linking into this visualization.
        for (s, t) in &dashboard.links {
            if *t == viz {
                for f in &filters[*s] {
                    q.add_filter(f.to_expr());
                }
            }
        }
        q
    }

    /// Draw an interaction from the default probabilities and mutate the
    /// target's filter list.
    fn random_action(&self, filters: &mut Vec<IdeFilter>, rng: &mut ChaCha8Rng) -> String {
        let p: f64 = rng.gen_range(0.0..1.0);
        let probs = &self.config.probs;
        if p < probs.add_filter || filters.is_empty() {
            let f = self.random_filter(rng);
            let desc = format!("add filter on {}", f.field());
            filters.push(f);
            desc
        } else if p < probs.add_filter + probs.modify_filter {
            let idx = rng.gen_range(0..filters.len());
            let f = self.random_filter(rng);
            let desc = format!("modify filter on {}", f.field());
            filters[idx] = f;
            desc
        } else {
            let idx = rng.gen_range(0..filters.len());
            let removed = filters.remove(idx);
            format!("remove filter on {}", removed.field())
        }
    }

    /// A uniformly random filter over a random column (IDEBench parameter
    /// selection is uniform).
    fn random_filter(&self, rng: &mut ChaCha8Rng) -> IdeFilter {
        let schema = self.table.schema();
        let idx = rng.gen_range(0..schema.width());
        let def = &schema.columns[idx];
        let col = self.table.column(idx);
        match def.role {
            ColumnRole::Categorical => {
                let distinct: Vec<String> = col
                    .distinct_values()
                    .into_iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect();
                let k = rng.gen_range(1..=distinct.len().clamp(1, 3));
                let values: Vec<String> = distinct.choose_multiple(rng, k).cloned().collect();
                IdeFilter::In {
                    field: def.name.clone(),
                    values,
                }
            }
            _ => {
                let (lo, hi) = match col.min_max() {
                    Some((a, b)) => (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0)),
                    None => (0.0, 0.0),
                };
                let span = (hi - lo).max(f64::EPSILON);
                let a = lo + rng.gen_range(0.0..1.0) * span;
                let b = lo + rng.gen_range(0.0..1.0) * span;
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                IdeFilter::Range {
                    field: def.name.clone(),
                    lo: a,
                    hi: b,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;
    use std::sync::Arc;

    fn setup() -> (Arc<Table>, Arc<dyn Dbms>) {
        let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(2_000, 3));
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table.clone());
        (table, engine)
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (table, engine) = setup();
        let run = |seed| {
            IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                IdeBenchConfig {
                    seed,
                    interactions: 8,
                    ..Default::default()
                },
            )
            .run()
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.interactions.len(), b.interactions.len());
        for (x, y) in a.queries().zip(b.queries()) {
            assert_eq!(x.sql, y.sql);
        }
        let c = run(6);
        let differs = a.queries().zip(c.queries()).any(|(x, y)| x.sql != y.sql)
            || a.interactions.len() != c.interactions.len();
        assert!(differs);
    }

    #[test]
    fn interactions_trigger_multiple_updates() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 2,
                interactions: 10,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(log.avg_updates_per_interaction() > 2.0);
    }

    #[test]
    fn filters_accumulate_over_session() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 7,
                interactions: 25,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        // Filter counts should grow substantially by the end of the run.
        let late_filters: Vec<usize> = log
            .interactions
            .iter()
            .rev()
            .take(5)
            .flat_map(|i| i.queries.iter())
            .map(|q| simba_sql::parse_select(&q.sql).unwrap().filters().len())
            .collect();
        let max_late = late_filters.iter().copied().max().unwrap_or(0);
        assert!(max_late >= 3, "late filter count {max_late}");
    }

    #[test]
    fn all_emitted_queries_execute() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 9,
                interactions: 6,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(log.queries().count() > 6);
    }
}
