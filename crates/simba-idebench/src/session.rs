//! The IDEBench stochastic interaction loop (§4.2 and §5 of the paper).
//!
//! End users are simulated as behaving randomly: at each step an interaction
//! type is drawn from fixed probabilities (add / modify / remove a filter),
//! a target visualization is chosen uniformly, and the new filter state is
//! propagated to every linked visualization — each of which re-executes its
//! query. There is no goal model and no termination condition other than the
//! configured interaction count.
//!
//! Query generation lives in [`IdeBenchWalk`];
//! this module executes the walk against one engine and records a log. To
//! run IDEBench sessions concurrently through the workload driver instead,
//! use [`IdebenchSource`](crate::IdebenchSource).

use crate::walk::IdeBenchWalk;
use simba_core::session::QueryRecord;
use simba_engine::Dbms;
use simba_sql::Select;
use simba_store::Table;

/// IDEBench action probabilities (the "default probabilities for generating
/// actions" of §6.2.4). Filters dominate — the paper found IDEBench
/// "emphasizes adding filters" (avg 13.2 filters per visualization query).
#[derive(Debug, Clone)]
pub struct ActionProbs {
    pub add_filter: f64,
    pub modify_filter: f64,
    pub remove_filter: f64,
}

impl Default for ActionProbs {
    fn default() -> Self {
        Self {
            add_filter: 0.70,
            modify_filter: 0.22,
            remove_filter: 0.08,
        }
    }
}

/// IDEBench run configuration.
#[derive(Debug, Clone)]
pub struct IdeBenchConfig {
    pub seed: u64,
    /// Number of interactions to simulate.
    pub interactions: usize,
    pub probs: ActionProbs,
}

impl Default for IdeBenchConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            interactions: 30,
            probs: ActionProbs::default(),
        }
    }
}

/// One simulated interaction and the queries it triggered.
#[derive(Debug, Clone)]
pub struct IdeInteraction {
    pub step: usize,
    pub action: String,
    pub queries: Vec<QueryRecord>,
}

/// The record of one IDEBench run.
#[derive(Debug, Clone)]
pub struct IdeBenchLog {
    pub dashboard: crate::dashboard::RandomDashboard,
    pub engine: String,
    pub seed: u64,
    pub interactions: Vec<IdeInteraction>,
}

impl IdeBenchLog {
    /// Every executed query.
    pub fn queries(&self) -> impl Iterator<Item = &QueryRecord> {
        self.interactions.iter().flat_map(|i| i.queries.iter())
    }

    /// All query durations.
    pub fn durations(&self) -> Vec<std::time::Duration> {
        self.queries().map(|q| q.duration).collect()
    }

    /// Average visualization updates per interaction (excluding the initial
    /// render).
    pub fn avg_updates_per_interaction(&self) -> f64 {
        let moves: Vec<&IdeInteraction> = self.interactions.iter().filter(|i| i.step > 0).collect();
        if moves.is_empty() {
            return 0.0;
        }
        moves.iter().map(|i| i.queries.len()).sum::<usize>() as f64 / moves.len() as f64
    }
}

/// Runs IDEBench sessions over a table and engine.
pub struct IdeBenchRunner<'a> {
    pub table: &'a Table,
    pub engine: &'a dyn Dbms,
    pub config: IdeBenchConfig,
}

impl<'a> IdeBenchRunner<'a> {
    pub fn new(table: &'a Table, engine: &'a dyn Dbms, config: IdeBenchConfig) -> Self {
        Self {
            table,
            engine,
            config,
        }
    }

    /// Simulate one run: generate the implicit dashboard, render it, then
    /// perform random filter interactions.
    pub fn run(&self) -> Result<IdeBenchLog, simba_engine::EngineError> {
        let mut walk = IdeBenchWalk::new(self.table, &self.config);
        let mut interactions = Vec::with_capacity(self.config.interactions + 1);
        while let Some(step) = walk.next() {
            let mut records = Vec::with_capacity(step.queries.len());
            for (vis, q) in &step.queries {
                records.push(self.execute(vis, q)?);
            }
            interactions.push(IdeInteraction {
                step: step.step,
                action: step.action,
                queries: records,
            });
        }
        Ok(IdeBenchLog {
            dashboard: walk.dashboard().clone(),
            engine: self.engine.name().to_string(),
            seed: self.config.seed,
            interactions,
        })
    }

    fn execute(&self, vis: &str, q: &Select) -> Result<QueryRecord, simba_engine::EngineError> {
        let out = self.engine.execute(q)?;
        Ok(QueryRecord {
            vis: vis.to_string(),
            sql: q.to_string(),
            duration: out.elapsed,
            rows: out.result.n_rows(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;
    use std::sync::Arc;

    fn setup() -> (Arc<Table>, Arc<dyn Dbms>) {
        let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(2_000, 3));
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table.clone());
        (table, engine)
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let (table, engine) = setup();
        let run = |seed| {
            IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                IdeBenchConfig {
                    seed,
                    interactions: 8,
                    ..Default::default()
                },
            )
            .run()
            .unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.interactions.len(), b.interactions.len());
        for (x, y) in a.queries().zip(b.queries()) {
            assert_eq!(x.sql, y.sql);
        }
        let c = run(6);
        let differs = a.queries().zip(c.queries()).any(|(x, y)| x.sql != y.sql)
            || a.interactions.len() != c.interactions.len();
        assert!(differs);
    }

    #[test]
    fn interactions_trigger_multiple_updates() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 2,
                interactions: 10,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(log.avg_updates_per_interaction() > 2.0);
    }

    #[test]
    fn filters_accumulate_over_session() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 7,
                interactions: 25,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        // Filter counts should grow substantially by the end of the run.
        let late_filters: Vec<usize> = log
            .interactions
            .iter()
            .rev()
            .take(5)
            .flat_map(|i| i.queries.iter())
            .map(|q| simba_sql::parse_select(&q.sql).unwrap().filters().len())
            .collect();
        let max_late = late_filters.iter().copied().max().unwrap_or(0);
        assert!(max_late >= 3, "late filter count {max_late}");
    }

    #[test]
    fn all_emitted_queries_execute() {
        let (table, engine) = setup();
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: 9,
                interactions: 6,
                ..Default::default()
            },
        )
        .run()
        .unwrap();
        assert!(log.queries().count() > 6);
    }
}
