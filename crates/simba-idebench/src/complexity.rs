//! Reverse-engineered dashboard complexity reports (Figure 9 and the §6.3
//! workload-shape comparison).

use crate::session::IdeBenchLog;
use simba_core::metrics::{query_shape, QueryShape, WorkloadStats};

/// Complexity profile of one IDEBench run's implicit dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct DashboardComplexity {
    pub viz_count: usize,
    pub link_count: usize,
    pub avg_updates_per_interaction: f64,
    /// Average data attributes per visualization (the paper reports 2.1 for
    /// IDEBench vs 3.8 for SIMBA).
    pub avg_attrs_per_viz: f64,
    /// Average WHERE filters per emitted query (13.2 vs 5.8 in the paper).
    pub avg_filters_per_query: f64,
}

impl DashboardComplexity {
    /// Profile one run.
    pub fn from_log(log: &IdeBenchLog) -> DashboardComplexity {
        let viz_count = log.dashboard.vizzes.len();
        let attrs: usize = log.dashboard.vizzes.iter().map(|v| v.attr_count()).sum();
        let shapes: Vec<QueryShape> = log
            .queries()
            .filter_map(|q| simba_sql::parse_select(&q.sql).ok())
            .map(|q| query_shape(&q))
            .collect();
        let filters_avg = if shapes.is_empty() {
            0.0
        } else {
            shapes.iter().map(|s| s.filters as f64).sum::<f64>() / shapes.len() as f64
        };
        DashboardComplexity {
            viz_count,
            link_count: log.dashboard.links.len(),
            avg_updates_per_interaction: log.avg_updates_per_interaction(),
            avg_attrs_per_viz: if viz_count == 0 {
                0.0
            } else {
                attrs as f64 / viz_count as f64
            },
            avg_filters_per_query: filters_avg,
        }
    }

    /// Table 4-style workload statistics for the run's queries.
    pub fn workload_stats(log: &IdeBenchLog) -> Option<WorkloadStats> {
        let shapes: Vec<QueryShape> = log
            .queries()
            .filter_map(|q| simba_sql::parse_select(&q.sql).ok())
            .map(|q| query_shape(&q))
            .collect();
        WorkloadStats::from_shapes(&shapes)
    }
}

/// Aggregate Figure 9-style statistics over many runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetComplexity {
    pub runs: usize,
    pub viz_avg: f64,
    pub viz_min: usize,
    pub viz_max: usize,
    pub updates_avg: f64,
    pub updates_min: f64,
    pub updates_max: f64,
    pub attrs_avg: f64,
    pub filters_avg: f64,
}

impl FleetComplexity {
    /// Summarize many per-run complexity profiles.
    pub fn from_runs(profiles: &[DashboardComplexity]) -> Option<FleetComplexity> {
        if profiles.is_empty() {
            return None;
        }
        let n = profiles.len() as f64;
        Some(FleetComplexity {
            runs: profiles.len(),
            viz_avg: profiles.iter().map(|p| p.viz_count as f64).sum::<f64>() / n,
            viz_min: profiles
                .iter()
                .map(|p| p.viz_count)
                .min()
                .expect("non-empty"),
            viz_max: profiles
                .iter()
                .map(|p| p.viz_count)
                .max()
                .expect("non-empty"),
            updates_avg: profiles
                .iter()
                .map(|p| p.avg_updates_per_interaction)
                .sum::<f64>()
                / n,
            updates_min: profiles
                .iter()
                .map(|p| p.avg_updates_per_interaction)
                .fold(f64::INFINITY, f64::min),
            updates_max: profiles
                .iter()
                .map(|p| p.avg_updates_per_interaction)
                .fold(f64::NEG_INFINITY, f64::max),
            attrs_avg: profiles.iter().map(|p| p.avg_attrs_per_viz).sum::<f64>() / n,
            filters_avg: profiles
                .iter()
                .map(|p| p.avg_filters_per_query)
                .sum::<f64>()
                / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{IdeBenchConfig, IdeBenchRunner};
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;
    use std::sync::Arc;

    fn run(seed: u64) -> IdeBenchLog {
        let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(1_000, 3));
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table.clone());
        IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed,
                interactions: 15,
                ..Default::default()
            },
        )
        .run()
        .unwrap()
    }

    #[test]
    fn complexity_profile_reflects_dashboard() {
        let log = run(1);
        let c = DashboardComplexity::from_log(&log);
        assert_eq!(c.viz_count, log.dashboard.vizzes.len());
        assert!(c.avg_attrs_per_viz >= 1.0);
        assert!(c.avg_updates_per_interaction > 1.0);
    }

    #[test]
    fn idebench_filters_exceed_attrs() {
        // §6.3's signature imbalance: IDEBench stacks filters faster than
        // it widens visualizations.
        let log = run(2);
        let c = DashboardComplexity::from_log(&log);
        assert!(
            c.avg_filters_per_query > c.avg_attrs_per_viz,
            "filters {} vs attrs {}",
            c.avg_filters_per_query,
            c.avg_attrs_per_viz
        );
    }

    #[test]
    fn fleet_summary_covers_ranges() {
        let profiles: Vec<DashboardComplexity> = (0..8)
            .map(|s| DashboardComplexity::from_log(&run(s)))
            .collect();
        let fleet = FleetComplexity::from_runs(&profiles).unwrap();
        assert_eq!(fleet.runs, 8);
        assert!(fleet.viz_min <= fleet.viz_avg as usize);
        assert!(fleet.viz_max >= fleet.viz_avg as usize);
        assert!(fleet.filters_avg > 0.0);
    }

    #[test]
    fn empty_fleet_is_none() {
        assert!(FleetComplexity::from_runs(&[]).is_none());
    }
}
