//! IDEBench baseline: the fully stochastic interactive-exploration
//! benchmark SIMBA is compared against (§5, §6.3 of the paper).
//!
//! IDEBench (Eichmann et al., SIGMOD 2020) simulates end users as a purely
//! random process: there is no developer-specified dashboard, no analysis
//! goals, and interactions are drawn from fixed probabilities. Each run
//! implicitly *creates* a dashboard — a random set of visualizations with
//! dense links — which the paper reverse-engineers to show how unconstrained
//! variance produces unrealistic designs (Figure 9: avg 13 visualizations,
//! min 7, max 20; one interaction triggering ~9 updates).
//!
//! This crate reproduces that behavior over the same datasets and engines:
//!
//! * [`dashboard`] — random visualization-set generation with dense links;
//! * [`session`] — the stochastic interaction loop (add/modify/remove
//!   filters, mutate a visualization) with IDEBench's default probabilities;
//! * [`complexity`] — the reverse-engineered dashboard reports behind
//!   Figure 9 and the §6.3 workload-shape comparison.

pub mod complexity;
pub mod dashboard;
pub mod session;

pub use complexity::DashboardComplexity;
pub use dashboard::{RandomDashboard, RandomViz};
pub use session::{IdeBenchConfig, IdeBenchLog, IdeBenchRunner};
