//! IDEBench baseline: the fully stochastic interactive-exploration
//! benchmark SIMBA is compared against (§5, §6.3 of the paper).
//!
//! IDEBench (Eichmann et al., SIGMOD 2020) simulates end users as a purely
//! random process: there is no developer-specified dashboard, no analysis
//! goals, and interactions are drawn from fixed probabilities. Each run
//! implicitly *creates* a dashboard — a random set of visualizations with
//! dense links — which the paper reverse-engineers to show how unconstrained
//! variance produces unrealistic designs (Figure 9: avg 13 visualizations,
//! min 7, max 20; one interaction triggering ~9 updates).
//!
//! This crate reproduces that behavior over the same datasets and engines:
//!
//! * [`dashboard`] — random visualization-set generation with dense links;
//! * [`walk`] — the engine-free stochastic walk (add/modify/remove filters
//!   with IDEBench's default probabilities) shared by the runner and the
//!   workload bridge;
//! * [`session`] — the single-session loop executing a walk against one
//!   engine and recording a log;
//! * [`source`] — [`IdebenchSource`], plugging IDEBench sessions into the
//!   unified `SessionSource` workload API so the concurrent driver can run
//!   them like any other scenario;
//! * [`complexity`] — the reverse-engineered dashboard reports behind
//!   Figure 9 and the §6.3 workload-shape comparison.

pub mod complexity;
pub mod dashboard;
pub mod session;
pub mod source;
pub mod walk;

pub use complexity::DashboardComplexity;
pub use dashboard::{RandomDashboard, RandomViz};
pub use session::{ActionProbs, IdeBenchConfig, IdeBenchLog, IdeBenchRunner};
pub use source::IdebenchSource;
pub use walk::{IdeBenchWalk, IdeStep};
