//! Bridge from the IDEBench stochastic loop into the unified workload API:
//! an [`IdebenchSource`] plugs IDEBench-style sessions into the same
//! [`SessionSource`] stream the scripted and adaptive workloads use, so the
//! concurrent driver can pace, cache, and report them identically.
//!
//! Each user gets an independent IDEBench run — their own implicit random
//! dashboard and their own filter storm — seeded with the same per-user
//! derivation as batch synthesis (`base_seed ^ splitmix(user + 1)`), so a
//! multi-user IDEBench workload reseeds one knob like every other source.

use crate::session::{ActionProbs, IdeBenchConfig};
use crate::walk::IdeBenchWalk;
use simba_core::session::batch::splitmix;
use simba_core::session::source::{QueryFeedback, SessionSource, SessionStream, SourceStep};
use simba_store::Table;
use std::sync::Arc;

/// IDEBench-style sessions as a [`SessionSource`]: purely stochastic filter
/// mutations over per-user implicit dashboards. Feedback is ignored —
/// IDEBench users never look at what comes back.
pub struct IdebenchSource {
    table: Arc<Table>,
    base_seed: u64,
    sessions: usize,
    interactions: usize,
    probs: ActionProbs,
}

impl IdebenchSource {
    /// `sessions` independent runs over `table`, each `interactions` steps
    /// past the initial render.
    pub fn new(table: Arc<Table>, base_seed: u64, sessions: usize, interactions: usize) -> Self {
        IdebenchSource {
            table,
            base_seed,
            sessions,
            interactions,
            probs: ActionProbs::default(),
        }
    }

    /// Override the action probabilities.
    pub fn with_probs(mut self, probs: ActionProbs) -> Self {
        self.probs = probs;
        self
    }

    /// The exact single-run configuration user `user` walks with — handed
    /// to [`IdeBenchRunner`](crate::IdeBenchRunner) it reproduces this
    /// source's session byte-for-byte (the bridge equivalence tests rely on
    /// this).
    pub fn session_config(&self, user: usize) -> IdeBenchConfig {
        IdeBenchConfig {
            seed: self.base_seed ^ splitmix(user as u64 + 1),
            interactions: self.interactions,
            probs: self.probs.clone(),
        }
    }
}

impl SessionSource for IdebenchSource {
    fn mode(&self) -> &'static str {
        "idebench"
    }

    fn sessions(&self) -> usize {
        self.sessions
    }

    fn open(&self, user: usize) -> Box<dyn SessionStream + '_> {
        let config = self.session_config(user);
        Box::new(IdebenchStream {
            seed: config.seed,
            walk: IdeBenchWalk::new(&self.table, &config),
        })
    }
}

struct IdebenchStream<'a> {
    walk: IdeBenchWalk<'a>,
    seed: u64,
}

impl SessionStream for IdebenchStream<'_> {
    fn session_seed(&self) -> u64 {
        self.seed
    }

    fn next_step(&mut self, _feedback: &[QueryFeedback<'_>]) -> Option<SourceStep> {
        let step = self.walk.next()?;
        Some(SourceStep {
            description: step.action,
            steering: None,
            queries: step.queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdeBenchRunner;
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;

    #[test]
    fn source_streams_match_single_runner_sessions() {
        let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(1_500, 3));
        let source = IdebenchSource::new(table.clone(), 42, 2, 5);
        assert_eq!(source.mode(), "idebench");
        assert_eq!(source.sessions(), 2);
        assert!(source.steering_policy().is_none());

        let engine = EngineKind::SqliteLike.build();
        engine.register(table.clone());

        for user in 0..2 {
            let log = IdeBenchRunner::new(&table, engine.as_ref(), source.session_config(user))
                .run()
                .unwrap();
            let mut stream = source.open(user);
            assert_eq!(stream.session_seed(), source.session_config(user).seed);
            let mut streamed: Vec<(String, Vec<String>)> = Vec::new();
            while let Some(step) = stream.next_step(&[]) {
                streamed.push((
                    step.description,
                    step.queries.iter().map(|(_, q)| q.to_string()).collect(),
                ));
            }
            let legacy: Vec<(String, Vec<String>)> = log
                .interactions
                .iter()
                .map(|i| {
                    (
                        i.action.clone(),
                        i.queries.iter().map(|q| q.sql.clone()).collect(),
                    )
                })
                .collect();
            assert_eq!(streamed, legacy, "user {user}");
        }
    }

    #[test]
    fn users_get_distinct_dashboards() {
        let table = Arc::new(DashboardDataset::ItMonitor.generate_rows(800, 5));
        let source = IdebenchSource::new(table, 7, 3, 3);
        let first_queries: Vec<Vec<String>> = (0..3)
            .map(|u| {
                let mut stream = source.open(u);
                let render = stream.next_step(&[]).expect("render");
                render.queries.iter().map(|(_, q)| q.to_string()).collect()
            })
            .collect();
        assert!(
            first_queries.windows(2).any(|w| w[0] != w[1]),
            "independent seeds should diverge: {first_queries:?}"
        );
    }
}
