//! Property test: parallel dataset generation is byte-identical to
//! single-threaded generation.
//!
//! The chunk-deterministic contract (`simba_data::chunk`) claims the
//! generated table is a pure function of `(dataset, rows, seed)` — thread
//! count affects wall-clock only. This pins it with [`Table::bitwise_eq`]
//! (raw buffers, float bit patterns, dictionary order, codes, validity):
//! for every dataset, across thread counts 1/2/8, at row counts sitting
//! exactly on, one past, and one short of chunk boundaries
//! (`rows % chunk_rows ∈ {0, 1, chunk_rows − 1}`), where the dictionary
//! merge and the ragged final chunk are most likely to betray an
//! order-dependent bug.
//!
//! Most cases run at a reduced chunk size (one morsel) through
//! `generate_chunked` so multiple chunks stay cheap; a pinned test crosses
//! the real `CHUNK_ROWS` boundary through the public API.

use proptest::prelude::*;
use simba_data::chunk::{generate_chunked, CHUNK_ROWS};
use simba_data::DashboardDataset;
use simba_store::{Table, MORSEL_ROWS};

/// Generate `dataset` at a test-scale chunk size (one morsel) so a few
/// thousand rows span several chunks.
fn small_chunked(dataset: DashboardDataset, rows: usize, seed: u64, threads: usize) -> Table {
    generate_chunked(
        dataset.schema(),
        rows,
        seed,
        dataset.chunk_salt(),
        threads,
        MORSEL_ROWS,
        |rng, ctx, b| dataset.fill_chunk(rng, ctx, b),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_generation_is_byte_identical(
        dataset_idx in 0usize..6,
        whole_chunks in 1usize..4,
        boundary_offset in proptest::sample::select(vec![0usize, 1, MORSEL_ROWS - 1]),
        seed in 0u64..1_000,
    ) {
        let dataset = DashboardDataset::ALL[dataset_idx];
        let rows = whole_chunks * MORSEL_ROWS + boundary_offset;
        let reference = small_chunked(dataset, rows, seed, 1);
        prop_assert_eq!(reference.row_count(), rows);
        for threads in [2, 8] {
            let parallel = small_chunked(dataset, rows, seed, threads);
            prop_assert!(
                parallel.bitwise_eq(&reference),
                "{} rows={} seed={} threads={} diverged from single-threaded",
                dataset.table_name(), rows, seed, threads
            );
        }
    }
}

/// The public API (`generate_rows*`, fixed `CHUNK_ROWS`) across a real
/// chunk boundary: `rows % CHUNK_ROWS ∈ {0, 1}` around one chunk, at
/// 1/2/8 threads plus the auto (all-cores) default. Two representative
/// datasets keep this debug-build-affordable — the narrowest dictionary
/// surface and the widest (18 categorical columns); the proptest above
/// covers all six at a reduced chunk size.
#[test]
fn public_api_thread_invariance_at_real_chunk_boundary() {
    for dataset in [
        DashboardDataset::CirculationActivity,
        DashboardDataset::SupplyChain,
    ] {
        for rows in [CHUNK_ROWS, CHUNK_ROWS + 1] {
            let reference = dataset.generate_rows_with_threads(rows, 42, 1);
            for threads in [2usize, 8] {
                let parallel = dataset.generate_rows_with_threads(rows, 42, threads);
                assert!(
                    parallel.bitwise_eq(&reference),
                    "{} rows={rows} threads={threads}",
                    dataset.table_name()
                );
            }
            assert!(
                dataset.generate_rows(rows, 42).bitwise_eq(&reference),
                "{} rows={rows} auto threads",
                dataset.table_name()
            );
        }
    }
}

/// The assembled zone maps equal what a lazy post-hoc build would compute.
#[test]
fn eager_zone_maps_match_lazy_rebuild() {
    for dataset in DashboardDataset::ALL {
        let rows = 2 * MORSEL_ROWS + 7;
        let table = small_chunked(dataset, rows, 5, 4);
        assert!(table.zone_maps_built(), "{}", dataset.table_name());
        let eager = table.zone_maps();
        let lazy = simba_store::ZoneMaps::build(
            &(0..table.schema().width())
                .map(|c| table.column(c).clone())
                .collect::<Vec<_>>(),
            rows,
        );
        assert_eq!(eager.n_morsels(), lazy.n_morsels());
        for col in 0..table.schema().width() {
            match (eager.column(col), lazy.column(col)) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(
                    a.zones(),
                    b.zones(),
                    "{} column {col}",
                    dataset.table_name()
                ),
                _ => panic!(
                    "{} column {col}: zone presence differs",
                    dataset.table_name()
                ),
            }
        }
    }
}
