//! Seeded synthetic dataset generators for the six SIMBA dashboards.
//!
//! The paper's datasets come from Tableau Public dashboards (§6.1) and are
//! scaled to 100K / 1M / 10M rows with the generation techniques of prior
//! benchmarks (§6.2.3). We reconstruct each dataset from the dashboard's
//! description: its schema reproduces the paper's quantitative/categorical
//! column counts (Figure 6), and value distributions are chosen so that the
//! dashboards' queries return plausible shapes (skewed categories, diurnal
//! temporal patterns, correlated measures).
//!
//! Everything is deterministic: the same `(dataset, size, seed)` triple
//! always produces the same table — at *any* generation thread count.
//! Generation is chunked ([`chunk`]): every fixed-size chunk draws from an
//! independent RNG derived from the master seed and the chunk index, so
//! chunks parallelize across worker threads while the assembled bytes stay
//! a pure function of the triple.

#![warn(missing_docs)]

pub mod chunk;
pub mod datasets;
pub mod sizes;
pub mod util;

pub use datasets::DashboardDataset;
pub use sizes::DatasetSize;

use simba_store::Table;

/// Generate the table for a dashboard dataset at a given size and seed.
pub fn generate(dataset: DashboardDataset, size: DatasetSize, seed: u64) -> Table {
    dataset.generate_rows(size.row_count(), seed)
}
