//! UBC Energy Map dataset (strategic decision making; 22Q, 4C).
//!
//! Campus energy usage per building: granular per-energy-type readings plus
//! derived cost/intensity metrics. With 22 quantitative columns it is the
//! widest measure surface of the six dashboards, exercising goal templates
//! that enumerate aggregate attributes (Identification in Table 2).

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, diurnal_intensity, epoch_at, zipf_index};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0x0B_CE;

const BUILDING_TYPES: [&str; 8] = [
    "laboratory",
    "lecture_hall",
    "office",
    "residence",
    "library",
    "athletics",
    "hospital",
    "utility",
];
const ENERGY_TYPES: [&str; 5] = ["electricity", "gas", "steam", "chilled_water", "solar"];
const ZONES: [&str; 6] = [
    "north_campus",
    "south_campus",
    "east_mall",
    "west_mall",
    "marine_drive",
    "wesbrook",
];
const OPERATORS: [&str; 4] = ["facilities", "housing", "athletics_dept", "research_ops"];

/// Schema: 4 categorical, 22 quantitative, 1 temporal column.
pub fn schema() -> Schema {
    Schema::new(
        "ubc_energy",
        vec![
            ColumnDef::categorical("building_type"),
            ColumnDef::categorical("energy_type"),
            ColumnDef::categorical("campus_zone"),
            ColumnDef::categorical("operator"),
            ColumnDef::quantitative_float("elec_kwh"),
            ColumnDef::quantitative_float("gas_kwh"),
            ColumnDef::quantitative_float("steam_kwh"),
            ColumnDef::quantitative_float("chilled_water_kwh"),
            ColumnDef::quantitative_float("solar_gen_kwh"),
            ColumnDef::quantitative_float("water_m3"),
            ColumnDef::quantitative_float("floor_area_m2"),
            ColumnDef::quantitative_int("occupancy"),
            ColumnDef::quantitative_float("energy_intensity"),
            ColumnDef::quantitative_float("elec_cost"),
            ColumnDef::quantitative_float("gas_cost"),
            ColumnDef::quantitative_float("steam_cost"),
            ColumnDef::quantitative_float("water_cost"),
            ColumnDef::quantitative_float("carbon_kg"),
            ColumnDef::quantitative_float("peak_demand_kw"),
            ColumnDef::quantitative_float("base_load_kw"),
            ColumnDef::quantitative_float("hvac_kwh"),
            ColumnDef::quantitative_float("lighting_kwh"),
            ColumnDef::quantitative_float("plug_load_kwh"),
            ColumnDef::quantitative_float("battery_kwh"),
            ColumnDef::quantitative_float("temperature_c"),
            ColumnDef::quantitative_float("efficiency_score"),
            ColumnDef::temporal("reading_ts"),
        ],
    )
}

/// Generate `rows` hourly meter readings, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let btypes: Vec<Value> = BUILDING_TYPES.iter().map(Value::str).collect();
    let etypes: Vec<Value> = ENERGY_TYPES.iter().map(Value::str).collect();
    let zones: Vec<Value> = ZONES.iter().map(Value::str).collect();
    let operators: Vec<Value> = OPERATORS.iter().map(Value::str).collect();

    for _ in 0..ctx.len {
        let bt = zipf_index(&mut rng, BUILDING_TYPES.len(), 0.5);
        let et = zipf_index(&mut rng, ENERGY_TYPES.len(), 0.8);
        let zone = rng.gen_range(0..ZONES.len());
        let operator = bt % OPERATORS.len();
        let day = rng.gen_range(0i64..365);
        let hour = rng.gen_range(0i64..24);
        let load = diurnal_intensity(hour);

        // Labs and hospitals burn far more energy than offices.
        let scale = match bt {
            0 | 6 => 4.0,
            7 => 3.0,
            3 => 1.5,
            _ => 1.0,
        };
        let area = clamped_normal(&mut rng, 4500.0 * scale, 1500.0, 300.0, 60_000.0);
        let occupancy = (clamped_normal(&mut rng, 120.0 * load * scale, 40.0, 0.0, 4000.0)) as i64;
        let elec = clamped_normal(
            &mut rng,
            220.0 * scale * (0.4 + 0.6 * load),
            60.0,
            5.0,
            8000.0,
        );
        let gas = clamped_normal(&mut rng, 90.0 * scale, 35.0, 0.0, 4000.0);
        let steam = clamped_normal(&mut rng, 60.0 * scale, 25.0, 0.0, 3000.0);
        let chilled = clamped_normal(&mut rng, 45.0 * scale * load, 20.0, 0.0, 2500.0);
        let solar = if (7..19).contains(&hour) {
            clamped_normal(&mut rng, 30.0, 12.0, 0.0, 150.0)
        } else {
            0.0
        };
        let water = clamped_normal(&mut rng, 8.0 * scale, 3.0, 0.1, 300.0);
        let hvac = elec * clamped_normal(&mut rng, 0.45, 0.06, 0.2, 0.7);
        let lighting = elec * clamped_normal(&mut rng, 0.22, 0.04, 0.05, 0.4);
        let plug = (elec - hvac - lighting).max(0.0);
        let battery = clamped_normal(&mut rng, 5.0, 3.0, 0.0, 40.0);
        let peak = elec / 24.0 * clamped_normal(&mut rng, 2.2, 0.3, 1.2, 4.0);
        let base = elec / 24.0 * clamped_normal(&mut rng, 0.6, 0.1, 0.2, 1.0);
        let total = elec + gas + steam + chilled;
        let intensity = total / area * 1000.0;
        let carbon = gas * 0.18 + elec * 0.011 + steam * 0.07;
        let temp = clamped_normal(
            &mut rng,
            11.0 + 9.0 * ((day as f64 / 365.0) * std::f64::consts::TAU).sin(),
            3.0,
            -10.0,
            35.0,
        );
        let efficiency = clamped_normal(&mut rng, 100.0 - intensity.min(80.0), 8.0, 5.0, 100.0);

        b.push_row(vec![
            btypes[bt].clone(),
            etypes[et].clone(),
            zones[zone].clone(),
            operators[operator].clone(),
            Value::Float(elec),
            Value::Float(gas),
            Value::Float(steam),
            Value::Float(chilled),
            Value::Float(solar),
            Value::Float(water),
            Value::Float(area),
            Value::Int(occupancy),
            Value::Float(intensity),
            Value::Float(elec * 0.11),
            Value::Float(gas * 0.05),
            Value::Float(steam * 0.07),
            Value::Float(water * 2.5),
            Value::Float(carbon),
            Value::Float(peak),
            Value::Float(base),
            Value::Float(hvac),
            Value::Float(lighting),
            Value::Float(plug),
            Value::Float(battery),
            Value::Float(temp),
            Value::Float(efficiency),
            Value::Int(epoch_at(day, hour * 3600)),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labs_use_more_energy_than_offices() {
        let t = generate(20_000, 21);
        let bt = t.column_by_name("building_type").unwrap();
        let elec = t.column_by_name("elec_kwh").unwrap();
        let mut lab = (0.0, 0usize);
        let mut office = (0.0, 0usize);
        for i in 0..t.row_count() {
            let e = elec.value(i).as_f64().unwrap();
            if bt.value(i) == Value::str("laboratory") {
                lab.0 += e;
                lab.1 += 1;
            } else if bt.value(i) == Value::str("office") {
                office.0 += e;
                office.1 += 1;
            }
        }
        assert!(lab.0 / lab.1 as f64 > office.0 / office.1 as f64 * 2.0);
    }

    #[test]
    fn solar_only_generates_in_daylight() {
        let t = generate(5_000, 22);
        let solar = t.column_by_name("solar_gen_kwh").unwrap();
        let ts = t.column_by_name("reading_ts").unwrap();
        for i in 0..t.row_count() {
            let hour = (ts.value(i).as_i64().unwrap() / 3600) % 24;
            if !(7..19).contains(&hour) {
                assert_eq!(solar.value(i).as_f64().unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn electric_subloads_sum_to_total() {
        let t = generate(2_000, 23);
        let elec = t.column_by_name("elec_kwh").unwrap();
        let hvac = t.column_by_name("hvac_kwh").unwrap();
        let light = t.column_by_name("lighting_kwh").unwrap();
        let plug = t.column_by_name("plug_load_kwh").unwrap();
        for i in (0..t.row_count()).step_by(53) {
            let total = elec.value(i).as_f64().unwrap();
            let parts = hvac.value(i).as_f64().unwrap()
                + light.value(i).as_f64().unwrap()
                + plug.value(i).as_f64().unwrap();
            assert!(parts <= total + 1e-9);
        }
    }
}
