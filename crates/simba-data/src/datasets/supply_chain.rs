//! Supply Chain dataset (strategic decision making; 5Q, 18C).
//!
//! Order logistics: products, shipping durations, modes, and costs, with
//! regional/categorical filters. Its 18 categorical columns make it the
//! widest filter surface of the six dashboards — the paper's Figure 7 shows
//! it (as "Superstore") producing the slowest, highest-variance queries.

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, epoch_at, weighted_pick, zipf_index};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0x5C_4A_11;

const CATEGORIES: [&str; 6] = [
    "furniture",
    "technology",
    "office_supplies",
    "apparel",
    "grocery",
    "outdoors",
];
const SUBCATS_PER_CAT: usize = 3; // 18 subcategories total
const REGIONS: [&str; 5] = ["north", "south", "east", "west", "central"];
const SHIP_MODES: [&str; 4] = ["standard", "second_class", "first_class", "same_day"];
const PRIORITIES: [&str; 4] = ["low", "medium", "high", "critical"];
const SEGMENTS: [&str; 3] = ["consumer", "corporate", "home_office"];
const STATUSES: [&str; 5] = ["pending", "processing", "shipped", "delivered", "returned"];
const PAYMENTS: [&str; 5] = ["card", "invoice", "transfer", "cash", "credit_line"];
const CHANNELS: [&str; 3] = ["online", "retail", "wholesale"];
const PACKAGING: [&str; 4] = ["box", "envelope", "pallet", "crate"];
const RETURN_FLAGS: [&str; 2] = ["kept", "returned"];

/// Schema: 18 categorical, 5 quantitative, 1 temporal column.
pub fn schema() -> Schema {
    Schema::new(
        "supply_chain",
        vec![
            ColumnDef::categorical("product_category"),
            ColumnDef::categorical("product_subcategory"),
            ColumnDef::categorical("brand"),
            ColumnDef::categorical("region"),
            ColumnDef::categorical("country"),
            ColumnDef::categorical("state"),
            ColumnDef::categorical("city"),
            ColumnDef::categorical("ship_mode"),
            ColumnDef::categorical("carrier"),
            ColumnDef::categorical("priority"),
            ColumnDef::categorical("segment"),
            ColumnDef::categorical("warehouse"),
            ColumnDef::categorical("supplier"),
            ColumnDef::categorical("order_status"),
            ColumnDef::categorical("return_flag"),
            ColumnDef::categorical("payment_method"),
            ColumnDef::categorical("sales_channel"),
            ColumnDef::categorical("packaging"),
            ColumnDef::quantitative_int("quantity"),
            ColumnDef::quantitative_float("unit_price"),
            ColumnDef::quantitative_float("discount"),
            ColumnDef::quantitative_float("shipping_cost"),
            ColumnDef::quantitative_float("total_revenue"),
            ColumnDef::temporal("order_date"),
        ],
    )
}

/// Generate `rows` order records, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let categories: Vec<Value> = CATEGORIES.iter().map(Value::str).collect();
    let subcats: Vec<Value> = (0..CATEGORIES.len() * SUBCATS_PER_CAT)
        .map(|i| {
            Value::from(format!(
                "{}_{}",
                CATEGORIES[i / SUBCATS_PER_CAT],
                i % SUBCATS_PER_CAT
            ))
        })
        .collect();
    let brands: Vec<Value> = (0..12)
        .map(|i| Value::from(format!("brand_{i:02}")))
        .collect();
    let regions: Vec<Value> = REGIONS.iter().map(Value::str).collect();
    let countries: Vec<Value> = (0..15)
        .map(|i| Value::from(format!("country_{i:02}")))
        .collect();
    let states: Vec<Value> = (0..30)
        .map(|i| Value::from(format!("state_{i:02}")))
        .collect();
    let cities: Vec<Value> = (0..50)
        .map(|i| Value::from(format!("city_{i:02}")))
        .collect();
    let ship_modes: Vec<Value> = SHIP_MODES.iter().map(Value::str).collect();
    let carriers: Vec<Value> = (0..6)
        .map(|i| Value::from(format!("carrier_{i}")))
        .collect();
    let priorities: Vec<Value> = PRIORITIES.iter().map(Value::str).collect();
    let segments: Vec<Value> = SEGMENTS.iter().map(Value::str).collect();
    let warehouses: Vec<Value> = (0..10).map(|i| Value::from(format!("wh_{i:02}"))).collect();
    let suppliers: Vec<Value> = (0..20)
        .map(|i| Value::from(format!("sup_{i:02}")))
        .collect();
    let statuses: Vec<Value> = STATUSES.iter().map(Value::str).collect();
    let return_flags: Vec<Value> = RETURN_FLAGS.iter().map(Value::str).collect();
    let payments: Vec<Value> = PAYMENTS.iter().map(Value::str).collect();
    let channels: Vec<Value> = CHANNELS.iter().map(Value::str).collect();
    let packaging: Vec<Value> = PACKAGING.iter().map(Value::str).collect();

    for _ in 0..ctx.len {
        let cat = zipf_index(&mut rng, CATEGORIES.len(), 0.7);
        let sub = cat * SUBCATS_PER_CAT + rng.gen_range(0..SUBCATS_PER_CAT);
        let region = rng.gen_range(0..REGIONS.len());
        let country = rng.gen_range(0..countries.len());
        let state = (country * 2 + rng.gen_range(0..2)) % states.len();
        let city = (state * 2 + rng.gen_range(0..3)) % cities.len();
        let ship_mode = *weighted_pick(&mut rng, &[0usize, 1, 2, 3], &[55.0, 22.0, 17.0, 6.0]);
        let status = *weighted_pick(
            &mut rng,
            &[0usize, 1, 2, 3, 4],
            &[6.0, 10.0, 22.0, 56.0, 6.0],
        );
        let returned = status == 4 || rng.gen_bool(0.02);

        let quantity = 1 + zipf_index(&mut rng, 10, 1.2) as i64;
        let unit_price = match cat {
            1 => clamped_normal(&mut rng, 420.0, 260.0, 15.0, 3500.0), // technology
            0 => clamped_normal(&mut rng, 210.0, 120.0, 25.0, 2000.0), // furniture
            _ => clamped_normal(&mut rng, 35.0, 22.0, 1.0, 400.0),
        };
        let discount = *weighted_pick(
            &mut rng,
            &[0.0f64, 0.05, 0.10, 0.20, 0.30],
            &[55.0, 15.0, 15.0, 10.0, 5.0],
        );
        let shipping = match ship_mode {
            3 => clamped_normal(&mut rng, 45.0, 12.0, 12.0, 150.0),
            2 => clamped_normal(&mut rng, 22.0, 7.0, 5.0, 80.0),
            1 => clamped_normal(&mut rng, 12.0, 4.0, 3.0, 50.0),
            _ => clamped_normal(&mut rng, 7.0, 3.0, 1.0, 30.0),
        };
        let revenue = quantity as f64 * unit_price * (1.0 - discount);
        let day = rng.gen_range(0i64..365);

        b.push_row(vec![
            categories[cat].clone(),
            subcats[sub].clone(),
            brands[zipf_index(&mut rng, brands.len(), 0.8)].clone(),
            regions[region].clone(),
            countries[country].clone(),
            states[state].clone(),
            cities[city].clone(),
            ship_modes[ship_mode].clone(),
            carriers[rng.gen_range(0..carriers.len())].clone(),
            priorities[zipf_index(&mut rng, PRIORITIES.len(), 0.6)].clone(),
            segments[zipf_index(&mut rng, SEGMENTS.len(), 0.4)].clone(),
            warehouses[rng.gen_range(0..warehouses.len())].clone(),
            suppliers[zipf_index(&mut rng, suppliers.len(), 0.5)].clone(),
            statuses[status].clone(),
            return_flags[usize::from(returned)].clone(),
            payments[zipf_index(&mut rng, PAYMENTS.len(), 0.7)].clone(),
            channels[zipf_index(&mut rng, CHANNELS.len(), 0.5)].clone(),
            packaging[rng.gen_range(0..PACKAGING.len())].clone(),
            Value::Int(quantity),
            Value::Float(unit_price),
            Value::Float(discount),
            Value::Float(shipping),
            Value::Float(revenue),
            Value::Int(epoch_at(day, rng.gen_range(0..86_400))),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_18_categoricals() {
        use simba_store::ColumnRole;
        assert_eq!(schema().role_count(ColumnRole::Categorical), 18);
        assert_eq!(schema().role_count(ColumnRole::Quantitative), 5);
    }

    #[test]
    fn revenue_consistent_with_parts() {
        let t = generate(2_000, 13);
        let q = t.column_by_name("quantity").unwrap();
        let p = t.column_by_name("unit_price").unwrap();
        let d = t.column_by_name("discount").unwrap();
        let r = t.column_by_name("total_revenue").unwrap();
        for i in (0..t.row_count()).step_by(37) {
            let expected = q.value(i).as_f64().unwrap()
                * p.value(i).as_f64().unwrap()
                * (1.0 - d.value(i).as_f64().unwrap());
            let got = r.value(i).as_f64().unwrap();
            assert!((expected - got).abs() < 1e-9);
        }
    }

    #[test]
    fn same_day_shipping_costs_most() {
        let t = generate(20_000, 14);
        let mode = t.column_by_name("ship_mode").unwrap();
        let cost = t.column_by_name("shipping_cost").unwrap();
        let mut sums = std::collections::HashMap::new();
        for i in 0..t.row_count() {
            let e = sums
                .entry(mode.value(i).to_string())
                .or_insert((0.0f64, 0usize));
            e.0 += cost.value(i).as_f64().unwrap();
            e.1 += 1;
        }
        let avg = |m: &str| sums[m].0 / sums[m].1 as f64;
        assert!(avg("same_day") > avg("standard") * 3.0);
    }

    #[test]
    fn returned_status_sets_return_flag() {
        let t = generate(5_000, 15);
        let status = t.column_by_name("order_status").unwrap();
        let flag = t.column_by_name("return_flag").unwrap();
        for i in 0..t.row_count() {
            if status.value(i) == Value::str("returned") {
                assert_eq!(flag.value(i), Value::str("returned"));
            }
        }
    }
}
