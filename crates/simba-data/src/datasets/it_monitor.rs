//! IT Monitor dataset (operational decision making; 3Q, 5C).
//!
//! System telemetry with injected anomalies — the paper's user study used
//! this dashboard, and its many filters made over-randomized simulations
//! easy to spot (§6.4). Anomalies (latency spikes, saturated hosts) give the
//! "in-depth examination of anomalies" workflow something real to find.

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, diurnal_intensity, epoch_at, weighted_pick, zipf_index};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0x17_40;

const DATACENTERS: [&str; 4] = ["us-east", "us-west", "eu-central", "ap-south"];
const SERVICES: [&str; 10] = [
    "auth",
    "billing",
    "search",
    "checkout",
    "inventory",
    "gateway",
    "notifications",
    "reports",
    "profiles",
    "recommendations",
];
const SEVERITIES: [&str; 4] = ["info", "warning", "error", "critical"];
const ALERT_TYPES: [&str; 6] = [
    "latency",
    "cpu",
    "memory",
    "disk",
    "network",
    "availability",
];
const N_HOSTS: usize = 40;

/// Schema: 5 categorical, 3 quantitative, 1 temporal column.
pub fn schema() -> Schema {
    Schema::new(
        "it_monitor",
        vec![
            ColumnDef::categorical("host"),
            ColumnDef::categorical("datacenter"),
            ColumnDef::categorical("service"),
            ColumnDef::categorical("severity"),
            ColumnDef::categorical("alert_type"),
            ColumnDef::quantitative_float("cpu_util"),
            ColumnDef::quantitative_float("memory_util"),
            ColumnDef::quantitative_float("response_ms"),
            ColumnDef::temporal("event_ts"),
        ],
    )
}

/// Generate `rows` telemetry records, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let hosts: Vec<Value> = (0..N_HOSTS)
        .map(|i| Value::from(format!("host-{i:03}")))
        .collect();
    let dcs: Vec<Value> = DATACENTERS.iter().map(Value::str).collect();
    let services: Vec<Value> = SERVICES.iter().map(Value::str).collect();
    let severities: Vec<Value> = SEVERITIES.iter().map(Value::str).collect();
    let alerts: Vec<Value> = ALERT_TYPES.iter().map(Value::str).collect();

    for _ in 0..ctx.len {
        let host = rng.gen_range(0..N_HOSTS);
        let dc = host % DATACENTERS.len();
        let service = zipf_index(&mut rng, SERVICES.len(), 0.6);
        let day = rng.gen_range(0i64..30);
        let hour = rng.gen_range(0i64..24);
        let load = diurnal_intensity(hour);

        // ~2% of records are anomalies: latency spike + error severity.
        let anomaly = rng.gen_bool(0.02);
        let cpu = if anomaly {
            clamped_normal(&mut rng, 92.0, 6.0, 50.0, 100.0)
        } else {
            clamped_normal(&mut rng, 25.0 + 40.0 * load, 12.0, 0.0, 100.0)
        };
        let mem = clamped_normal(&mut rng, 40.0 + 20.0 * load, 10.0, 0.0, 100.0);
        let response = if anomaly {
            clamped_normal(&mut rng, 2500.0, 900.0, 500.0, 10_000.0)
        } else {
            clamped_normal(&mut rng, 80.0 + 120.0 * load, 40.0, 1.0, 800.0)
        };
        let severity_idx = if anomaly {
            *weighted_pick(&mut rng, &[2usize, 3], &[60.0, 40.0])
        } else {
            *weighted_pick(&mut rng, &[0usize, 1, 2], &[80.0, 17.0, 3.0])
        };
        let alert_idx = if anomaly {
            0 // latency
        } else {
            zipf_index(&mut rng, ALERT_TYPES.len(), 0.5)
        };

        b.push_row(vec![
            hosts[host].clone(),
            dcs[dc].clone(),
            services[service].clone(),
            severities[severity_idx].clone(),
            alerts[alert_idx].clone(),
            Value::Float(cpu),
            Value::Float(mem),
            Value::Float(response),
            Value::Int(epoch_at(day, hour * 3600 + rng.gen_range(0..3600))),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomalies_exist_and_are_rare() {
        let t = generate(20_000, 4);
        let resp = t.column_by_name("response_ms").unwrap();
        let spikes = (0..t.row_count())
            .filter(|&i| resp.value(i).as_f64().unwrap() > 1000.0)
            .count();
        let frac = spikes as f64 / t.row_count() as f64;
        assert!(frac > 0.005 && frac < 0.05, "anomaly fraction {frac}");
    }

    #[test]
    fn critical_severity_only_on_anomalies() {
        let t = generate(20_000, 4);
        let sev = t.column_by_name("severity").unwrap();
        let resp = t.column_by_name("response_ms").unwrap();
        for i in 0..t.row_count() {
            if sev.value(i) == Value::str("critical") {
                assert!(resp.value(i).as_f64().unwrap() > 400.0);
            }
        }
    }

    #[test]
    fn hosts_pin_to_datacenters() {
        let t = generate(5_000, 6);
        let host = t.column_by_name("host").unwrap();
        let dc = t.column_by_name("datacenter").unwrap();
        let mut map = std::collections::HashMap::new();
        for i in 0..t.row_count() {
            let h = host.value(i).to_string();
            let d = dc.value(i).to_string();
            let prev = map.insert(h.clone(), d.clone());
            if let Some(p) = prev {
                assert_eq!(p, d, "host {h} moved datacenters");
            }
        }
    }
}
