//! Customer Service dataset (operational decision making; 10Q, 6C).
//!
//! The paper's running example (Figures 1–4): a call-center dashboard with
//! queues A–D, per-representative metrics, and call outcome tracking. Call
//! volume follows a diurnal curve; abandonment correlates with load and
//! queue (queue D is understaffed), reproducing the correlation the
//! "Finding Correlations" goal template looks for.

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, diurnal_intensity, epoch_at, weighted_pick, zipf_index};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0xC5_C5_C5;

const QUEUES: [&str; 4] = ["A", "B", "C", "D"];
const DIRECTIONS: [&str; 2] = ["incoming", "outgoing"];
const CALL_TYPES: [&str; 4] = ["support", "billing", "sales", "retention"];
const RESOLUTIONS: [&str; 3] = ["resolved", "escalated", "unresolved"];
const TIERS: [&str; 3] = ["bronze", "silver", "gold"];
const N_REPS: usize = 12;

/// Schema: 6 categorical, 10 quantitative, 2 temporal columns.
pub fn schema() -> Schema {
    Schema::new(
        "customer_service",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::categorical("rep_id"),
            ColumnDef::categorical("call_direction"),
            ColumnDef::categorical("call_type"),
            ColumnDef::categorical("resolution"),
            ColumnDef::categorical("customer_tier"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_int("abandoned"),
            ColumnDef::quantitative_int("lost_calls"),
            ColumnDef::quantitative_float("handle_time"),
            ColumnDef::quantitative_float("hold_time"),
            ColumnDef::quantitative_float("wait_time"),
            ColumnDef::quantitative_float("talk_time"),
            ColumnDef::quantitative_int("satisfaction"),
            ColumnDef::quantitative_int("transfers"),
            ColumnDef::quantitative_int("callbacks"),
            ColumnDef::temporal("hour"),
            ColumnDef::temporal("call_date"),
        ],
    )
}

/// Generate `rows` call records, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let queues: Vec<Value> = QUEUES.iter().map(Value::str).collect();
    let reps: Vec<Value> = (0..N_REPS)
        .map(|i| Value::from(format!("rep_{i:02}")))
        .collect();
    let directions: Vec<Value> = DIRECTIONS.iter().map(Value::str).collect();
    let call_types: Vec<Value> = CALL_TYPES.iter().map(Value::str).collect();
    let resolutions: Vec<Value> = RESOLUTIONS.iter().map(Value::str).collect();
    let tiers: Vec<Value> = TIERS.iter().map(Value::str).collect();

    for _ in 0..ctx.len {
        // Business-hours-weighted hour of day.
        let hour = loop {
            let h = rng.gen_range(0i64..24);
            if rng.gen_bool(diurnal_intensity(h)) {
                break h;
            }
        };
        let day = rng.gen_range(0i64..90);
        let load = diurnal_intensity(hour);

        let queue_idx = weighted_pick(&mut rng, &[0usize, 1, 2, 3], &[4.0, 3.0, 2.0, 1.0]);
        // Queue D is understaffed: higher abandonment under load.
        let queue_stress = match queue_idx {
            3 => 2.5,
            2 => 1.4,
            _ => 1.0,
        };
        let p_abandon = (0.03 + 0.10 * load) * queue_stress;
        let abandoned = i64::from(rng.gen_bool(p_abandon.min(0.9)));
        let lost = i64::from(abandoned == 0 && rng.gen_bool((0.01 + 0.03 * load) * queue_stress));

        let rep = zipf_index(&mut rng, N_REPS, 0.7);
        let wait = clamped_normal(
            &mut rng,
            30.0 + 240.0 * load * queue_stress,
            40.0,
            0.0,
            1800.0,
        );
        let hold = clamped_normal(&mut rng, 20.0 + 60.0 * load, 25.0, 0.0, 900.0);
        let talk = if abandoned == 1 {
            0.0
        } else {
            clamped_normal(&mut rng, 280.0, 120.0, 15.0, 2400.0)
        };
        let handle = wait + hold + talk;
        let satisfaction = if abandoned == 1 || lost == 1 {
            rng.gen_range(1i64..=2)
        } else {
            // Longer waits depress satisfaction.
            let base = 5.0 - (wait / 300.0).min(2.5);
            clamped_normal(&mut rng, base, 0.8, 1.0, 5.0).round() as i64
        };
        let transfers = weighted_pick(&mut rng, &[0i64, 1, 2, 3], &[75.0, 18.0, 5.0, 2.0]);
        let callbacks = i64::from(rng.gen_bool(0.08));
        let resolution_idx = if abandoned == 1 || lost == 1 {
            2
        } else {
            *weighted_pick(&mut rng, &[0usize, 1], &[85.0, 15.0])
        };

        b.push_row(vec![
            queues[*queue_idx].clone(),
            reps[rep].clone(),
            directions[usize::from(rng.gen_bool(0.25))].clone(),
            call_types[zipf_index(&mut rng, CALL_TYPES.len(), 0.8)].clone(),
            resolutions[resolution_idx].clone(),
            tiers[zipf_index(&mut rng, TIERS.len(), 0.5)].clone(),
            Value::Int(1), // calls: one record per call
            Value::Int(abandoned),
            Value::Int(lost),
            Value::Float(handle),
            Value::Float(hold),
            Value::Float(wait),
            Value::Float(talk),
            Value::Int(satisfaction),
            Value::Int(*transfers),
            Value::Int(callbacks),
            Value::Int(hour),
            Value::Int(epoch_at(day, hour * 3600)),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_are_skewed_a_heaviest() {
        let t = generate(5_000, 11);
        let col = t.column_by_name("queue").unwrap();
        let mut counts = std::collections::HashMap::new();
        for i in 0..t.row_count() {
            *counts.entry(col.value(i).to_string()).or_insert(0usize) += 1;
        }
        assert!(counts["A"] > counts["D"], "{counts:?}");
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn abandonment_correlates_with_hour_load() {
        // The "Finding Correlations" goal template (Table 2) must have a
        // real signal to find: busy hours abandon more often.
        let t = generate(20_000, 5);
        let hour = t.column_by_name("hour").unwrap();
        let abandoned = t.column_by_name("abandoned").unwrap();
        let (mut busy_n, mut busy_a, mut quiet_n, mut quiet_a) = (0f64, 0f64, 0f64, 0f64);
        for i in 0..t.row_count() {
            let h = hour.value(i).as_i64().unwrap();
            let a = abandoned.value(i).as_i64().unwrap() as f64;
            if (9..=16).contains(&h) {
                busy_n += 1.0;
                busy_a += a;
            } else if !(8..=17).contains(&h) {
                quiet_n += 1.0;
                quiet_a += a;
            }
        }
        assert!(
            busy_a / busy_n > quiet_a / quiet_n,
            "abandon rate should rise with load"
        );
    }

    #[test]
    fn abandoned_calls_have_zero_talk_time() {
        let t = generate(2_000, 3);
        let abandoned = t.column_by_name("abandoned").unwrap();
        let talk = t.column_by_name("talk_time").unwrap();
        for i in 0..t.row_count() {
            if abandoned.value(i) == Value::Int(1) {
                assert_eq!(talk.value(i), Value::Float(0.0));
            }
        }
    }

    #[test]
    fn satisfaction_in_range() {
        let t = generate(2_000, 9);
        let s = t.column_by_name("satisfaction").unwrap();
        for i in 0..t.row_count() {
            let v = s.value(i).as_i64().unwrap();
            assert!((1..=5).contains(&v), "satisfaction {v}");
        }
    }
}
