//! MyRide dataset (quantified self; 10Q, 3C).
//!
//! Cycling telemetry along a route in Orlando, FL: heart rate tracks power
//! and gradient, speed falls on climbs. The paper notes this dashboard has
//! few categorical columns, making it incompatible with correlation-heavy
//! workflows (§6.2.3) — the schema reproduces that property.

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, epoch_at, weighted_pick};
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0x000D_E440;

const SEGMENTS: [&str; 12] = [
    "lake_eola",
    "downtown",
    "milk_district",
    "colonial_east",
    "baldwin_park",
    "cady_way",
    "winter_park",
    "mead_garden",
    "orange_ave",
    "college_park",
    "packing_district",
    "lake_ivanhoe",
];
const TERRAIN: [&str; 4] = ["flat", "rolling", "climb", "descent"];
const WEATHER: [&str; 4] = ["clear", "humid", "rain", "windy"];

/// Schema: 3 categorical, 10 quantitative, 1 temporal column.
pub fn schema() -> Schema {
    Schema::new(
        "my_ride",
        vec![
            ColumnDef::categorical("route_segment"),
            ColumnDef::categorical("terrain"),
            ColumnDef::categorical("weather"),
            ColumnDef::quantitative_int("heart_rate"),
            ColumnDef::quantitative_float("speed_kmh"),
            ColumnDef::quantitative_int("cadence_rpm"),
            ColumnDef::quantitative_float("power_w"),
            ColumnDef::quantitative_float("elevation_m"),
            ColumnDef::quantitative_float("gradient_pct"),
            ColumnDef::quantitative_float("temperature_c"),
            ColumnDef::quantitative_float("distance_km"),
            ColumnDef::quantitative_float("calories"),
            ColumnDef::quantitative_float("humidity_pct"),
            ColumnDef::temporal("sample_ts"),
        ],
    )
}

/// Generate `rows` telemetry samples, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
///
/// Row-position effects (route progression, distance, timestamps, the
/// slowly shifting weather) derive from the *global* row index in
/// [`ChunkCtx`], not from RNG state, so they are chunk-independent by
/// construction.
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let rows = ctx.total_rows;
    let segments: Vec<Value> = SEGMENTS.iter().map(Value::str).collect();
    let terrain: Vec<Value> = TERRAIN.iter().map(Value::str).collect();
    let weather: Vec<Value> = WEATHER.iter().map(Value::str).collect();

    for i in ctx.start..ctx.start + ctx.len {
        // Samples progress along the route: segment advances with the row.
        let seg = (i * SEGMENTS.len() / rows.max(1)).min(SEGMENTS.len() - 1);
        let ter = *weighted_pick(rng, &[0usize, 1, 2, 3], &[55.0, 25.0, 12.0, 8.0]);
        let wea = (ctx.seed as usize + i / 5000) % WEATHER.len(); // weather shifts slowly
        let gradient: f64 = match ter {
            0 => clamped_normal(&mut rng, 0.0, 0.5, -1.0, 1.0),
            1 => clamped_normal(&mut rng, 1.0, 1.5, -3.0, 4.0),
            2 => clamped_normal(&mut rng, 5.0, 2.0, 2.0, 12.0),
            _ => clamped_normal(&mut rng, -4.5, 1.5, -10.0, -2.0),
        };
        let power = clamped_normal(&mut rng, 180.0 + 22.0 * gradient.max(0.0), 35.0, 0.0, 900.0);
        let heart = clamped_normal(&mut rng, 105.0 + power * 0.28, 8.0, 55.0, 200.0).round() as i64;
        let speed = clamped_normal(&mut rng, 27.0 - 2.2 * gradient, 3.0, 2.0, 70.0);
        let cadence = clamped_normal(&mut rng, 85.0 - gradient.max(0.0) * 2.0, 7.0, 30.0, 130.0)
            .round() as i64;
        let distance = 40.0 * i as f64 / rows.max(1) as f64;
        let elevation = 25.0 + 15.0 * (distance / 6.0).sin() + gradient * 2.0;
        let temp = clamped_normal(&mut rng, 29.0, 2.0, 18.0, 38.0);
        let humidity = clamped_normal(
            &mut rng,
            if wea == 1 { 85.0 } else { 62.0 },
            8.0,
            20.0,
            100.0,
        );
        let calories = power * 3.6 / 4.184 * 0.24; // rough kcal per sample window

        b.push_row(vec![
            segments[seg].clone(),
            terrain[ter].clone(),
            weather[wea].clone(),
            Value::Int(heart),
            Value::Float(speed),
            Value::Int(cadence),
            Value::Float(power),
            Value::Float(elevation),
            Value::Float(gradient),
            Value::Float(temp),
            Value::Float(distance),
            Value::Float(calories),
            Value::Float(humidity),
            Value::Int(epoch_at(10, 7 * 3600 + i as i64)),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heart_rate_tracks_power() {
        let t = generate(10_000, 8);
        let hr = t.column_by_name("heart_rate").unwrap();
        let pw = t.column_by_name("power_w").unwrap();
        let (mut hi_hr, mut hi_n, mut lo_hr, mut lo_n) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..t.row_count() {
            let p = pw.value(i).as_f64().unwrap();
            let h = hr.value(i).as_f64().unwrap();
            if p > 250.0 {
                hi_hr += h;
                hi_n += 1.0;
            } else if p < 120.0 {
                lo_hr += h;
                lo_n += 1.0;
            }
        }
        assert!(
            hi_hr / hi_n > lo_hr / lo_n + 15.0,
            "heart rate should track power"
        );
    }

    #[test]
    fn climbs_are_slower() {
        let t = generate(10_000, 8);
        let ter = t.column_by_name("terrain").unwrap();
        let sp = t.column_by_name("speed_kmh").unwrap();
        let (mut climb, mut cn, mut flat, mut fnn) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..t.row_count() {
            let s = sp.value(i).as_f64().unwrap();
            if ter.value(i) == Value::str("climb") {
                climb += s;
                cn += 1.0;
            } else if ter.value(i) == Value::str("flat") {
                flat += s;
                fnn += 1.0;
            }
        }
        assert!(climb / cn < flat / fnn);
    }

    #[test]
    fn distance_monotonically_increases() {
        let t = generate(1_000, 2);
        let d = t.column_by_name("distance_km").unwrap();
        let mut prev = -1.0;
        for i in 0..t.row_count() {
            let v = d.value(i).as_f64().unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }
}
