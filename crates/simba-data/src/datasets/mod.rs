//! The six dashboard datasets (§6.1, Figure 6 of the paper).
//!
//! Each module reconstructs one dashboard's denormalized dataset with the
//! paper's quantitative (Q) / categorical (C) column counts:
//!
//! | Dataset | Dashboard type | Q | C |
//! |---|---|---|---|
//! | Circulation Activity | strategic decision making | 2 | 2 |
//! | Supply Chain | strategic decision making | 5 | 18 |
//! | UBC Energy Map | strategic decision making | 22 | 4 |
//! | MyRide | quantified self | 10 | 3 |
//! | IT Monitor | operational decision making | 3 | 5 |
//! | Customer Service | operational decision making | 10 | 6 |

pub mod circulation;
pub mod customer_service;
pub mod it_monitor;
pub mod my_ride;
pub mod supply_chain;
pub mod ubc_energy;

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use rand_chacha::ChaCha8Rng;
use simba_store::{Schema, Table, TableBuilder};

/// Identifier for one of the six built-in dashboard datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DashboardDataset {
    /// Circulation Activity by Library (strategic; 2Q, 2C).
    CirculationActivity,
    /// Supply Chain / "Superstore" (strategic; 5Q, 18C).
    SupplyChain,
    /// UBC Energy Map (strategic; 22Q, 4C).
    UbcEnergy,
    /// MyRide cycling telemetry (quantified self; 10Q, 3C).
    MyRide,
    /// IT Monitor system telemetry (operational; 3Q, 5C).
    ItMonitor,
    /// Customer Service call center — the paper's running example
    /// (operational; 10Q, 6C).
    CustomerService,
}

impl DashboardDataset {
    /// All six datasets, in the paper's presentation order (Figure 6).
    pub const ALL: [DashboardDataset; 6] = [
        DashboardDataset::CirculationActivity,
        DashboardDataset::SupplyChain,
        DashboardDataset::UbcEnergy,
        DashboardDataset::MyRide,
        DashboardDataset::ItMonitor,
        DashboardDataset::CustomerService,
    ];

    /// SQL table name.
    pub fn table_name(self) -> &'static str {
        match self {
            DashboardDataset::CirculationActivity => "circulation_activity",
            DashboardDataset::SupplyChain => "supply_chain",
            DashboardDataset::UbcEnergy => "ubc_energy",
            DashboardDataset::MyRide => "my_ride",
            DashboardDataset::ItMonitor => "it_monitor",
            DashboardDataset::CustomerService => "customer_service",
        }
    }

    /// Human-readable dashboard title.
    pub fn title(self) -> &'static str {
        match self {
            DashboardDataset::CirculationActivity => "Circulation Activity by Library",
            DashboardDataset::SupplyChain => "Supply Chain",
            DashboardDataset::UbcEnergy => "UBC Energy Map",
            DashboardDataset::MyRide => "MyRide",
            DashboardDataset::ItMonitor => "IT Monitor",
            DashboardDataset::CustomerService => "Customer Service",
        }
    }

    /// Parse a table name.
    pub fn from_table_name(name: &str) -> Option<DashboardDataset> {
        Self::ALL
            .into_iter()
            .find(|d| d.table_name().eq_ignore_ascii_case(name))
    }

    /// Schema of the dataset.
    pub fn schema(self) -> Schema {
        match self {
            DashboardDataset::CirculationActivity => circulation::schema(),
            DashboardDataset::SupplyChain => supply_chain::schema(),
            DashboardDataset::UbcEnergy => ubc_energy::schema(),
            DashboardDataset::MyRide => my_ride::schema(),
            DashboardDataset::ItMonitor => it_monitor::schema(),
            DashboardDataset::CustomerService => customer_service::schema(),
        }
    }

    /// Generate `rows` rows deterministically from `seed`, chunk-parallel
    /// across all available cores.
    ///
    /// The output is a pure function of `(self, rows, seed)` — see
    /// [`generate_rows_with_threads`](Self::generate_rows_with_threads).
    pub fn generate_rows(self, rows: usize, seed: u64) -> Table {
        self.generate_rows_with_threads(rows, seed, 0)
    }

    /// [`generate_rows`](Self::generate_rows) at an explicit generation
    /// thread count (`0` = one worker per available core).
    ///
    /// The thread count only affects wall-clock time: the same
    /// `(dataset, rows, seed)` triple yields a byte-identical [`Table`] at
    /// any thread count, because every [`CHUNK_ROWS`]-row chunk draws from
    /// an independent RNG derived as
    /// [`chunk_seed`](crate::chunk::chunk_seed)`(seed ^ salt, chunk_index)`
    /// and chunks are merged in index order.
    pub fn generate_rows_with_threads(self, rows: usize, seed: u64, threads: usize) -> Table {
        generate_chunked(
            self.schema(),
            rows,
            seed,
            self.chunk_salt(),
            threads,
            CHUNK_ROWS,
            |rng, ctx, b| self.fill_chunk(rng, ctx, b),
        )
    }

    /// The dataset's seed salt: folded into the master seed so the six
    /// datasets draw disjoint RNG streams from one `SIMBA_SEED`.
    pub fn chunk_salt(self) -> u64 {
        match self {
            DashboardDataset::CirculationActivity => circulation::SALT,
            DashboardDataset::SupplyChain => supply_chain::SALT,
            DashboardDataset::UbcEnergy => ubc_energy::SALT,
            DashboardDataset::MyRide => my_ride::SALT,
            DashboardDataset::ItMonitor => it_monitor::SALT,
            DashboardDataset::CustomerService => customer_service::SALT,
        }
    }

    /// Fill one generation chunk of this dataset (the [`crate::chunk`]
    /// contract: push exactly `ctx.len` rows derived only from `rng` and
    /// `ctx`).
    pub fn fill_chunk(self, rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
        match self {
            DashboardDataset::CirculationActivity => circulation::fill_chunk(rng, ctx, b),
            DashboardDataset::SupplyChain => supply_chain::fill_chunk(rng, ctx, b),
            DashboardDataset::UbcEnergy => ubc_energy::fill_chunk(rng, ctx, b),
            DashboardDataset::MyRide => my_ride::fill_chunk(rng, ctx, b),
            DashboardDataset::ItMonitor => it_monitor::fill_chunk(rng, ctx, b),
            DashboardDataset::CustomerService => customer_service::fill_chunk(rng, ctx, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::ColumnRole;

    #[test]
    fn role_counts_match_figure_6() {
        // (dataset, Q, C) from Figure 6 of the paper.
        let expected = [
            (DashboardDataset::CirculationActivity, 2, 2),
            (DashboardDataset::SupplyChain, 5, 18),
            (DashboardDataset::UbcEnergy, 22, 4),
            (DashboardDataset::MyRide, 10, 3),
            (DashboardDataset::ItMonitor, 3, 5),
            (DashboardDataset::CustomerService, 10, 6),
        ];
        for (ds, q, c) in expected {
            let schema = ds.schema();
            assert_eq!(
                schema.role_count(ColumnRole::Quantitative),
                q,
                "{} quantitative count",
                ds.title()
            );
            assert_eq!(
                schema.role_count(ColumnRole::Categorical),
                c,
                "{} categorical count",
                ds.title()
            );
            assert!(
                schema.role_count(ColumnRole::Temporal) >= 1,
                "{} temporal",
                ds.title()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in DashboardDataset::ALL {
            let a = ds.generate_rows(500, 7);
            let b = ds.generate_rows(500, 7);
            assert_eq!(a.row_count(), 500);
            for col in 0..a.schema().width() {
                for row in (0..500).step_by(97) {
                    assert_eq!(a.value(row, col), b.value(row, col), "{}", ds.title());
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DashboardDataset::CustomerService.generate_rows(200, 1);
        let b = DashboardDataset::CustomerService.generate_rows(200, 2);
        let mut differs = false;
        for col in 0..a.schema().width() {
            for row in 0..200 {
                if a.value(row, col) != b.value(row, col) {
                    differs = true;
                }
            }
        }
        assert!(differs);
    }

    #[test]
    fn table_names_round_trip() {
        for ds in DashboardDataset::ALL {
            assert_eq!(DashboardDataset::from_table_name(ds.table_name()), Some(ds));
        }
        assert_eq!(DashboardDataset::from_table_name("nope"), None);
    }

    #[test]
    fn schemas_match_generated_tables() {
        for ds in DashboardDataset::ALL {
            let t = ds.generate_rows(50, 3);
            assert_eq!(t.schema(), &ds.schema(), "{}", ds.title());
            assert_eq!(t.name(), ds.table_name());
        }
    }
}
