//! Circulation Activity by Library dataset (strategic; 2Q, 2C).
//!
//! Library circulation events system-wide and per branch. The paper notes
//! this dashboard has only two visualizations with near-identical queries,
//! which is why its query durations show almost no variance (§6.3).

use crate::chunk::{generate_chunked, ChunkCtx, CHUNK_ROWS};
use crate::util::{clamped_normal, epoch_at, weighted_pick, zipf_index};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};

/// Per-dataset seed salt: distinct datasets draw disjoint RNG streams from
/// one master seed.
pub(crate) const SALT: u64 = 0xC1_8C;

const BRANCHES: [&str; 8] = [
    "Central",
    "Eastside",
    "Westwood",
    "Northgate",
    "Southpark",
    "Riverside",
    "Hilltop",
    "Lakeview",
];
const EVENT_TYPES: [&str; 4] = ["checkout", "renewal", "return", "hold"];

/// Schema: 2 categorical, 2 quantitative, 1 temporal column.
pub fn schema() -> Schema {
    Schema::new(
        "circulation_activity",
        vec![
            ColumnDef::categorical("branch"),
            ColumnDef::categorical("event_type"),
            ColumnDef::quantitative_int("circulation_count"),
            ColumnDef::quantitative_float("wait_days"),
            ColumnDef::temporal("event_date"),
        ],
    )
}

/// Generate `rows` circulation events, chunk-parallel across all cores.
pub fn generate(rows: usize, seed: u64) -> Table {
    generate_chunked(schema(), rows, seed, SALT, 0, CHUNK_ROWS, fill_chunk)
}

/// Fill one generation chunk (see [`crate::chunk`] for the contract).
pub(crate) fn fill_chunk(mut rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
    let branches: Vec<Value> = BRANCHES.iter().map(Value::str).collect();
    let event_types: Vec<Value> = EVENT_TYPES.iter().map(Value::str).collect();

    for _ in 0..ctx.len {
        let branch = zipf_index(&mut rng, BRANCHES.len(), 0.9);
        let event = *weighted_pick(&mut rng, &[0usize, 1, 2, 3], &[45.0, 15.0, 32.0, 8.0]);
        let day = rng.gen_range(0i64..365);
        // Central branch moves more volume per event batch.
        let base = if branch == 0 { 14.0 } else { 6.0 };
        let count = clamped_normal(&mut rng, base, 4.0, 1.0, 80.0).round() as i64;
        let wait = if event == 3 {
            clamped_normal(&mut rng, 12.0, 8.0, 0.0, 120.0)
        } else {
            clamped_normal(&mut rng, 0.5, 0.6, 0.0, 10.0)
        };
        b.push_row(vec![
            branches[branch].clone(),
            event_types[event].clone(),
            Value::Int(count),
            Value::Float(wait),
            Value::Int(epoch_at(day, rng.gen_range(8 * 3600..20 * 3600))),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_branches_and_events_appear() {
        let t = generate(5_000, 1);
        let branch = t.column_by_name("branch").unwrap();
        let event = t.column_by_name("event_type").unwrap();
        assert_eq!(branch.distinct_values().len(), 8);
        assert_eq!(event.distinct_values().len(), 4);
    }

    #[test]
    fn holds_wait_longer() {
        let t = generate(10_000, 2);
        let event = t.column_by_name("event_type").unwrap();
        let wait = t.column_by_name("wait_days").unwrap();
        let (mut hold_sum, mut hold_n, mut other_sum, mut other_n) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..t.row_count() {
            let w = wait.value(i).as_f64().unwrap();
            if event.value(i) == Value::str("hold") {
                hold_sum += w;
                hold_n += 1.0;
            } else {
                other_sum += w;
                other_n += 1.0;
            }
        }
        assert!(hold_sum / hold_n > other_sum / other_n * 3.0);
    }

    #[test]
    fn counts_positive() {
        let t = generate(1_000, 3);
        let c = t.column_by_name("circulation_count").unwrap();
        for i in 0..t.row_count() {
            assert!(c.value(i).as_i64().unwrap() >= 1);
        }
    }
}
