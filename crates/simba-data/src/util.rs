//! Random-generation helpers shared by the dataset generators.

use rand::Rng;

/// Pick from `items` with the given relative weights (not necessarily
/// normalized). Deterministic given the RNG state.
pub fn weighted_pick<'a, T, R: Rng>(rng: &mut R, items: &'a [T], weights: &[f64]) -> &'a T {
    debug_assert_eq!(items.len(), weights.len());
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (item, w) in items.iter().zip(weights) {
        if x < *w {
            return item;
        }
        x -= w;
    }
    items.last().expect("non-empty items")
}

/// Zipf-like skewed index in `0..n`: index `i` has weight `1/(i+1)^s`.
pub fn zipf_index<R: Rng>(rng: &mut R, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).sum();
    let mut x = rng.gen_range(0.0..total);
    for i in 0..n {
        let w = 1.0 / ((i + 1) as f64).powf(s);
        if x < w {
            return i;
        }
        x -= w;
    }
    n - 1
}

/// Sample from a normal distribution via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Normal sample clamped to a range.
pub fn clamped_normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// A diurnal intensity in `[0, 1]` peaking mid-day (used for call volumes,
/// ride telemetry, energy usage...).
pub fn diurnal_intensity(hour: i64) -> f64 {
    let h = hour as f64;
    // Two-peak business-day curve: ramp 8-11, lunch dip, ramp 13-16.
    let morning = (-((h - 10.0) * (h - 10.0)) / 8.0).exp();
    let afternoon = (-((h - 15.0) * (h - 15.0)) / 10.0).exp();
    (0.15 + 0.85 * morning.max(afternoon)).min(1.0)
}

/// Epoch seconds for a timestamp `day` days and `secs` seconds after the
/// base date 2021-01-01 00:00:00 UTC.
pub fn epoch_at(day: i64, secs: i64) -> i64 {
    const BASE: i64 = 1_609_459_200; // 2021-01-01T00:00:00Z
    BASE + day * 86_400 + secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = rng();
        let items = ["common", "rare"];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            let pick = weighted_pick(&mut r, &items, &[9.0, 1.0]);
            counts[items.iter().position(|i| i == pick).unwrap()] += 1;
        }
        assert!(counts[0] > 8_000 && counts[0] < 9_800, "{counts:?}");
    }

    #[test]
    fn zipf_skews_to_low_indices() {
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut r, 10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{counts:?}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn clamped_normal_stays_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = clamped_normal(&mut r, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn diurnal_peaks_midday() {
        assert!(diurnal_intensity(10) > diurnal_intensity(3));
        assert!(diurnal_intensity(15) > diurnal_intensity(22));
        for h in 0..24 {
            let v = diurnal_intensity(h);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn epoch_at_base() {
        assert_eq!(epoch_at(0, 0), 1_609_459_200);
        assert_eq!(epoch_at(1, 3600), 1_609_459_200 + 86_400 + 3_600);
    }
}
