//! Dataset size presets (Table 3 of the paper).

/// The paper's three dataset sizes plus a tiny preset for unit tests and a
/// small default used when running the harness on a laptop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetSize {
    /// 10K rows — test fixture scale, not part of the paper's grid.
    Tiny,
    /// 100K rows.
    Small,
    /// 1M rows.
    Medium,
    /// 10M rows.
    Large,
}

impl DatasetSize {
    /// The paper's experiment grid (Table 3).
    pub const PAPER_GRID: [DatasetSize; 3] =
        [DatasetSize::Small, DatasetSize::Medium, DatasetSize::Large];

    /// Number of rows this size denotes.
    pub fn row_count(self) -> usize {
        match self {
            DatasetSize::Tiny => 10_000,
            DatasetSize::Small => 100_000,
            DatasetSize::Medium => 1_000_000,
            DatasetSize::Large => 10_000_000,
        }
    }

    /// Label used in reports ("100K Rows").
    pub fn label(self) -> &'static str {
        match self {
            DatasetSize::Tiny => "10K",
            DatasetSize::Small => "100K",
            DatasetSize::Medium => "1M",
            DatasetSize::Large => "10M",
        }
    }

    /// Parse a label like "100k" or "10M".
    pub fn from_label(label: &str) -> Option<DatasetSize> {
        match label.to_ascii_uppercase().as_str() {
            "10K" => Some(DatasetSize::Tiny),
            "100K" => Some(DatasetSize::Small),
            "1M" => Some(DatasetSize::Medium),
            "10M" => Some(DatasetSize::Large),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_match_paper() {
        assert_eq!(DatasetSize::Small.row_count(), 100_000);
        assert_eq!(DatasetSize::Medium.row_count(), 1_000_000);
        assert_eq!(DatasetSize::Large.row_count(), 10_000_000);
    }

    #[test]
    fn labels_round_trip() {
        for s in [
            DatasetSize::Tiny,
            DatasetSize::Small,
            DatasetSize::Medium,
            DatasetSize::Large,
        ] {
            assert_eq!(DatasetSize::from_label(s.label()), Some(s));
        }
        assert_eq!(DatasetSize::from_label("2G"), None);
    }

    #[test]
    fn paper_grid_excludes_tiny() {
        assert!(!DatasetSize::PAPER_GRID.contains(&DatasetSize::Tiny));
    }
}
