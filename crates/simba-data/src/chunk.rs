//! Chunk-deterministic, morsel-parallel dataset generation.
//!
//! The paper's experiment grid runs every dataset at up to 10M rows, and a
//! single-threaded row loop makes that tier the dominant wall-clock cost of
//! every shootout. This module splits generation into fixed-size chunks of
//! [`CHUNK_ROWS`] rows, each driven by an **independent** RNG derived as
//!
//! ```text
//! chunk_rng(i) = ChaCha8Rng::seed_from_u64(master ^ splitmix64(i))
//! ```
//!
//! so chunks can be generated on any number of worker threads, in any
//! scheduling order, and the assembled table is *byte-identical* for a
//! given `(dataset, rows, seed)` triple — the merge
//! ([`simba_store::TableAssembler`]) consumes chunks strictly in index
//! order, remapping dictionary codes and concatenating the zone maps each
//! worker computed for its own rows. Zone maps therefore come out of
//! generation already built; the first scan never pays the lazy build.
//!
//! The chunk size is part of the determinism contract: the same triple
//! generated under a different `chunk_rows` yields *different* (equally
//! valid) data, because rows map to different RNG streams. All public
//! entry points use [`CHUNK_ROWS`]; tests exercise other sizes through
//! [`generate_chunked`] directly.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simba_store::{Schema, Table, TableAssembler, TableBuilder, TableChunk, MORSEL_ROWS};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Rows per generation chunk: 32 zone-map morsels. Large enough that
/// per-chunk setup (RNG seeding, lookup-table construction) is noise,
/// small enough that a 10M-row table yields ~150 chunks to parallelize
/// over.
pub const CHUNK_ROWS: usize = 32 * MORSEL_ROWS;

/// SplitMix64 finalizer — the same bijective scrambler the session layer
/// uses (`simba_core::session::batch::splitmix`), duplicated here because
/// the dependency points the other way. Decorrelates the RNG streams of
/// nearby chunk indices.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of chunk `chunk_index`'s RNG, derived from the (salted) master
/// seed. This is the determinism contract's seed-derivation rule: plain
/// XOR against a scrambled index keeps distinct masters distinct while
/// giving every chunk a decorrelated stream.
pub fn chunk_seed(master: u64, chunk_index: u64) -> u64 {
    master ^ splitmix64(chunk_index)
}

/// Everything a chunk generator may condition on besides its private RNG.
///
/// Generators must derive each row purely from the RNG and this context —
/// never from state carried across chunks — or chunk independence (and
/// with it thread-count invariance) breaks.
#[derive(Debug, Clone, Copy)]
pub struct ChunkCtx {
    /// Global index of the chunk's first row.
    pub start: usize,
    /// Rows in this chunk (`CHUNK_ROWS` except possibly the last chunk).
    pub len: usize,
    /// Total rows of the table being generated (for row-position effects
    /// like route progression).
    pub total_rows: usize,
    /// The caller's unsalted master seed (for slow-varying state keyed on
    /// the seed itself, e.g. MyRide's weather).
    pub seed: u64,
}

/// Generate a table by filling fixed-size chunks on `threads` worker
/// threads and merging them in chunk order.
///
/// * `seed` is the caller's master seed; `salt` is the per-dataset
///   constant folded into it before chunk-seed derivation (so different
///   datasets draw disjoint streams from one master seed).
/// * `threads == 0` means one worker per available core.
/// * `chunk_rows` must be a positive multiple of
///   [`MORSEL_ROWS`] so each chunk's eagerly
///   computed zone maps land on the table-wide morsel grid.
/// * `fill` receives a chunk-private RNG already seeded by
///   [`chunk_seed`], the chunk's [`ChunkCtx`], and a row builder holding
///   exactly `ctx.len` rows' capacity; it must push exactly `ctx.len`
///   rows.
///
/// The output is byte-identical for the same
/// `(schema, rows, seed, salt, chunk_rows, fill)` at **any** thread
/// count.
pub fn generate_chunked<F>(
    schema: Schema,
    rows: usize,
    seed: u64,
    salt: u64,
    threads: usize,
    chunk_rows: usize,
    fill: F,
) -> Table
where
    F: Fn(&mut ChaCha8Rng, &ChunkCtx, &mut TableBuilder) + Sync,
{
    assert!(
        chunk_rows > 0 && chunk_rows.is_multiple_of(MORSEL_ROWS),
        "chunk_rows must be a positive multiple of MORSEL_ROWS"
    );
    let n_chunks = rows.div_ceil(chunk_rows);
    let master = seed ^ salt;

    let build_chunk = |index: usize| -> TableChunk {
        let _p = simba_obs::phase!("data.chunk", "data", "data.phase.chunk");
        simba_obs::counter!("data.chunks").add(1);
        let start = index * chunk_rows;
        let ctx = ChunkCtx {
            start,
            len: chunk_rows.min(rows - start),
            total_rows: rows,
            seed,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(chunk_seed(master, index as u64));
        let mut builder = TableBuilder::new(schema.clone(), ctx.len);
        fill(&mut rng, &ctx, &mut builder);
        assert_eq!(builder.len(), ctx.len, "fill pushed a wrong row count");
        TableChunk::new(builder.finish_parts().1)
    };

    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    let workers = threads.min(n_chunks);

    let mut assembler = TableAssembler::new(schema.clone(), rows);
    if workers <= 1 {
        let _p = simba_obs::phase!("data.assemble", "data", "data.phase.assemble");
        for index in 0..n_chunks {
            assembler.append_chunk(build_chunk(index));
        }
        return assembler.finish();
    }

    // Workers pull chunk indices from a shared counter and park finished
    // chunks in their slot; the merge (cheap memcpy-scale work) runs on
    // this thread, consuming slots strictly in index order as they fill.
    // A worker may only *build* a chunk while it is within `window` of the
    // merge frontier, so at most ~2×workers chunks are ever resident
    // beyond the assembled table — without the backpressure, one slow
    // worker on an early chunk would let the rest park the entire table
    // in slots.
    struct MergeState {
        slots: Vec<Option<TableChunk>>,
        /// Index one past the last chunk the merge has consumed.
        merged: usize,
        /// Set when either side dies, so the other fails fast instead of
        /// waiting forever on a condition that can never become true.
        aborted: bool,
    }
    let state = Mutex::new(MergeState {
        slots: (0..n_chunks).map(|_| None).collect(),
        merged: 0,
        aborted: false,
    });
    let ready = Condvar::new();
    let next = AtomicUsize::new(0);
    let window = 2 * workers;

    /// Flags the shared state on unwind; without this a panicking worker
    /// would leave its claimed slot empty and deadlock the merge (or a
    /// panicking merge would strand workers on the backpressure wait).
    struct PanicSignal<'a> {
        state: &'a Mutex<MergeState>,
        ready: &'a Condvar,
    }
    impl Drop for PanicSignal<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                if let Ok(mut guard) = self.state.lock() {
                    guard.aborted = true;
                }
                self.ready.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _signal = PanicSignal {
                    state: &state,
                    ready: &ready,
                };
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n_chunks {
                        break;
                    }
                    {
                        // Backpressure: stay within `window` of the merge.
                        let mut guard = state.lock().expect("merge thread panicked");
                        while !guard.aborted && index >= guard.merged + window {
                            guard = ready.wait(guard).expect("merge thread panicked");
                        }
                        if guard.aborted {
                            break;
                        }
                    }
                    let chunk = build_chunk(index);
                    let mut guard = state.lock().expect("merge thread panicked");
                    guard.slots[index] = Some(chunk);
                    ready.notify_all();
                }
            });
        }
        let _signal = PanicSignal {
            state: &state,
            ready: &ready,
        };
        // Spans the whole in-order merge, including waits on the frontier
        // chunk — stall time here means a slow worker, not slow appends.
        let _p = simba_obs::phase!("data.assemble", "data", "data.phase.assemble");
        for index in 0..n_chunks {
            let chunk = {
                let mut guard = state.lock().expect("generator worker panicked");
                loop {
                    assert!(
                        !guard.aborted,
                        "a generation worker panicked; aborting the merge"
                    );
                    match guard.slots[index].take() {
                        Some(chunk) => {
                            guard.merged = index + 1;
                            ready.notify_all();
                            break chunk;
                        }
                        None => guard = ready.wait(guard).expect("generator worker panicked"),
                    }
                }
            };
            assembler.append_chunk(chunk);
        }
        assembler.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::{ColumnDef, Value};

    fn toy_schema() -> Schema {
        Schema::new(
            "toy",
            vec![
                ColumnDef::categorical("label"),
                ColumnDef::quantitative_int("x"),
            ],
        )
    }

    fn toy_fill(rng: &mut ChaCha8Rng, ctx: &ChunkCtx, b: &mut TableBuilder) {
        use rand::Rng;
        for i in ctx.start..ctx.start + ctx.len {
            b.push_row(vec![
                Value::str(format!("l{}", rng.gen_range(0..5))),
                Value::Int(i as i64 + rng.gen_range(0..100)),
            ]);
        }
    }

    fn toy_table(rows: usize, seed: u64, threads: usize, chunk_rows: usize) -> Table {
        generate_chunked(
            toy_schema(),
            rows,
            seed,
            0x70_71,
            threads,
            chunk_rows,
            toy_fill,
        )
    }

    #[test]
    fn thread_count_does_not_change_bytes() {
        let rows = 2 * MORSEL_ROWS + 17;
        let reference = toy_table(rows, 9, 1, MORSEL_ROWS);
        for threads in [2, 3, 8] {
            assert!(
                toy_table(rows, 9, threads, MORSEL_ROWS).bitwise_eq(&reference),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn seeds_and_chunk_sizes_are_part_of_the_contract() {
        let rows = MORSEL_ROWS + 1;
        let base = toy_table(rows, 1, 2, MORSEL_ROWS);
        assert!(
            !toy_table(rows, 2, 2, MORSEL_ROWS).bitwise_eq(&base),
            "seed"
        );
        assert!(
            !toy_table(rows, 1, 2, 2 * MORSEL_ROWS).bitwise_eq(&base),
            "chunk size"
        );
    }

    #[test]
    fn zone_maps_come_out_eager() {
        let t = toy_table(MORSEL_ROWS * 2, 3, 2, MORSEL_ROWS);
        assert!(t.zone_maps_built());
        assert_eq!(t.zone_maps().n_morsels(), 2);
    }

    #[test]
    fn zero_rows_is_fine() {
        let t = toy_table(0, 0, 4, CHUNK_ROWS);
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn chunk_seed_mixes_indices() {
        // Nearby chunk indices must not produce nearby seeds.
        let a = chunk_seed(0, 0);
        let b = chunk_seed(0, 1);
        assert_ne!(a ^ b, 1, "adjacent chunks differ by more than one bit");
        assert_ne!(chunk_seed(1, 0), chunk_seed(0, 0));
    }

    #[test]
    #[should_panic(expected = "multiple of MORSEL_ROWS")]
    fn misaligned_chunk_rows_panics() {
        toy_table(10, 0, 1, 100);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_fails_fast_instead_of_deadlocking() {
        // A generator that dies on a later chunk must abort the merge (the
        // waiting-on-slot-1 path), not hang it.
        generate_chunked(
            toy_schema(),
            4 * MORSEL_ROWS,
            0,
            0,
            2,
            MORSEL_ROWS,
            |rng, ctx, b| {
                assert!(ctx.start < MORSEL_ROWS, "boom: worker chunk failure");
                toy_fill(rng, ctx, b);
            },
        );
    }
}
