//! Benchmark harness for the SIMBA paper's tables and figures.
//!
//! ## The `bench` CLI
//!
//! Every scenario — built-in or from a JSON spec file — runs through the
//! `bench` binary. The usage below *is* `--help`: both this page and the
//! binary render `src/bench_usage.txt`, so they cannot drift apart.
//!
//! ```text
#![doc = include_str!("bench_usage.txt")]
//! ```
//!
//! ## Experiment binaries
//!
//! Each remaining binary under `src/bin/` regenerates one of the paper's
//! experiments (those that sweep driver workloads are thin aliases over
//! the scenario registry):
//!
//! | binary | experiment |
//! |---|---|
//! | `table3_grid` | Table 3's parameter grid |
//! | `figure7_dashboards` | Figure 7: per-dashboard query durations |
//! | `figure8_workflows` | Figure 8: durations by workflow × dashboard |
//! | `table4_workload_stats` | Table 4: workload shape statistics |
//! | `figure9_idebench` | Figure 9: IDEBench dashboard variance |
//! | `user_study_probe` | §6.4: realism probe + binomial test |
//! | `dbms_shootout` | §6 headline: four engines × dataset sizes |
//! | `ablation_interleave` | interleaving ablation (P(Markov) ∈ {0, ½, 1}) |
//! | `ablation_horizon` | Oracle lookahead-depth ablation |
//! | `perf_report` | perf trajectory: engine latency (`BENCH_PR2.json`) + generation throughput (`BENCH_PR5.json`) |
//!
//! By default everything runs at laptop scale; set `SIMBA_ROWS` (e.g.
//! `SIMBA_ROWS=10000000`) to reproduce paper-scale runs.

use simba_core::dashboard::Dashboard;
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_engine::Dbms;
use simba_store::Table;
use std::sync::Arc;

/// Rows used by harness binaries unless `SIMBA_ROWS` overrides.
pub const DEFAULT_ROWS: usize = 50_000;

/// Row count from the environment (`SIMBA_ROWS`), or the default.
pub fn configured_rows() -> usize {
    std::env::var("SIMBA_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_ROWS)
}

/// Runs per configuration from the environment (`SIMBA_RUNS`), default 3
/// (the paper uses 8; scale up with the env var).
pub fn configured_runs() -> u64 {
    std::env::var("SIMBA_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Base seed from the environment (`SIMBA_SEED`), default 0. Harness
/// binaries derive all dataset and session seeds from it via
/// [`harness_seed`], so one env var re-rolls an entire experiment
/// reproducibly.
pub fn configured_seed() -> u64 {
    configured_seed_or(0)
}

/// Base seed from the environment (`SIMBA_SEED`), or `default`.
pub fn configured_seed_or(default: u64) -> u64 {
    std::env::var("SIMBA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Derive a decorrelated seed for one harness component: SplitMix64 over
/// the base seed plus the call site's salt. A plain `base ^ salt` would
/// let nearby `SIMBA_SEED` values merely permute a run loop's seed set
/// (`1 ^ {0..n}` is `{0..n}` shuffled); scrambling makes every base draw
/// a disjoint set.
pub fn harness_seed(salt: u64) -> u64 {
    simba_core::session::batch::splitmix(configured_seed().rotate_left(32).wrapping_add(salt))
}

pub mod scenario_cli;

/// Build a dataset table and its dashboard runtime.
pub fn build_context(ds: DashboardDataset, rows: usize, seed: u64) -> (Arc<Table>, Dashboard) {
    let table = Arc::new(ds.generate_rows(rows, seed));
    let dashboard = Dashboard::new(builtin(ds), &table).expect("builtin specs are valid");
    (table, dashboard)
}

/// Register a table with an engine and return it.
pub fn engine_with(kind: simba_engine::EngineKind, table: Arc<Table>) -> Arc<dyn Dbms> {
    let engine = kind.build();
    engine.register(table);
    engine
}

/// Deterministic synthetic table for the vectorized-execution microbench:
/// one low-cardinality dictionary key (`queue`, 8 values), a uniform Int
/// measure (`calls` ∈ [0, 1000)), a Float measure (`cost`), and a temporal
/// column — the shape of the paper's dashboard fragment, at any scale.
pub fn synthetic_perf_table(rows: usize, seed: u64) -> Arc<Table> {
    use simba_core::session::batch::splitmix;
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    let schema = Schema::new(
        "perf",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
            ColumnDef::temporal("ts"),
        ],
    );
    let queues: Vec<Value> = (0..8).map(|i| Value::str(format!("q{i}"))).collect();
    let mut b = TableBuilder::new(schema, rows);
    let mut state = splitmix(seed ^ 0x5EED_F00D);
    for i in 0..rows {
        state = splitmix(state);
        let q = queues[(state % 8) as usize].clone();
        let calls = Value::Int(((state >> 3) % 1000) as i64);
        let cost = Value::Float(((state >> 13) % 10_000) as f64 / 100.0);
        let ts = Value::Int(1_600_000_000 + i as i64);
        b.push_row(vec![q, calls, cost, ts]);
    }
    Arc::new(b.finish())
}

/// The filtered-aggregate microbenchmark query: a selective Int predicate
/// (~10% of rows) over a single dictionary group key, all aggregates typed.
pub const PERF_QUERY: &str = "SELECT queue, COUNT(*), SUM(calls), MIN(calls), MAX(calls) \
     FROM perf WHERE calls > 900 GROUP BY queue";

/// A crude console box plot: `min [p25 |p50| p75] p95 → max`, log-free.
pub fn ascii_box(summary: &simba_core::metrics::DurationSummary, width: usize) -> String {
    let max = summary.max_ms.max(1e-9);
    let pos = |v: f64| ((v / max) * (width.saturating_sub(1)) as f64).round() as usize;
    let mut chars: Vec<char> = vec![' '; width];
    let (lo, q1, med, q3, hi) = (
        pos(summary.min_ms),
        pos(summary.p25_ms),
        pos(summary.p50_ms),
        pos(summary.p75_ms),
        pos(summary.p95_ms),
    );
    for c in chars.iter_mut().take(hi.min(width - 1) + 1).skip(lo) {
        *c = '-';
    }
    for c in chars.iter_mut().take(q3.min(width - 1) + 1).skip(q1) {
        *c = '=';
    }
    if med < width {
        chars[med] = '#';
    }
    chars.into_iter().collect()
}

/// Format a millisecond value in a compact fixed width.
pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:8.1}")
    } else {
        format!("{v:8.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_core::metrics::DurationSummary;
    use std::time::Duration;

    #[test]
    fn context_builder_produces_matching_pair() {
        let (table, dashboard) = build_context(DashboardDataset::MyRide, 200, 1);
        assert_eq!(table.name(), dashboard.spec().database.table);
    }

    #[test]
    fn ascii_box_is_requested_width() {
        let ds: Vec<Duration> = (1..=50).map(Duration::from_millis).collect();
        let s = DurationSummary::from_durations(&ds).unwrap();
        let b = ascii_box(&s, 40);
        assert_eq!(b.chars().count(), 40);
        assert!(b.contains('#'));
    }

    #[test]
    fn configured_rows_defaults() {
        // Cannot set env safely in parallel tests; just check the default
        // path yields a sane value.
        assert!(configured_rows() >= 1_000);
    }

    #[test]
    fn synthetic_perf_table_is_deterministic_and_selective() {
        let a = synthetic_perf_table(2_000, 7);
        let b = synthetic_perf_table(2_000, 7);
        assert_eq!(a.row_count(), 2_000);
        let q = simba_sql::parse_select(PERF_QUERY).unwrap();
        let ra = simba_engine::execute_row_oracle(a, &q).unwrap();
        let rb = simba_engine::execute_row_oracle(b, &q).unwrap();
        assert_eq!(ra.result.sorted_rows(), rb.result.sorted_rows());
        // ~10% selectivity: calls > 900 over uniform [0, 1000).
        let frac = ra.stats.rows_matched as f64 / 2_000.0;
        assert!((0.05..0.15).contains(&frac), "selectivity {frac}");
    }
}
