//! Shared runner behind `bench --scenario <name>` and the thin alias bins.
//!
//! One code path expands a named scenario (or a spec file) into
//! [`ScenarioSpec`]s, executes each through [`Driver::execute`], prints a
//! progress table, and emits the full [`RunReport`] array as JSON — to
//! stdout or to the file named by `SIMBA_JSON_OUT`. Empty or errored runs
//! make the process exit non-zero, which is what CI keys on.

use simba_driver::workload::TableCache;
use simba_driver::{Driver, RunReport, ScenarioParams, ScenarioSpec};

/// Parse a comma-separated user sweep (`"1,8,64"`): the one parser behind
/// both `SIMBA_USERS` and the CLI's `--users`. Non-numeric and zero
/// entries are dropped; `None` if nothing valid remains.
pub fn parse_users(s: &str) -> Option<Vec<usize>> {
    let users: Vec<usize> = s
        .split(',')
        .filter_map(|p| p.trim().parse().ok())
        .filter(|&u| u > 0)
        .collect();
    if users.is_empty() {
        None
    } else {
        Some(users)
    }
}

/// Scale knobs from `SIMBA_*` environment variables over `defaults`:
/// `SIMBA_ROWS`, `SIMBA_SEED`, `SIMBA_USERS` (comma-separated sweep),
/// `SIMBA_STEPS`, `SIMBA_WORKERS`, `SIMBA_THINK_MS`.
pub fn params_from_env(defaults: ScenarioParams) -> ScenarioParams {
    let usize_var = |name: &str, dflt: usize| -> usize {
        std::env::var(name)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(dflt)
    };
    let users = std::env::var("SIMBA_USERS")
        .ok()
        .and_then(|s| parse_users(&s))
        .unwrap_or_else(|| defaults.users.clone());
    ScenarioParams {
        rows: usize_var("SIMBA_ROWS", defaults.rows),
        seed: crate::configured_seed_or(defaults.seed),
        users,
        steps: usize_var("SIMBA_STEPS", defaults.steps),
        workers: usize_var("SIMBA_WORKERS", defaults.workers),
        think_ms: usize_var("SIMBA_THINK_MS", defaults.think_ms as usize) as u64,
    }
}

/// Header for [`print_row`].
pub fn print_header() {
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>4} {:>8} {:>10} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "engine",
        "source",
        "users",
        "cache",
        "scan",
        "queries",
        "qps",
        "p50 ms",
        "p99 ms",
        "hit%",
        "btrk",
        "drill"
    );
}

/// One aligned table row per executed spec.
pub fn print_row(report: &RunReport, cached: bool) {
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>4} {:>8} {:>10.0} {:>9.3} {:>9.3} {:>7} {:>6} {:>6}",
        report.engine,
        report.session_mode,
        report.sessions,
        if cached { "on" } else { "off" },
        report.scan_threads,
        report.queries,
        report.throughput_qps,
        report.latency.p50_us / 1_000.0,
        report.latency.p99_us / 1_000.0,
        report
            .cache
            .as_ref()
            .map(|c| format!("{:.1}", c.hit_rate * 100.0))
            .unwrap_or_else(|| "-".to_string()),
        report
            .steering
            .as_ref()
            .map(|s| s.backtracks.to_string())
            .unwrap_or_else(|| "-".to_string()),
        report
            .steering
            .as_ref()
            .map(|s| s.drills.to_string())
            .unwrap_or_else(|| "-".to_string()),
    );
}

/// Execute every spec in order, printing a row per run.
///
/// Returns the reports, or an error string if any spec fails to execute or
/// produces an *empty* report (zero queries) — the "benchmark silently did
/// nothing" failure mode CI must catch.
pub fn run_specs(specs: &[ScenarioSpec]) -> Result<Vec<RunReport>, String> {
    if specs.is_empty() {
        return Err("scenario expanded to zero specs".to_string());
    }
    print_header();
    // One dataset generation per (dataset, rows, seed) across the suite.
    let mut tables = TableCache::new();
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let outcome =
            Driver::execute_with(spec, &mut tables).map_err(|e| format!("{}: {e}", spec.name))?;
        if outcome.report.queries == 0 {
            return Err(format!(
                "{} ({} / {}): empty report — no queries executed",
                spec.name, spec.engine.kind, outcome.report.session_mode
            ));
        }
        print_row(&outcome.report, spec.cache.is_some());
        reports.push(outcome.report);
    }
    Ok(reports)
}

/// Write the report array as pretty JSON to the `SIMBA_JSON_OUT` file, or
/// print it to stdout when unset.
pub fn emit_json(reports: &[RunReport]) {
    let json = serde_json::to_string_pretty(reports).expect("reports serialize");
    match std::env::var("SIMBA_JSON_OUT") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write SIMBA_JSON_OUT");
            println!("wrote {} reports to {path}", reports.len());
        }
        Err(_) => println!("{json}"),
    }
}

/// Thin-alias entry point: run one built-in scenario under env-configured
/// params, with a given default parameter set. Exits the process non-zero
/// on failure.
pub fn run_named_scenario(name: &str, defaults: ScenarioParams) {
    let params = params_from_env(defaults);
    let scenario = simba_driver::scenario(name, &params)
        .unwrap_or_else(|| panic!("`{name}` is a registered scenario"));
    println!(
        "{name} — {} (rows {}, seed {}, users {:?}, {} steps/session)\n",
        scenario.description, params.rows, params.seed, params.users, params.steps
    );
    match run_specs(&scenario.specs) {
        Ok(reports) => emit_json(&reports),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
