//! Shared runner behind `bench --scenario <name>` and the thin alias bins.
//!
//! One code path expands a named scenario (or a spec file) into
//! [`ScenarioSpec`]s, executes each through [`Driver::execute`], prints a
//! progress table, and emits the full [`RunReport`] array as JSON — to
//! stdout or to the file named by `SIMBA_JSON_OUT`. Empty or errored runs
//! make the process exit non-zero, which is what CI keys on.

use simba_driver::workload::TableCache;
use simba_driver::{
    run_datagen_sweep, DatagenReport, DatagenSweep, Driver, RunReport, ScenarioBody,
    ScenarioParams, ScenarioSpec,
};

/// Parse a comma-separated user sweep (`"1,8,64"`): the one parser behind
/// both `SIMBA_USERS` and the CLI's `--users`. Non-numeric and zero
/// entries are dropped; `None` if nothing valid remains.
pub fn parse_users(s: &str) -> Option<Vec<usize>> {
    let users: Vec<usize> = s
        .split(',')
        .filter_map(|p| p.trim().parse().ok())
        .filter(|&u| u > 0)
        .collect();
    if users.is_empty() {
        None
    } else {
        Some(users)
    }
}

/// Parse a comma-separated `DatasetSize` label list (`"100K,1M"`): the one
/// parser behind both `SIMBA_SIZES` and the CLI's `--sizes`. Blank entries
/// are dropped; `None` if nothing remains. Label validity is checked by
/// the sweep itself, so typos produce a real error instead of silently
/// vanishing here.
pub fn parse_sizes(s: &str) -> Option<Vec<String>> {
    let sizes: Vec<String> = s
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if sizes.is_empty() {
        None
    } else {
        Some(sizes)
    }
}

/// Validate a server address for `--addr`/`SIMBA_SERVER_ADDR`, exiting
/// with a usage error on a malformed one. The rule is
/// [`simba_driver::validate_addr`] — the same check spec validation
/// applies — run here at flag-parse time so a typo fails before any
/// dataset is generated or socket dialed.
pub fn addr_or_exit(addr: String) -> String {
    if let Err(e) = simba_driver::validate_addr(&addr) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    addr
}

/// Scale knobs from `SIMBA_*` environment variables over `defaults`:
/// `SIMBA_ROWS`, `SIMBA_SEED`, `SIMBA_USERS` (comma-separated sweep),
/// `SIMBA_STEPS`, `SIMBA_WORKERS`, `SIMBA_THINK_MS`, `SIMBA_SIZES`
/// (comma-separated `DatasetSize` labels), `SIMBA_SERVER_ADDR`
/// (`host:port` of a live `simba-server`, or `"loopback"`).
pub fn params_from_env(defaults: ScenarioParams) -> ScenarioParams {
    let usize_var = |name: &str, dflt: usize| -> usize {
        std::env::var(name)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(dflt)
    };
    let users = std::env::var("SIMBA_USERS")
        .ok()
        .and_then(|s| parse_users(&s))
        .unwrap_or_else(|| defaults.users.clone());
    let sizes = std::env::var("SIMBA_SIZES")
        .ok()
        .and_then(|s| parse_sizes(&s))
        .unwrap_or_else(|| defaults.sizes.clone());
    let addr = std::env::var("SIMBA_SERVER_ADDR")
        .ok()
        .map(addr_or_exit)
        .unwrap_or_else(|| defaults.addr.clone());
    ScenarioParams {
        rows: usize_var("SIMBA_ROWS", defaults.rows),
        seed: crate::configured_seed_or(defaults.seed),
        users,
        steps: usize_var("SIMBA_STEPS", defaults.steps),
        workers: usize_var("SIMBA_WORKERS", defaults.workers),
        think_ms: usize_var("SIMBA_THINK_MS", defaults.think_ms as usize) as u64,
        sizes,
        addr,
    }
}

/// Compact count for the summary table: `999`, `12.3K`, `4.5M`, `1.2B`.
fn compact_count(n: u64) -> String {
    match n {
        0..=999 => n.to_string(),
        1_000..=999_999 => format!("{:.1}K", n as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}M", n as f64 / 1e6),
        _ => format!("{:.1}B", n as f64 / 1e9),
    }
}

/// Header for [`print_row`].
pub fn print_header() {
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>4} {:>8} {:>10} {:>9} {:>9} {:>8} {:>7} {:>7} {:>6} {:>6}",
        "engine",
        "source",
        "users",
        "cache",
        "scan",
        "queries",
        "qps",
        "p50 ms",
        "p99 ms",
        "scanned",
        "pruned",
        "hit%",
        "btrk",
        "drill"
    );
}

/// One aligned table row per executed spec.
pub fn print_row(report: &RunReport, cached: bool) {
    println!(
        "{:<14} {:>9} {:>6} {:>6} {:>4} {:>8} {:>10.0} {:>9.3} {:>9.3} {:>8} {:>7} {:>7} {:>6} {:>6}",
        report.engine,
        report.session_mode,
        report.sessions,
        if cached { "on" } else { "off" },
        report.scan_threads,
        report.queries,
        report.throughput_qps,
        report.latency.p50_us / 1_000.0,
        report.latency.p99_us / 1_000.0,
        compact_count(report.exec.rows_scanned),
        compact_count(report.exec.morsels_pruned),
        report
            .cache
            .as_ref()
            .map(|c| format!("{:.1}", c.hit_rate * 100.0))
            .unwrap_or_else(|| "-".to_string()),
        report
            .steering
            .as_ref()
            .map(|s| s.backtracks.to_string())
            .unwrap_or_else(|| "-".to_string()),
        report
            .steering
            .as_ref()
            .map(|s| s.drills.to_string())
            .unwrap_or_else(|| "-".to_string()),
    );
}

/// What a suite run produced: every report completed before the first
/// failure (all of them on success), plus the failure itself, if any.
/// Keeping the two separate lets callers emit the partial report JSON
/// *before* exiting non-zero, so a failed or degraded run stays
/// inspectable.
pub struct SuiteOutcome {
    /// Reports of the specs that ran to completion, in suite order.
    pub reports: Vec<RunReport>,
    /// Why the suite stopped early, or `None` if every spec completed.
    pub error: Option<String>,
}

/// Execute every spec in order, printing a row per run.
///
/// Stops at the first spec that fails to execute or produces an *empty*
/// report (zero queries) — the "benchmark silently did nothing" failure
/// mode CI must catch — but the reports gathered up to that point survive
/// in the returned [`SuiteOutcome`].
pub fn run_specs(specs: &[ScenarioSpec]) -> SuiteOutcome {
    if specs.is_empty() {
        return SuiteOutcome {
            reports: Vec::new(),
            error: Some("scenario expanded to zero specs".to_string()),
        };
    }
    print_header();
    // One dataset generation per (dataset, rows, seed) across the suite.
    let mut tables = TableCache::new();
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let outcome = match Driver::execute_with(spec, &mut tables) {
            Ok(outcome) => outcome,
            Err(e) => {
                return SuiteOutcome {
                    reports,
                    error: Some(format!("{}: {e}", spec.name)),
                }
            }
        };
        if outcome.report.queries == 0 {
            let error = format!(
                "{} ({} / {}): empty report — no queries executed",
                spec.name,
                spec.engine.kind_name(),
                outcome.report.session_mode
            );
            return SuiteOutcome {
                reports,
                error: Some(error),
            };
        }
        print_row(&outcome.report, spec.cache.is_some());
        reports.push(outcome.report);
    }
    SuiteOutcome {
        reports,
        error: None,
    }
}

/// `(degraded sessions, total sessions)` across a suite's reports.
/// Reports without a `resilience` section contribute zero degraded
/// sessions — a legacy-path run can't degrade.
pub fn degraded_totals(reports: &[RunReport]) -> (u64, u64) {
    let degraded = reports
        .iter()
        .filter_map(|r| r.resilience.as_ref())
        .map(|r| r.degraded_sessions)
        .sum();
    let total = reports.iter().map(|r| r.sessions as u64).sum();
    (degraded, total)
}

/// Enforce a `--max-degraded` percentage over a finished suite: `Err`
/// (with a ready-to-print message) when strictly more than `max_percent`
/// of all sessions ended degraded.
pub fn check_max_degraded(reports: &[RunReport], max_percent: f64) -> Result<(), String> {
    let (degraded, total) = degraded_totals(reports);
    if total == 0 {
        return Ok(());
    }
    let percent = degraded as f64 / total as f64 * 100.0;
    if percent > max_percent {
        return Err(format!(
            "{degraded} of {total} sessions ({percent:.1}%) ended degraded, \
             over the --max-degraded {max_percent}% budget"
        ));
    }
    Ok(())
}

/// Run a generation-throughput sweep, printing one aligned row per timed
/// cell, and return the report.
pub fn run_datagen(sweep: &DatagenSweep) -> Result<DatagenReport, String> {
    println!(
        "{:<22} {:>6} {:>12} {:>8} {:>10} {:>12} {:>8}",
        "dataset", "size", "rows", "threads", "secs", "rows/sec", "speedup"
    );
    run_datagen_sweep(sweep, |e| {
        println!(
            "{:<22} {:>6} {:>12} {:>8} {:>10.3} {:>12.0} {:>8}",
            e.dataset,
            e.size,
            e.rows,
            e.threads,
            e.secs,
            e.rows_per_sec,
            e.speedup_vs_single
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string()),
        );
    })
    .map_err(|e| e.to_string())
}

/// Resolve the Chrome-trace output path: an explicit `--trace-out` flag
/// wins over the `SIMBA_TRACE_OUT` environment variable.
pub fn resolve_trace_out(flag: Option<String>) -> Option<String> {
    flag.or_else(|| {
        std::env::var("SIMBA_TRACE_OUT")
            .ok()
            .filter(|s| !s.is_empty())
    })
}

/// Whether `SIMBA_METRICS` asks for a metrics snapshot (any value but
/// `"0"` or empty counts as on).
pub fn metrics_from_env() -> bool {
    std::env::var("SIMBA_METRICS")
        .ok()
        .is_some_and(|v| !v.is_empty() && v != "0")
}

/// Arm span collection for the rest of the process. `SIMBA_TRACE_SAMPLE`
/// (`"8"` or `"1/8"`; `"0"` disables) sets root-span sampling first so no
/// unsampled root sneaks in.
pub fn enable_tracing() {
    if let Ok(s) = std::env::var("SIMBA_TRACE_SAMPLE") {
        match simba_obs::trace::parse_sample(&s) {
            Some(n) => simba_obs::trace::set_sample_every(n),
            None => {
                eprintln!("invalid SIMBA_TRACE_SAMPLE `{s}` (want \"N\", \"1/N\", or \"0\")");
                std::process::exit(2);
            }
        }
    }
    simba_obs::trace::set_enabled(true);
}

/// Drain every span collected so far and write them as one Chrome
/// `trace_event` JSON file (load in `chrome://tracing` or Perfetto).
pub fn write_trace(path: &str) {
    let events = simba_obs::trace::take_events();
    let json = simba_obs::trace::export_chrome_trace(&events);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write trace to {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} spans to {path}", events.len());
}

/// Write pretty JSON to the `SIMBA_JSON_OUT` file, or print it to stdout
/// when unset.
fn emit_json_payload(json: &str, what: &str) {
    match std::env::var("SIMBA_JSON_OUT") {
        Ok(path) => {
            std::fs::write(&path, json).expect("write SIMBA_JSON_OUT");
            println!("wrote {what} to {path}");
        }
        Err(_) => println!("{json}"),
    }
}

/// Write the report array as pretty JSON to the `SIMBA_JSON_OUT` file, or
/// print it to stdout when unset.
pub fn emit_json(reports: &[RunReport]) {
    let json = serde_json::to_string_pretty(reports).expect("reports serialize");
    emit_json_payload(&json, &format!("{} reports", reports.len()));
}

/// [`emit_json`] for a datagen sweep report.
pub fn emit_datagen_json(report: &DatagenReport) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    emit_json_payload(&json, &format!("{} datagen entries", report.entries.len()));
}

/// Thin-alias entry point: run one built-in scenario under env-configured
/// params, with a given default parameter set. Exits the process non-zero
/// on failure.
pub fn run_named_scenario(name: &str, defaults: ScenarioParams) {
    let params = params_from_env(defaults);
    let scenario = simba_driver::scenario(name, &params)
        .unwrap_or_else(|| panic!("`{name}` is a registered scenario"));
    println!(
        "{name} — {} (rows {}, seed {}, users {:?}, {} steps/session)\n",
        scenario.description, params.rows, params.seed, params.users, params.steps
    );
    // Alias bins honor the same observability env knobs as `bench`.
    let trace_out = resolve_trace_out(None);
    if trace_out.is_some() {
        enable_tracing();
    }
    let outcome = match &scenario.body {
        ScenarioBody::Suite(specs) => {
            let mut specs = specs.clone();
            if metrics_from_env() {
                for spec in &mut specs {
                    spec.collect_metrics = true;
                }
            }
            let suite = run_specs(&specs);
            // Partial reports are still worth emitting: a failed chaos run
            // is exactly the run someone will want to inspect.
            if !suite.reports.is_empty() {
                emit_json(&suite.reports);
            }
            match suite.error {
                Some(e) => Err(e),
                None => max_degraded_from_env()
                    .map_or(Ok(()), |max| check_max_degraded(&suite.reports, max)),
            }
        }
        ScenarioBody::Datagen(sweep) => run_datagen(sweep).map(|report| emit_datagen_json(&report)),
    };
    if let Some(path) = &trace_out {
        write_trace(path);
    }
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// The `SIMBA_MAX_DEGRADED` degraded-session budget (percent), if set to
/// a valid number.
pub fn max_degraded_from_env() -> Option<f64> {
    std::env::var("SIMBA_MAX_DEGRADED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
}
