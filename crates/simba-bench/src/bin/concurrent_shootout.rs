//! Concurrent shootout: sweep simultaneous-user counts across all four
//! engine architectures, with and without the shared query-result cache.
//!
//! For each user count U, `simba-core` pre-synthesizes U heterogeneous
//! Markov sessions; `simba-driver` replays them closed-loop from a worker
//! pool against each engine and reports throughput, p50/p95/p99 latency,
//! and cache hit rates. A final JSON array of every `DriverReport` goes to
//! stdout (or to the file named by `SIMBA_JSON_OUT`).
//!
//! Environment:
//! * `SIMBA_ROWS`   — dataset rows (default 50 000)
//! * `SIMBA_SEED`   — base seed (default 0)
//! * `SIMBA_USERS`  — comma-separated sweep (default `1,4,16,64,256`)
//! * `SIMBA_STEPS`  — interactions per session (default 6)
//! * `SIMBA_WORKERS`— worker threads (default: available parallelism)
//! * `SIMBA_THINK_MS` — fixed think time per interaction (default 0)

use simba_bench::{build_context, configured_rows, configured_seed, harness_seed};
use simba_core::session::batch::{synthesize_scripts, BatchConfig};
use simba_data::DashboardDataset;
use simba_driver::{CacheConfig, Driver, DriverConfig, DriverReport, ThinkTime};
use simba_engine::EngineKind;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn user_sweep() -> Vec<usize> {
    match std::env::var("SIMBA_USERS") {
        Ok(s) => s
            .split(',')
            .filter_map(|p| p.trim().parse().ok())
            .filter(|&u| u > 0)
            .collect(),
        Err(_) => vec![1, 4, 16, 64, 256],
    }
}

fn main() {
    let rows = configured_rows();
    let seed = configured_seed();
    let steps = env_usize("SIMBA_STEPS", 6);
    let workers = env_usize("SIMBA_WORKERS", 0);
    let think_ms = env_usize("SIMBA_THINK_MS", 0);
    let users = user_sweep();

    println!("concurrent shootout — CustomerService, {rows} rows, seed {seed}");
    println!("users: {users:?}, {steps} interactions/session, think {think_ms} ms\n");

    let (table, dashboard) =
        build_context(DashboardDataset::CustomerService, rows, harness_seed(0xC0));

    println!(
        "{:<14} {:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>9} {:>7}",
        "engine", "users", "cache", "queries", "qps", "p50 ms", "p95 ms", "p99 ms", "hit%"
    );
    let mut reports: Vec<DriverReport> = Vec::new();
    for &u in &users {
        let scripts = synthesize_scripts(
            &dashboard,
            &BatchConfig {
                base_seed: seed,
                steps_per_session: steps,
                ..Default::default()
            },
            u,
        );
        for kind in EngineKind::ALL {
            for cache_on in [false, true] {
                let engine = kind.build();
                engine.register(table.clone());
                let driver = Driver::new(DriverConfig {
                    workers,
                    seed,
                    think_time: if think_ms == 0 {
                        ThinkTime::None
                    } else {
                        ThinkTime::Fixed(Duration::from_millis(think_ms as u64))
                    },
                    cache: cache_on.then(CacheConfig::default),
                    ..Default::default()
                });
                let outcome = driver.run(engine, &scripts);
                let r = &outcome.report;
                println!(
                    "{:<14} {:>5} {:>6} {:>8} {:>10.0} {:>9.3} {:>9.3} {:>9.3} {:>7}",
                    r.engine,
                    u,
                    if cache_on { "on" } else { "off" },
                    r.queries,
                    r.throughput_qps,
                    r.latency.p50_us / 1_000.0,
                    r.latency.p95_us / 1_000.0,
                    r.latency.p99_us / 1_000.0,
                    r.cache
                        .as_ref()
                        .map(|c| format!("{:.1}", c.hit_rate * 100.0))
                        .unwrap_or_else(|| "-".to_string()),
                );
                reports.push(outcome.report);
            }
        }
        println!();
    }

    let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
    match std::env::var("SIMBA_JSON_OUT") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write SIMBA_JSON_OUT");
            println!("wrote {} reports to {path}", reports.len());
        }
        Err(_) => println!("{json}"),
    }
}
