//! Table 3: the experiment grid — dataset sizes × goal sequences
//! (workflows) × dashboards, each against every DBMS.
//!
//! Paper scale is {100K, 1M, 10M} rows × 8 runs; default here is one scaled
//! size (`SIMBA_ROWS`, default 50K) × `SIMBA_RUNS` runs. Incompatible
//! combinations (MyRide × correlation workflows) are reported as `n/a`,
//! matching §6.2.3.

use simba_bench::{
    build_context, configured_rows, configured_runs, engine_with, fmt_ms, harness_seed,
};
use simba_core::metrics::DurationSummary;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    let rows = configured_rows();
    let runs = configured_runs();
    println!("=== Table 3 grid: {rows} rows, {runs} runs per cell ===");
    println!(
        "parameters: {} dashboards x {} workflows x {} engines",
        6, 3, 4
    );
    println!();
    println!(
        "{:<22} {:<14} {:<14} {:>8} {:>9} {:>9}",
        "dashboard", "workflow", "engine", "queries", "mean ms", "p95 ms"
    );

    for ds in DashboardDataset::ALL {
        let (table, dashboard) = build_context(ds, rows, harness_seed(7));
        for wf in Workflow::ALL {
            let goals = match wf.goals_for(&dashboard) {
                Ok(g) => g,
                Err(_) => {
                    println!(
                        "{:<22} {:<14} {:<14} {:>8}",
                        dashboard.spec().name,
                        wf.name(),
                        "-",
                        "n/a"
                    );
                    continue;
                }
            };
            for kind in EngineKind::ALL {
                let engine = engine_with(kind, table.clone());
                let mut durations = Vec::new();
                for seed in 0..runs {
                    let config = SessionConfig {
                        seed: harness_seed(seed),
                        max_steps: 15,
                        stop_on_completion: true,
                        ..Default::default()
                    };
                    let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                        .run(&goals)
                        .expect("session runs");
                    durations.extend(log.durations());
                }
                let s = DurationSummary::from_durations(&durations).expect("queries ran");
                println!(
                    "{:<22} {:<14} {:<14} {:>8} {} {}",
                    dashboard.spec().name,
                    wf.name(),
                    kind.name(),
                    s.count,
                    fmt_ms(s.mean_ms),
                    fmt_ms(s.p95_ms)
                );
            }
        }
    }
}
