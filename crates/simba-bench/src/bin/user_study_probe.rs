//! §6.4 realism probe: the measurable core of the paper's user study.
//!
//! The experts' discriminating signal was *repeated zero-result queries*
//! produced by the Markov phase. We generate SIMBA logs under different
//! randomization levels and "human-proxy" logs (Oracle-dominated with a
//! single injected mistake), apply the expert heuristic as a classifier, and
//! run the paper's binomial test. Expected shape: high randomization on the
//! filter-heavy IT Monitor is detectable (paper: 5/6 expert successes);
//! moderate randomization on Customer Service is not (1/6).

use simba_bench::{build_context, configured_rows, engine_with, harness_seed};
use simba_core::metrics::realism::{binomial_tail, empty_result_stats};
use simba_core::session::interleave::DecayConfig;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    let rows = configured_rows().min(100_000);
    println!("=== §6.4 realism probe ({rows} rows) ===\n");

    for ds in [
        DashboardDataset::ItMonitor,
        DashboardDataset::CustomerService,
    ] {
        let (table, dashboard) = build_context(ds, rows, harness_seed(12));
        let engine = engine_with(EngineKind::DuckDbLike, table);
        let goals = Workflow::Shneiderman
            .goals_for(&dashboard)
            .expect("compatible");

        println!("--- {} ---", dashboard.spec().name);
        println!(
            "{:<26} {:>8} {:>10} {:>12} {:>10}",
            "profile", "sessions", "empty-q %", "empty-inter", "flagged"
        );

        // Three randomization levels plus the human proxy.
        let profiles: [(&str, DecayConfig); 4] = [
            (
                "high randomization",
                DecayConfig {
                    initial_markov: 1.0,
                    decay_rate: 0.02,
                },
            ),
            ("default (typical)", DecayConfig::typical()),
            ("low randomization", DecayConfig::expert()),
            (
                "human proxy (oracle)",
                DecayConfig {
                    initial_markov: 0.15,
                    decay_rate: 0.5,
                },
            ),
        ];
        let sessions = 6u64;
        let mut flagged_by_profile = Vec::new();
        for (name, decay) in profiles {
            let mut empty_fraction = 0.0;
            let mut empty_interactions = 0usize;
            let mut flagged = 0u64;
            for seed in 0..sessions {
                let config = SessionConfig {
                    seed: harness_seed(seed),
                    max_steps: 25,
                    decay,
                    stop_on_completion: false,
                    ..Default::default()
                };
                let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                    .run(&goals)
                    .expect("session runs");
                let stats = empty_result_stats(&log);
                empty_fraction += stats.empty_fraction();
                empty_interactions += stats.empty_interactions;
                if stats.looks_simulated() {
                    flagged += 1;
                }
            }
            println!(
                "{:<26} {:>8} {:>9.1}% {:>12} {:>7}/{}",
                name,
                sessions,
                100.0 * empty_fraction / sessions as f64,
                empty_interactions,
                flagged,
                sessions
            );
            flagged_by_profile.push((name, flagged));
        }

        // The paper's binomial test on the expert guesses.
        let correct = flagged_by_profile
            .iter()
            .find(|(n, _)| *n == "high randomization")
            .map(|(_, f)| *f)
            .unwrap_or(0);
        let p = binomial_tail(sessions, correct, 0.5);
        println!(
            "  binomial test P(X >= {correct} | n={sessions}, p=0.5) = {:.3}  \
             (paper: P(X >= 7 | n=12) = 0.387)\n",
            p
        );
    }

    println!(
        "takeaway (§6.4): randomization parameters are sensitive to dashboard\n\
         design — filter-heavy dashboards need lower randomization to stay\n\
         indistinguishable from human sessions."
    );
}
