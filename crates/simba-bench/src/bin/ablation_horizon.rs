//! Ablation: Oracle lookahead depth (§4.1).
//!
//! Deeper LookAhead plans cost more engine queries per step but can escape
//! local optima. This ablation sweeps depth 1–3 and reports
//! steps-to-first-goal and planning cost.

use simba_bench::{build_context, configured_rows, engine_with, harness_seed};
use simba_core::oracle::OracleConfig;
use simba_core::session::interleave::DecayConfig;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    let rows = configured_rows().min(50_000);
    let sessions = 3u64;
    println!("=== Oracle horizon ablation: Customer Service, {rows} rows ===\n");
    println!(
        "{:<8} {:>16} {:>12} {:>14} {:>12}",
        "depth", "first goal step", "goals met", "wall time ms", "queries"
    );

    let (table, dashboard) =
        build_context(DashboardDataset::CustomerService, rows, harness_seed(5));
    let engine = engine_with(EngineKind::DuckDbLike, table);
    let goals = Workflow::Shneiderman
        .goals_for(&dashboard)
        .expect("compatible");

    for depth in 1..=3usize {
        let mut first_goal = 0usize;
        let mut met = 0usize;
        let mut queries = 0usize;
        let start = std::time::Instant::now();
        for seed in 0..sessions {
            let config = SessionConfig {
                seed: harness_seed(seed),
                max_steps: 20,
                decay: DecayConfig::oracle_only(),
                oracle: OracleConfig {
                    depth,
                    max_candidates: 24,
                    beam_width: 3,
                },
                ..Default::default()
            };
            let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                .run(&goals)
                .expect("session runs");
            first_goal += log
                .goals
                .iter()
                .filter_map(|g| g.solved_at)
                .min()
                .unwrap_or(20);
            met += log.goals.iter().filter(|g| g.solved_at.is_some()).count();
            queries += log.query_count();
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<8} {:>16.1} {:>7}/{:<4} {:>14.1} {:>12}",
            depth,
            first_goal as f64 / sessions as f64,
            met,
            sessions as usize * goals.len(),
            elapsed,
            queries
        );
    }

    println!(
        "\nexpected shape: depth 1 already reaches goals (greedy θ is strong\n\
         once fragments augment coverage); deeper lookahead multiplies\n\
         planning cost for marginal step savings — why the paper's default\n\
         is effectively greedy re-planning."
    );
}
