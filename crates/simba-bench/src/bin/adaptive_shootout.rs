//! Adaptive shootout: scripted replay vs. live result-steered sessions,
//! across all four engine architectures, with and without the shared
//! query-result cache.
//!
//! Scripted mode replays pre-synthesized Markov walks; adaptive mode runs
//! the same per-user walks *live* and lets the steering policy react to
//! results (backtrack out of emptied charts, drill into dominant groups).
//! Comparing the two isolates what result-dependence costs: steering
//! decisions serialize on query completion, shift the query mix, and (with
//! the cache) expose single-flight coalescing on popular drill targets. A
//! final JSON array of every `DriverReport` goes to stdout (or to the file
//! named by `SIMBA_JSON_OUT`).
//!
//! Environment:
//! * `SIMBA_ROWS`   — dataset rows (default 50 000)
//! * `SIMBA_SEED`   — base seed (default 0)
//! * `SIMBA_USERS`  — comma-separated sweep (default `4,16,64`)
//! * `SIMBA_STEPS`  — interactions per session (default 8)
//! * `SIMBA_WORKERS`— worker threads (default: available parallelism)
//! * `SIMBA_THINK_MS` — fixed think time per interaction (default 0)

use simba_bench::{build_context, configured_rows, configured_seed, harness_seed};
use simba_core::session::batch::{synthesize_scripts, BatchConfig};
use simba_data::DashboardDataset;
use simba_driver::{AdaptiveConfig, CacheConfig, Driver, DriverConfig, DriverReport, ThinkTime};
use simba_engine::EngineKind;
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn user_sweep() -> Vec<usize> {
    match std::env::var("SIMBA_USERS") {
        Ok(s) => s
            .split(',')
            .filter_map(|p| p.trim().parse().ok())
            .filter(|&u| u > 0)
            .collect(),
        Err(_) => vec![4, 16, 64],
    }
}

fn main() {
    let rows = configured_rows();
    let seed = configured_seed();
    let steps = env_usize("SIMBA_STEPS", 8);
    let workers = env_usize("SIMBA_WORKERS", 0);
    let think_ms = env_usize("SIMBA_THINK_MS", 0);
    let users = user_sweep();

    println!("adaptive shootout — CustomerService, {rows} rows, seed {seed}");
    println!("users: {users:?}, {steps} interactions/session, think {think_ms} ms\n");

    let (table, dashboard) =
        build_context(DashboardDataset::CustomerService, rows, harness_seed(0xAD));

    println!(
        "{:<14} {:>9} {:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>7} {:>6} {:>6} {:>7}",
        "engine",
        "sessions",
        "users",
        "cache",
        "queries",
        "qps",
        "p50 ms",
        "p99 ms",
        "hit%",
        "btrk",
        "drill",
        "empty%"
    );
    let mut reports: Vec<DriverReport> = Vec::new();
    for &u in &users {
        let scripts = synthesize_scripts(
            &dashboard,
            &BatchConfig {
                base_seed: seed,
                steps_per_session: steps,
                ..Default::default()
            },
            u,
        );
        let adaptive = AdaptiveConfig {
            base_seed: seed,
            steps_per_session: steps,
            ..Default::default()
        };
        for kind in EngineKind::ALL {
            for cache_on in [false, true] {
                for mode in ["scripted", "adaptive"] {
                    let engine = kind.build();
                    engine.register(table.clone());
                    let driver = Driver::new(DriverConfig {
                        workers,
                        seed,
                        think_time: if think_ms == 0 {
                            ThinkTime::None
                        } else {
                            ThinkTime::Fixed(Duration::from_millis(think_ms as u64))
                        },
                        cache: cache_on.then(CacheConfig::default),
                        ..Default::default()
                    });
                    let outcome = match mode {
                        "scripted" => driver.run(engine, &scripts),
                        _ => driver.run_adaptive(engine, &dashboard, &adaptive, u),
                    };
                    let r = &outcome.report;
                    println!(
                        "{:<14} {:>9} {:>5} {:>6} {:>8} {:>10.0} {:>9.3} {:>9.3} {:>7} {:>6} {:>6} {:>7}",
                        r.engine,
                        r.session_mode,
                        u,
                        if cache_on { "on" } else { "off" },
                        r.queries,
                        r.throughput_qps,
                        r.latency.p50_us / 1_000.0,
                        r.latency.p99_us / 1_000.0,
                        r.cache
                            .as_ref()
                            .map(|c| format!("{:.1}", c.hit_rate * 100.0))
                            .unwrap_or_else(|| "-".to_string()),
                        r.steering
                            .as_ref()
                            .map(|s| s.backtracks.to_string())
                            .unwrap_or_else(|| "-".to_string()),
                        r.steering
                            .as_ref()
                            .map(|s| s.drills.to_string())
                            .unwrap_or_else(|| "-".to_string()),
                        r.steering
                            .as_ref()
                            .map(|s| format!("{:.1}", s.empty_result_rate * 100.0))
                            .unwrap_or_else(|| "-".to_string()),
                    );
                    reports.push(outcome.report);
                }
            }
        }
        println!();
    }

    let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
    match std::env::var("SIMBA_JSON_OUT") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write SIMBA_JSON_OUT");
            println!("wrote {} reports to {path}", reports.len());
        }
        Err(_) => println!("{json}"),
    }
}
