//! Thin alias for `bench --scenario adaptive-shootout`: scripted replay
//! vs. live result-steered sessions, across all four engine architectures,
//! with and without the shared query-result cache.
//!
//! Scripted mode replays pre-synthesized Markov walks; adaptive mode runs
//! the same per-user walks *live* and lets the steering policy react to
//! results (backtrack out of emptied charts, drill into dominant groups).
//! Comparing the two isolates what result-dependence costs: steering
//! decisions serialize on query completion, shift the query mix, and (with
//! the cache) expose single-flight coalescing on popular drill targets.
//!
//! The workload is declared by the scenario registry
//! (`simba_driver::workload::registry`) and executed through
//! `Driver::execute`; this binary only maps the historical environment
//! variables onto `ScenarioParams`:
//!
//! * `SIMBA_ROWS`   — dataset rows (default 50 000)
//! * `SIMBA_SEED`   — base seed (default 0)
//! * `SIMBA_USERS`  — comma-separated sweep (default `4,16,64`)
//! * `SIMBA_STEPS`  — interactions per session (default 8)
//! * `SIMBA_WORKERS`— worker threads (default: available parallelism)
//! * `SIMBA_THINK_MS` — fixed think time per interaction (default 0)
//!
//! A final JSON array of every `RunReport` goes to stdout (or to the file
//! named by `SIMBA_JSON_OUT`).
//!
//! Note on seeding: the unified spec path derives *everything* — dataset
//! generation included — from the one master seed, whereas pre-unification
//! releases of this binary salted the dataset seed per bin
//! (`harness_seed(0xAD)`). Runs remain fully deterministic per
//! `SIMBA_SEED`, but absolute numbers are not comparable with JSON
//! artifacts produced by older releases.

use simba_bench::scenario_cli::run_named_scenario;
use simba_driver::ScenarioParams;

fn main() {
    run_named_scenario(
        "adaptive-shootout",
        ScenarioParams {
            users: vec![4, 16, 64],
            steps: 8,
            ..Default::default()
        },
    );
}
