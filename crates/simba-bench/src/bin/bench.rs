//! The single benchmark entry point: run any scenario — built-in or from a
//! JSON spec file — through `Driver::execute` (or, for `datagen-sweep`,
//! through the generation-throughput harness).
//!
//! The usage text lives in `src/bench_usage.txt` — one file backs `--help`
//! *and* the `simba_bench` crate docs, so they cannot drift apart.
//!
//! Flags override environment variables, which override scenario defaults.
//! With `--spec`, the file is authoritative: only *explicit flags* override
//! its fields (`--rows`, `--seed`, `--steps`, `--workers`, `--think-ms`
//! rewrite every spec in the file; `--addr` re-points remote engine specs;
//! `--users`/`--sizes` are rejected because sweeps do not map onto explicit
//! per-spec fields), and `SIMBA_*` environment variables are ignored.

use simba_bench::scenario_cli::{
    check_max_degraded, emit_datagen_json, emit_json, enable_tracing, max_degraded_from_env,
    metrics_from_env, params_from_env, resolve_trace_out, run_datagen, run_specs, write_trace,
};
use simba_driver::{
    all_scenarios, scenario, DatagenSweep, ScenarioBody, ScenarioParams, ScenarioSpec,
};

struct Args {
    scenario: Option<String>,
    spec_file: Option<String>,
    engine: Option<String>,
    list: bool,
    dump: bool,
    trace_out: Option<String>,
    metrics: bool,
    max_degraded: Option<f64>,
    overrides: Vec<(String, String)>,
}

fn usage() -> ! {
    eprint!("{}", include_str!("../bench_usage.txt"));
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: None,
        spec_file: None,
        engine: None,
        list: false,
        dump: false,
        trace_out: None,
        metrics: false,
        max_degraded: None,
        overrides: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value_for = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("missing value for {name}");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value_for("--scenario")),
            "--spec" => args.spec_file = Some(value_for("--spec")),
            "--engine" => args.engine = Some(value_for("--engine")),
            "--list" => args.list = true,
            "--dump" => args.dump = true,
            "--trace-out" => args.trace_out = Some(value_for("--trace-out")),
            "--metrics" => args.metrics = true,
            "--max-degraded" => {
                let value = value_for("--max-degraded");
                match value.parse::<f64>() {
                    Ok(p) if (0.0..=100.0).contains(&p) => args.max_degraded = Some(p),
                    _ => {
                        eprintln!("invalid value `{value}` for --max-degraded (want 0..=100)");
                        std::process::exit(2);
                    }
                }
            }
            "--rows" | "--seed" | "--users" | "--steps" | "--workers" | "--think-ms"
            | "--sizes" | "--addr" => {
                let value = value_for(&flag);
                args.overrides.push((flag, value));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

/// Apply `--rows`-style flag overrides on top of env-derived params.
fn apply_overrides(mut params: ScenarioParams, overrides: &[(String, String)]) -> ScenarioParams {
    for (flag, value) in overrides {
        let parse_usize = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rows" => params.rows = parse_usize(),
            "--seed" => params.seed = parse_usize() as u64,
            "--steps" => params.steps = parse_usize(),
            "--workers" => params.workers = parse_usize(),
            "--think-ms" => params.think_ms = parse_usize() as u64,
            "--users" => match simba_bench::scenario_cli::parse_users(value) {
                Some(users) => params.users = users,
                None => {
                    eprintln!("invalid value `{value}` for --users");
                    std::process::exit(2);
                }
            },
            "--sizes" => match simba_bench::scenario_cli::parse_sizes(value) {
                Some(sizes) => params.sizes = sizes,
                None => {
                    eprintln!("invalid value `{value}` for --sizes");
                    std::process::exit(2);
                }
            },
            "--addr" => {
                params.addr = simba_bench::scenario_cli::addr_or_exit(value.clone());
            }
            _ => unreachable!("parse_args only collects known overrides"),
        }
    }
    params
}

/// Apply explicit flag overrides onto specs loaded from a `--spec` file.
/// The file is the source of truth; only flags the user actually typed
/// rewrite it (env vars are ignored on this path).
fn apply_spec_overrides(specs: &mut [ScenarioSpec], overrides: &[(String, String)]) {
    for (flag, value) in overrides {
        let parse_usize = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        if flag == "--users" {
            eprintln!("--users cannot be combined with --spec (edit the file's `sessions` fields)");
            std::process::exit(2);
        }
        if flag == "--sizes" {
            eprintln!("--sizes cannot be combined with --spec (edit the file's `size` fields)");
            std::process::exit(2);
        }
        if flag == "--addr" {
            // Re-point remote specs at a different server; a file with no
            // remote specs has nothing for the flag to do, so reject it
            // rather than silently run everything in-process.
            let addr = simba_bench::scenario_cli::addr_or_exit(value.clone());
            let mut rewrote = false;
            for spec in specs.iter_mut() {
                if let simba_driver::EngineSpec::Remote { addr: a, .. } = &mut spec.engine {
                    *a = addr.clone();
                    rewrote = true;
                }
            }
            if !rewrote {
                eprintln!("--addr has no effect: no spec in the file uses a remote engine");
                std::process::exit(2);
            }
            continue;
        }
        for spec in specs.iter_mut() {
            match flag.as_str() {
                "--rows" => {
                    // A `size` label wins over `rows` at resolution time;
                    // clear it so the explicit flag actually takes effect.
                    spec.rows = parse_usize();
                    spec.size = None;
                }
                "--seed" => spec.seed = parse_usize() as u64,
                "--steps" => spec.steps_per_session = parse_usize(),
                "--workers" => spec.workers = parse_usize(),
                "--think-ms" => {
                    let millis = parse_usize() as u64;
                    spec.think = if millis == 0 {
                        simba_driver::ThinkSpec::None
                    } else {
                        simba_driver::ThinkSpec::Fixed { millis }
                    };
                }
                _ => unreachable!("parse_args only collects known overrides"),
            }
        }
    }
}

/// Load specs from a JSON file holding either one spec object or an array.
/// The first non-whitespace character decides which shape to parse, so a
/// field typo surfaces that shape's diagnostic rather than a misleading
/// "expected array" from the wrong attempt. A single object that is not a
/// `ScenarioSpec` is retried as a `DatagenSweep`, so a dumped
/// `datagen-sweep` file round-trips through `--spec` like any other
/// scenario (the two shapes share no required fields, so this cannot
/// misparse one as the other).
enum SpecFile {
    Suite(Vec<ScenarioSpec>),
    Datagen(DatagenSweep),
}

fn load_spec_file(path: &str) -> SpecFile {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let result = if text.trim_start().starts_with('[') {
        serde_json::from_str::<Vec<ScenarioSpec>>(&text)
            .map(SpecFile::Suite)
            .map_err(|e| e.to_string())
    } else {
        match ScenarioSpec::from_json(&text) {
            Ok(spec) => Ok(SpecFile::Suite(vec![spec])),
            Err(spec_err) => serde_json::from_str::<DatagenSweep>(&text)
                .map(SpecFile::Datagen)
                .map_err(|_| spec_err.to_string()),
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("{path}: invalid scenario spec file: {e}");
        std::process::exit(2);
    })
}

/// Run (or dump) a generation sweep. Shared by `--scenario datagen-sweep`
/// and `--spec <dumped-sweep.json>`; driver-only knobs are rejected rather
/// than silently ignored.
fn run_datagen_scenario(sweep: &DatagenSweep, banner: &str, args: &Args) -> ! {
    if args.engine.is_some() {
        eprintln!("--engine does not apply to a generation sweep");
        std::process::exit(2);
    }
    for (flag, _) in &args.overrides {
        if !matches!(flag.as_str(), "--seed" | "--sizes") {
            eprintln!("{flag} does not apply to a generation sweep (only --seed and --sizes do)");
            std::process::exit(2);
        }
    }
    if args.dump {
        println!(
            "{}",
            serde_json::to_string_pretty(sweep).expect("sweep serializes")
        );
        std::process::exit(0);
    }
    println!("{banner}\n");
    match run_datagen(sweep) {
        Ok(report) => {
            emit_datagen_json(&report);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let params = apply_overrides(params_from_env(ScenarioParams::default()), &args.overrides);

    if args.list {
        println!("built-in scenarios:");
        for sc in all_scenarios(&params) {
            let size = match &sc.body {
                ScenarioBody::Suite(specs) => format!("{} specs", specs.len()),
                ScenarioBody::Datagen(_) => "generation sweep".to_string(),
            };
            // Flag suites whose specs dial out, so nobody launches one
            // without a simba-server listening at the configured addr.
            let external = match &sc.body {
                ScenarioBody::Suite(specs) => {
                    specs.iter().any(|s| s.engine.needs_external_server())
                }
                ScenarioBody::Datagen(_) => false,
            };
            let note = if external {
                format!(" [needs a running simba-server at {}]", params.addr)
            } else {
                String::new()
            };
            println!("  {:<20} {} ({size}){note}", sc.name, sc.description);
        }
        return;
    }

    let (mut specs, banner): (Vec<ScenarioSpec>, String) = match (&args.scenario, &args.spec_file) {
        (Some(name), None) => match scenario(name, &params) {
            Some(sc) => match &sc.body {
                ScenarioBody::Datagen(sweep) => run_datagen_scenario(
                    sweep,
                    &format!("{} — {} (seed {})", sc.name, sc.description, params.seed),
                    &args,
                ),
                ScenarioBody::Suite(suite) => {
                    // A size-tier sweep only parameterizes datagen-sweep;
                    // reject it here rather than silently run the default
                    // row count under a `--sizes 10M` the user trusted.
                    if args.overrides.iter().any(|(f, _)| f == "--sizes") {
                        eprintln!(
                            "--sizes only applies to datagen-sweep (use --rows, or `size` in a spec file)"
                        );
                        std::process::exit(2);
                    }
                    let banner = format!(
                        "{} — {} (rows {}, seed {}, users {:?}, {} steps/session)\n",
                        sc.name,
                        sc.description,
                        params.rows,
                        params.seed,
                        params.users,
                        params.steps
                    );
                    (suite.clone(), banner)
                }
            },
            None => {
                eprintln!(
                    "unknown scenario `{name}`; known: {}",
                    simba_driver::SCENARIO_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        (None, Some(path)) => match load_spec_file(path) {
            SpecFile::Datagen(mut sweep) => {
                // The file is authoritative; only explicit flags override.
                for (flag, value) in &args.overrides {
                    match flag.as_str() {
                        "--seed" => match value.parse() {
                            Ok(seed) => sweep.seed = seed,
                            Err(_) => {
                                eprintln!("invalid value `{value}` for --seed");
                                std::process::exit(2);
                            }
                        },
                        "--sizes" => match simba_bench::scenario_cli::parse_sizes(value) {
                            Some(sizes) => sweep.sizes = sizes,
                            None => {
                                eprintln!("invalid value `{value}` for --sizes");
                                std::process::exit(2);
                            }
                        },
                        _ => {} // rejected inside run_datagen_scenario
                    }
                }
                run_datagen_scenario(&sweep, &format!("datagen sweep from {path}"), &args)
            }
            SpecFile::Suite(mut specs) => {
                apply_spec_overrides(&mut specs, &args.overrides);
                (specs, format!("specs from {path}\n"))
            }
        },
        _ => usage(),
    };

    if let Some(engine) = &args.engine {
        if simba_engine::EngineKind::from_name(engine).is_none() {
            eprintln!("unknown engine `{engine}`");
            std::process::exit(2);
        }
        specs.retain(|s| s.engine.kind_name().eq_ignore_ascii_case(engine));
        if specs.is_empty() {
            eprintln!("no specs left after --engine {engine} filter");
            std::process::exit(1);
        }
    }

    if args.metrics || metrics_from_env() {
        for spec in &mut specs {
            spec.collect_metrics = true;
        }
    }

    if args.dump {
        println!(
            "{}",
            serde_json::to_string_pretty(&specs).expect("specs serialize")
        );
        if specs.iter().any(|s| s.engine.needs_external_server()) {
            eprintln!(
                "note: these specs use remote engines; running them needs a \
                 simba-server listening at each spec's `addr`"
            );
        }
        return;
    }

    let trace_out = resolve_trace_out(args.trace_out.clone());
    if trace_out.is_some() {
        enable_tracing();
    }

    println!("{banner}");
    let suite = run_specs(&specs);
    // Write whatever spans were collected even when a late spec fails, so
    // a partial trace is still there to debug the failure with.
    if let Some(path) = &trace_out {
        write_trace(path);
    }
    // Emit the report JSON before deciding the exit status: a failed or
    // over-budget run is exactly the one someone will want to inspect.
    if !suite.reports.is_empty() {
        emit_json(&suite.reports);
    }
    if let Some(e) = suite.error {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    let max_degraded = args.max_degraded.or_else(max_degraded_from_env);
    if let Some(max) = max_degraded {
        if let Err(e) = check_max_degraded(&suite.reports, max) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
