//! The single benchmark entry point: run any scenario — built-in or from a
//! JSON spec file — through `Driver::execute`.
//!
//! ```text
//! bench --scenario <name> [options]     run a built-in scenario
//! bench --spec <file.json> [options]    run spec(s) from a JSON data file
//! bench --list                          list built-in scenarios
//! bench --scenario <name> --dump        print the expanded specs as JSON
//!
//! Options:
//!   --engine <name>     only run specs for this engine
//!   --rows N            dataset rows            (env SIMBA_ROWS)
//!   --seed N            master seed             (env SIMBA_SEED)
//!   --users a,b,c       concurrent-user sweep   (env SIMBA_USERS)
//!   --steps N           interactions/session    (env SIMBA_STEPS)
//!   --workers N         worker threads, 0=auto  (env SIMBA_WORKERS)
//!   --think-ms N        fixed think time in ms  (env SIMBA_THINK_MS)
//! ```
//!
//! Flags override environment variables, which override scenario defaults.
//! With `--spec`, the file is authoritative: only *explicit flags* override
//! its fields (`--rows`, `--seed`, `--steps`, `--workers`, `--think-ms`
//! rewrite every spec in the file; `--users` is rejected because a sweep
//! does not map onto explicit per-spec session counts), and `SIMBA_*`
//! environment variables are ignored.
//! The full `RunReport` array is printed as JSON (or written to the file
//! named by `SIMBA_JSON_OUT`). Exit status is non-zero if any run fails or
//! produces an empty report.

use simba_bench::scenario_cli::{emit_json, params_from_env, run_specs};
use simba_driver::{all_scenarios, scenario, ScenarioParams, ScenarioSpec};

struct Args {
    scenario: Option<String>,
    spec_file: Option<String>,
    engine: Option<String>,
    list: bool,
    dump: bool,
    overrides: Vec<(String, String)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench --scenario <name> | --spec <file.json> | --list\n\
         \x20      [--engine <name>] [--dump] [--rows N] [--seed N]\n\
         \x20      [--users a,b,c] [--steps N] [--workers N] [--think-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: None,
        spec_file: None,
        engine: None,
        list: false,
        dump: false,
        overrides: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value_for = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("missing value for {name}");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value_for("--scenario")),
            "--spec" => args.spec_file = Some(value_for("--spec")),
            "--engine" => args.engine = Some(value_for("--engine")),
            "--list" => args.list = true,
            "--dump" => args.dump = true,
            "--rows" | "--seed" | "--users" | "--steps" | "--workers" | "--think-ms" => {
                let value = value_for(&flag);
                args.overrides.push((flag, value));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

/// Apply `--rows`-style flag overrides on top of env-derived params.
fn apply_overrides(mut params: ScenarioParams, overrides: &[(String, String)]) -> ScenarioParams {
    for (flag, value) in overrides {
        let parse_usize = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--rows" => params.rows = parse_usize(),
            "--seed" => params.seed = parse_usize() as u64,
            "--steps" => params.steps = parse_usize(),
            "--workers" => params.workers = parse_usize(),
            "--think-ms" => params.think_ms = parse_usize() as u64,
            "--users" => match simba_bench::scenario_cli::parse_users(value) {
                Some(users) => params.users = users,
                None => {
                    eprintln!("invalid value `{value}` for --users");
                    std::process::exit(2);
                }
            },
            _ => unreachable!("parse_args only collects known overrides"),
        }
    }
    params
}

/// Apply explicit flag overrides onto specs loaded from a `--spec` file.
/// The file is the source of truth; only flags the user actually typed
/// rewrite it (env vars are ignored on this path).
fn apply_spec_overrides(specs: &mut [ScenarioSpec], overrides: &[(String, String)]) {
    for (flag, value) in overrides {
        let parse_usize = || -> usize {
            value.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        if flag == "--users" {
            eprintln!("--users cannot be combined with --spec (edit the file's `sessions` fields)");
            std::process::exit(2);
        }
        for spec in specs.iter_mut() {
            match flag.as_str() {
                "--rows" => spec.rows = parse_usize(),
                "--seed" => spec.seed = parse_usize() as u64,
                "--steps" => spec.steps_per_session = parse_usize(),
                "--workers" => spec.workers = parse_usize(),
                "--think-ms" => {
                    let millis = parse_usize() as u64;
                    spec.think = if millis == 0 {
                        simba_driver::ThinkSpec::None
                    } else {
                        simba_driver::ThinkSpec::Fixed { millis }
                    };
                }
                _ => unreachable!("parse_args only collects known overrides"),
            }
        }
    }
}

/// Load specs from a JSON file holding either one spec object or an array.
/// The first non-whitespace character decides which shape to parse, so a
/// field typo surfaces that shape's diagnostic rather than a misleading
/// "expected array" from the wrong attempt.
fn load_spec_file(path: &str) -> Vec<ScenarioSpec> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let result = if text.trim_start().starts_with('[') {
        serde_json::from_str::<Vec<ScenarioSpec>>(&text).map_err(|e| e.to_string())
    } else {
        ScenarioSpec::from_json(&text)
            .map(|spec| vec![spec])
            .map_err(|e| e.to_string())
    };
    result.unwrap_or_else(|e| {
        eprintln!("{path}: invalid scenario spec file: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    let params = apply_overrides(params_from_env(ScenarioParams::default()), &args.overrides);

    if args.list {
        println!("built-in scenarios:");
        for sc in all_scenarios(&params) {
            println!(
                "  {:<20} {} ({} specs)",
                sc.name,
                sc.description,
                sc.specs.len()
            );
        }
        return;
    }

    let (mut specs, banner): (Vec<ScenarioSpec>, String) = match (&args.scenario, &args.spec_file) {
        (Some(name), None) => match scenario(name, &params) {
            Some(sc) => {
                let banner = format!(
                    "{} — {} (rows {}, seed {}, users {:?}, {} steps/session)\n",
                    sc.name, sc.description, params.rows, params.seed, params.users, params.steps
                );
                (sc.specs, banner)
            }
            None => {
                eprintln!(
                    "unknown scenario `{name}`; known: {}",
                    simba_driver::SCENARIO_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        (None, Some(path)) => {
            let mut specs = load_spec_file(path);
            apply_spec_overrides(&mut specs, &args.overrides);
            (specs, format!("specs from {path}\n"))
        }
        _ => usage(),
    };

    if let Some(engine) = &args.engine {
        if simba_engine::EngineKind::from_name(engine).is_none() {
            eprintln!("unknown engine `{engine}`");
            std::process::exit(2);
        }
        specs.retain(|s| s.engine.kind.eq_ignore_ascii_case(engine));
        if specs.is_empty() {
            eprintln!("no specs left after --engine {engine} filter");
            std::process::exit(1);
        }
    }

    if args.dump {
        println!(
            "{}",
            serde_json::to_string_pretty(&specs).expect("specs serialize")
        );
        return;
    }

    println!("{banner}");
    match run_specs(&specs) {
        Ok(reports) => emit_json(&reports),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
