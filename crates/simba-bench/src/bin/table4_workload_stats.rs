//! Table 4: workload-shape statistics (avg ± std of data columns,
//! aggregated columns, and filters per query) for the Customer Service and
//! IT Monitor dashboards, plus the §6.3 SIMBA-vs-IDEBench comparison
//! (SIMBA 3.8 attrs / 5.8 filters vs IDEBench 2.1 / 13.2).

use simba_bench::{build_context, configured_rows, configured_runs, engine_with, harness_seed};
use simba_core::metrics::WorkloadStats;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use simba_idebench::{DashboardComplexity, IdeBenchConfig, IdeBenchRunner};

fn simba_stats(ds: DashboardDataset, rows: usize, runs: u64) -> WorkloadStats {
    let (table, dashboard) = build_context(ds, rows, harness_seed(4));
    let engine = engine_with(EngineKind::DuckDbLike, table);
    let mut shapes = Vec::new();
    for wf in Workflow::ALL {
        let Ok(goals) = wf.goals_for(&dashboard) else {
            continue;
        };
        for seed in 0..runs {
            let config = SessionConfig {
                seed: harness_seed(seed),
                max_steps: 20,
                stop_on_completion: false,
                ..Default::default()
            };
            let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                .run(&goals)
                .expect("session runs");
            for q in log.queries() {
                if let Ok(parsed) = simba_sql::parse_select(&q.sql) {
                    shapes.push(simba_core::metrics::query_shape(&parsed));
                }
            }
        }
    }
    WorkloadStats::from_shapes(&shapes).expect("workload non-empty")
}

fn main() {
    let rows = configured_rows().min(100_000);
    let runs = configured_runs();
    println!("=== Table 4: SIMBA workload statistics ({rows} rows, {runs} runs/workflow) ===\n");
    println!(
        "{:<18} {:>24} {:>24} {:>18}",
        "statistic", "cat+quant data columns", "aggregated columns", "filters"
    );

    let mut simba_all: Vec<(&str, WorkloadStats)> = Vec::new();
    for ds in [
        DashboardDataset::CustomerService,
        DashboardDataset::ItMonitor,
    ] {
        let stats = simba_stats(ds, rows, runs);
        println!(
            "{:<18} {:>17.1} ± {:<4.1} {:>17.1} ± {:<4.1} {:>11.1} ± {:<4.1}",
            ds.table_name(),
            stats.data_columns_avg,
            stats.data_columns_std,
            stats.aggregated_avg,
            stats.aggregated_std,
            stats.filters_avg,
            stats.filters_std
        );
        simba_all.push((ds.table_name(), stats));
    }

    // §6.3 comparison: IDEBench on the IT Monitor dataset.
    let (table, _) = build_context(DashboardDataset::ItMonitor, rows, harness_seed(4));
    let engine = engine_with(EngineKind::DuckDbLike, table.clone());
    let mut ide_attrs = 0.0;
    let mut ide_filters = 0.0;
    let ide_runs = runs.max(3);
    for seed in 0..ide_runs {
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: harness_seed(seed),
                interactions: 25,
                ..Default::default()
            },
        )
        .run()
        .expect("idebench runs");
        let c = DashboardComplexity::from_log(&log);
        ide_attrs += c.avg_attrs_per_viz;
        ide_filters += c.avg_filters_per_query;
    }
    ide_attrs /= ide_runs as f64;
    ide_filters /= ide_runs as f64;

    let simba_it = &simba_all[1].1;
    println!("\n=== §6.3 comparison on IT Monitor (paper: IDEBench 2.1 attrs / 13.2 filters; SIMBA 3.8 / 5.8) ===");
    println!(
        "  SIMBA    : {:.1} data attrs/query, {:.1} filters/query",
        simba_it.data_columns_avg, simba_it.filters_avg
    );
    println!("  IDEBench : {ide_attrs:.1} attrs/viz, {ide_filters:.1} filters/query");
    println!(
        "  shape holds (IDEBench filter-heavy)? {}",
        ide_filters > simba_it.filters_avg
    );
}
