//! Figure 9: the dashboards IDEBench implicitly generates, reverse
//! engineered — 50 workflows over the IT Monitor dataset.
//!
//! Paper numbers to reproduce in shape: avg 13 visualizations (min 7,
//! max 20) vs the real dashboard's 3; an average interaction triggering ~9
//! visualization updates; widely varying per-dashboard performance.

use simba_bench::{build_context, configured_rows, engine_with, fmt_ms, harness_seed};
use simba_core::metrics::DurationSummary;
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use simba_idebench::complexity::FleetComplexity;
use simba_idebench::{DashboardComplexity, IdeBenchConfig, IdeBenchRunner};

fn main() {
    let rows = configured_rows();
    let workflows: u64 = std::env::var("SIMBA_IDEBENCH_WORKFLOWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    println!("=== Figure 9: {workflows} IDEBench workflows on IT Monitor ({rows} rows) ===\n");

    let (table, dashboard) = build_context(DashboardDataset::ItMonitor, rows, harness_seed(4));
    let engine = engine_with(EngineKind::DuckDbLike, table.clone());

    let mut profiles = Vec::new();
    let mut per_run_means = Vec::new();
    for seed in 0..workflows {
        let log = IdeBenchRunner::new(
            &table,
            engine.as_ref(),
            IdeBenchConfig {
                seed: harness_seed(seed),
                interactions: 25,
                ..Default::default()
            },
        )
        .run()
        .expect("idebench runs");
        let summary = DurationSummary::from_durations(&log.durations()).expect("queries ran");
        per_run_means.push((seed, log.dashboard.vizzes.len(), summary));
        profiles.push(DashboardComplexity::from_log(&log));
    }

    let fleet = FleetComplexity::from_runs(&profiles).expect("profiles");
    println!("reverse-engineered dashboard complexity:");
    println!(
        "  visualizations      : avg {:.1} (min {}, max {})   [paper: avg 13, min 7, max 20]",
        fleet.viz_avg, fleet.viz_min, fleet.viz_max
    );
    println!(
        "  updates/interaction : avg {:.1}                      [paper: avg 9, min 1, max 15]",
        fleet.updates_avg
    );
    println!(
        "  attrs per viz       : avg {:.1}                      [paper: 2.1]",
        fleet.attrs_avg
    );
    println!(
        "  filters per query   : avg {:.1}                      [paper: 13.2]",
        fleet.filters_avg
    );
    println!(
        "  real IT Monitor     : {} visualizations",
        dashboard.spec().visualizations.len()
    );

    // Two hand-picked contrasting runs, like the figure's stylized pair.
    per_run_means.sort_by(|a, b| a.2.mean_ms.total_cmp(&b.2.mean_ms));
    let fastest = per_run_means.first().expect("runs");
    let slowest = per_run_means.last().expect("runs");
    println!("\ncontrasting generated dashboards (the figure's two examples):");
    println!(
        "  seed {:>2}: {:>2} visualizations, mean query {} ms",
        fastest.0,
        fastest.1,
        fmt_ms(fastest.2.mean_ms)
    );
    println!(
        "  seed {:>2}: {:>2} visualizations, mean query {} ms",
        slowest.0,
        slowest.1,
        fmt_ms(slowest.2.mean_ms)
    );
    println!(
        "\nhigh variance across runs obscures whether performance differences\n\
         come from the DBMS or from random dashboard design (the paper's point)."
    );
}
