//! §6 headline: the four DBMS architectures across dataset sizes on one
//! fixed workload. Reports mean/p95 latency per engine per size so scaling
//! behavior (who degrades fastest as rows grow) is visible.

use simba_bench::{build_context, engine_with, fmt_ms, harness_seed};
use simba_core::metrics::DurationSummary;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    // Sizes scale with SIMBA_ROWS as the largest: [max/25, max/5, max].
    let max_rows: usize = std::env::var("SIMBA_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);
    let sizes = [max_rows / 25, max_rows / 5, max_rows];
    println!("=== DBMS shootout: Customer Service workload at {sizes:?} rows ===\n");
    println!(
        "{:<10} {:<14} {:>8} {:>10} {:>10} {:>10}",
        "rows", "engine", "queries", "mean ms", "p95 ms", "max ms"
    );

    for rows in sizes {
        let (table, dashboard) =
            build_context(DashboardDataset::CustomerService, rows, harness_seed(3));
        let goals = Workflow::Shneiderman
            .goals_for(&dashboard)
            .expect("compatible");
        let mut means = Vec::new();
        for kind in EngineKind::ALL {
            let engine = engine_with(kind, table.clone());
            let config = SessionConfig {
                seed: harness_seed(17),
                max_steps: 12,
                stop_on_completion: false,
                ..Default::default()
            };
            let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                .run(&goals)
                .expect("session runs");
            let s = DurationSummary::from_durations(&log.durations()).expect("queries ran");
            println!(
                "{:<10} {:<14} {:>8} {} {} {}",
                rows,
                kind.name(),
                s.count,
                fmt_ms(s.mean_ms),
                fmt_ms(s.p95_ms),
                fmt_ms(s.max_ms)
            );
            means.push((kind.name(), s.mean_ms));
        }
        means.sort_by(|a, b| a.1.total_cmp(&b.1));
        let ranked: Vec<&str> = means.iter().map(|(n, _)| *n).collect();
        println!("  -> ranking at {rows} rows: {}", ranked.join(" < "));
        println!();
    }
}
