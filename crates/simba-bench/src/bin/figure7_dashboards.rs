//! Figure 7: per-dashboard query-duration distributions on the
//! vectorized-columnar ("duckdb-like") engine.
//!
//! The paper runs 10M rows and reports wide variation: Supply Chain
//! ("Superstore") slowest with the largest IQR, Circulation Activity / My
//! Ride / Customer Service fastest with little variance. Shapes — who is
//! slow, who has variance — are the reproduction target; absolute numbers
//! depend on scale (`SIMBA_ROWS`).

use simba_bench::{
    ascii_box, build_context, configured_rows, configured_runs, engine_with, fmt_ms, harness_seed,
};
use simba_core::metrics::DurationSummary;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    let rows = configured_rows();
    let runs = configured_runs();
    println!("=== Figure 7: duckdb-like engine, {rows} rows, all dashboards ===\n");
    println!(
        "{:<22} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}  distribution (ms)",
        "dashboard", "queries", "mean", "p50", "p75", "p95", "IQR"
    );

    let mut report = Vec::new();
    for ds in DashboardDataset::ALL {
        let (table, dashboard) = build_context(ds, rows, harness_seed(21));
        let engine = engine_with(EngineKind::DuckDbLike, table);
        let mut durations = Vec::new();
        for wf in Workflow::ALL {
            let Ok(goals) = wf.goals_for(&dashboard) else {
                continue;
            };
            for seed in 0..runs {
                let config = SessionConfig {
                    seed: harness_seed(seed),
                    max_steps: 12,
                    stop_on_completion: true,
                    ..Default::default()
                };
                let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                    .run(&goals)
                    .expect("session runs");
                durations.extend(log.durations());
            }
        }
        let s = DurationSummary::from_durations(&durations).expect("queries ran");
        println!(
            "{:<22} {:>7} {} {} {} {} {}  [{}]",
            dashboard.spec().name,
            s.count,
            fmt_ms(s.mean_ms),
            fmt_ms(s.p50_ms),
            fmt_ms(s.p75_ms),
            fmt_ms(s.p95_ms),
            fmt_ms(s.iqr_ms()),
            ascii_box(&s, 32)
        );
        report.push((dashboard.spec().name.clone(), s));
    }

    // The paper's qualitative claims, checked live.
    let mean_of = |name: &str| {
        report
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.mean_ms)
            .unwrap_or(0.0)
    };
    println!("\nshape checks (paper §6.3):");
    println!(
        "  supply_chain slowest?        {}",
        report
            .iter()
            .all(|(n, s)| n == "supply_chain" || s.mean_ms <= mean_of("supply_chain"))
    );
    println!(
        "  circulation low variance?    IQR={:.3}ms",
        report
            .iter()
            .find(|(n, _)| n == "circulation_activity")
            .map(|(_, s)| s.iqr_ms())
            .unwrap_or(0.0)
    );
}
