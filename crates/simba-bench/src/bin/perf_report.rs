//! `perf_report`: the vectorized-execution performance trajectory.
//!
//! Runs the filtered-aggregate microbenchmark (1M-row table, selective Int
//! predicate, single dict group key — see [`simba_bench::PERF_QUERY`])
//! against the row-at-a-time oracle and every engine, then writes
//! `BENCH_PR2.json` with per-engine p50/p99 latency and the speedup over
//! the row path. It then runs the dataset-generation throughput sweep
//! (`datagen-sweep`: every dashboard dataset × the paper grid × 1/N
//! generation threads) and writes `BENCH_PR5.json`. Future PRs append
//! their own `BENCH_PR<n>.json`, giving the repo a perf trajectory that
//! survives refactors.
//!
//! Environment: `SIMBA_ROWS` (default 1,000,000), `SIMBA_RUNS` (timed
//! iterations per configuration, default 21), `SIMBA_SEED`, `SIMBA_SIZES`
//! (datagen size tiers, default the paper grid), `SIMBA_GEN_THREADS`
//! (comma-separated datagen thread sweep, default `1,cores`),
//! `SIMBA_SKIP_DATAGEN=1` to skip the sweep.

use serde::Serialize;
use simba_bench::scenario_cli::{parse_sizes, run_datagen};
use simba_bench::{configured_seed, PERF_QUERY};
use simba_driver::DatagenSweep;
use simba_engine::{execute_row_oracle, Dbms, DuckDbLike, EngineKind};
use simba_sql::parse_select;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Quantiles {
    p50_ms: f64,
    p99_ms: f64,
    min_ms: f64,
}

#[derive(Serialize)]
struct EngineReport {
    name: String,
    scan_threads: usize,
    latency: Quantiles,
    /// Median-latency speedup over the row-at-a-time oracle.
    speedup_vs_row_p50: f64,
}

#[derive(Serialize)]
struct PerfReport {
    rows: usize,
    query: String,
    iterations: usize,
    seed: u64,
    /// The row-at-a-time oracle (shared `run_row` path).
    row_path: Quantiles,
    engines: Vec<EngineReport>,
}

fn quantiles(samples: &mut [f64]) -> Quantiles {
    samples.sort_by(f64::total_cmp);
    let at = |q: f64| {
        let idx = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[idx]
    };
    Quantiles {
        p50_ms: at(0.50),
        p99_ms: at(0.99),
        min_ms: samples[0],
    }
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1_000.0
}

fn measure(iters: usize, mut f: impl FnMut()) -> Quantiles {
    f(); // warm-up (also builds zone maps on first touch)
    let mut samples: Vec<f64> = (0..iters).map(|_| time_ms(&mut f)).collect();
    quantiles(&mut samples)
}

fn main() {
    let rows: usize = std::env::var("SIMBA_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let iters: usize = std::env::var("SIMBA_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let seed = configured_seed();

    eprintln!("perf_report: building {rows}-row table (seed {seed})…");
    let table = simba_bench::synthetic_perf_table(rows, seed);
    let query = parse_select(PERF_QUERY).expect("microbench query parses");

    let oracle_result = execute_row_oracle(table.clone(), &query)
        .expect("oracle executes")
        .result;

    let row_path = measure(iters, || {
        let out = execute_row_oracle(table.clone(), &query).expect("oracle executes");
        std::hint::black_box(out.result.n_rows());
    });
    eprintln!(
        "row path: p50 {:.3}ms  p99 {:.3}ms",
        row_path.p50_ms, row_path.p99_ms
    );

    let parallel_threads = std::thread::available_parallelism().map_or(1, usize::from);
    let mut engines: Vec<(Arc<dyn Dbms>, usize)> =
        EngineKind::ALL.iter().map(|k| (k.build(), 1)).collect();
    if parallel_threads > 1 {
        engines.push((
            Arc::new(DuckDbLike::with_scan_threads(parallel_threads)) as Arc<dyn Dbms>,
            parallel_threads,
        ));
    }

    let mut reports = Vec::new();
    for (engine, threads) in &engines {
        engine.register(table.clone());
        // Sanity: the measured configuration must agree with the oracle.
        let check = engine.execute(&query).expect("engine executes");
        assert!(
            check.result.multiset_eq(&oracle_result),
            "{} disagrees with the row oracle on the microbench query",
            engine.name()
        );
        let latency = measure(iters, || {
            let out = engine.execute(&query).expect("engine executes");
            std::hint::black_box(out.result.n_rows());
        });
        let speedup = row_path.p50_ms / latency.p50_ms;
        let name = if *threads > 1 {
            format!("{} (parallel)", engine.name())
        } else {
            engine.name().to_string()
        };
        eprintln!(
            "{name:<24} p50 {:>9.3}ms  p99 {:>9.3}ms  speedup vs row {speedup:.1}x",
            latency.p50_ms, latency.p99_ms
        );
        reports.push(EngineReport {
            name,
            scan_threads: *threads,
            latency,
            speedup_vs_row_p50: speedup,
        });
    }

    let report = PerfReport {
        rows,
        query: PERF_QUERY.to_string(),
        iterations: iters,
        seed,
        row_path,
        engines: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    println!("{json}");
    eprintln!("wrote BENCH_PR2.json");

    if std::env::var("SIMBA_SKIP_DATAGEN").is_ok_and(|v| v == "1") {
        eprintln!("SIMBA_SKIP_DATAGEN=1: skipping the generation sweep");
        return;
    }

    // Strict parse: a typo must not silently drop the 1-thread baseline
    // (or collapse to the default sweep) in a checked-in artifact.
    let gen_threads: Vec<usize> = match std::env::var("SIMBA_GEN_THREADS") {
        Err(_) => Vec::new(),
        Ok(s) => s
            .split(',')
            .map(|p| {
                p.trim().parse().unwrap_or_else(|_| {
                    eprintln!("invalid SIMBA_GEN_THREADS entry `{p}` (expected integers)");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    let sweep = DatagenSweep {
        datasets: Vec::new(),
        sizes: std::env::var("SIMBA_SIZES")
            .ok()
            .and_then(|s| parse_sizes(&s))
            .unwrap_or_default(),
        threads: gen_threads,
        seed,
    };
    eprintln!("\ndatagen sweep: datasets x sizes x generation threads…");
    let datagen = run_datagen(&sweep).expect("datagen sweep runs");
    let json = serde_json::to_string_pretty(&datagen).expect("report serializes");
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    eprintln!("wrote BENCH_PR5.json");
}
