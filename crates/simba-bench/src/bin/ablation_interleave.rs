//! Ablation: the interleaving model (§4.3 / §6.5 takeaways).
//!
//! Runs the same dashboard + goals with P(Markov) pinned to 1 (pure
//! IDEBench-style randomness), the decaying mix (SIMBA's default), and 0
//! (pure Oracle). Reports goal completion, session length, and the
//! zero-result statistics that §6.4's experts keyed on — quantifying why
//! the interleaved design is the sweet spot.

use simba_bench::{build_context, configured_rows, engine_with, harness_seed};
use simba_core::metrics::realism::empty_result_stats;
use simba_core::session::interleave::DecayConfig;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;

fn main() {
    let rows = configured_rows().min(100_000);
    let sessions = 6u64;
    println!(
        "=== Interleaving ablation: Customer Service, {rows} rows, {sessions} sessions each ===\n"
    );

    let (table, dashboard) =
        build_context(DashboardDataset::CustomerService, rows, harness_seed(8));
    let engine = engine_with(EngineKind::DuckDbLike, table);
    let goals = Workflow::Crossfilter
        .goals_for(&dashboard)
        .expect("compatible");

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>14}",
        "model mix", "goals met", "avg steps", "avg queries", "empty inter."
    );

    let profiles: [(&str, DecayConfig); 3] = [
        ("pure Markov (P=1)", DecayConfig::markov_only()),
        ("decaying mix", DecayConfig::typical()),
        ("pure Oracle (P=0)", DecayConfig::oracle_only()),
    ];

    for (name, decay) in profiles {
        let mut goals_met = 0usize;
        let mut steps = 0usize;
        let mut queries = 0usize;
        let mut empty = 0usize;
        for seed in 0..sessions {
            let config = SessionConfig {
                seed: harness_seed(seed),
                max_steps: 30,
                decay,
                stop_on_completion: true,
                ..Default::default()
            };
            let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                .run(&goals)
                .expect("session runs");
            goals_met += log.goals.iter().filter(|g| g.solved_at.is_some()).count();
            steps += log.interaction_count();
            queries += log.query_count();
            empty += empty_result_stats(&log).empty_interactions;
        }
        println!(
            "{:<22} {:>7}/{:<4} {:>12.1} {:>12.1} {:>14}",
            name,
            goals_met,
            sessions as usize * goals.len(),
            steps as f64 / sessions as f64,
            queries as f64 / sessions as f64,
            empty
        );
    }

    println!(
        "\nexpected shape: pure Markov meets few goals and emits empty views;\n\
         pure Oracle is efficient but robotic; the decaying mix meets goals\n\
         while exploring — the behavior §6.4's experts found realistic."
    );
}
