//! Figure 8: query-duration distributions grouped by workflow and
//! dashboard.
//!
//! Paper findings to reproduce in shape: the Shneiderman workflow is the
//! cheapest across dashboards; dashboards with few attributes and similar
//! visualizations (Circulation Activity) barely vary across workflows,
//! while Customer Service varies significantly.

use simba_bench::{
    build_context, configured_rows, configured_runs, engine_with, fmt_ms, harness_seed,
};
use simba_core::metrics::DurationSummary;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use std::collections::BTreeMap;

fn main() {
    let rows = configured_rows();
    let runs = configured_runs();
    println!("=== Figure 8: durations by workflow x dashboard ({rows} rows) ===\n");
    println!(
        "{:<22} {:<14} {:>7} {:>9} {:>9} {:>9}",
        "dashboard", "workflow", "queries", "mean", "p50", "p95"
    );

    let mut per_workflow: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for ds in DashboardDataset::ALL {
        let (table, dashboard) = build_context(ds, rows, harness_seed(33));
        let engine = engine_with(EngineKind::DuckDbLike, table);
        for wf in Workflow::ALL {
            let Ok(goals) = wf.goals_for(&dashboard) else {
                println!(
                    "{:<22} {:<14} {:>7}",
                    dashboard.spec().name,
                    wf.name(),
                    "n/a"
                );
                continue;
            };
            let mut durations = Vec::new();
            for seed in 0..runs {
                let config = SessionConfig {
                    seed: harness_seed(seed + 100),
                    max_steps: 12,
                    stop_on_completion: true,
                    ..Default::default()
                };
                let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
                    .run(&goals)
                    .expect("session runs");
                durations.extend(log.durations());
            }
            let s = DurationSummary::from_durations(&durations).expect("queries ran");
            println!(
                "{:<22} {:<14} {:>7} {} {} {}",
                dashboard.spec().name,
                wf.name(),
                s.count,
                fmt_ms(s.mean_ms),
                fmt_ms(s.p50_ms),
                fmt_ms(s.p95_ms)
            );
            per_workflow.entry(wf.name()).or_default().push(s.mean_ms);
        }
    }

    println!("\nper-workflow mean of means (paper: Shneiderman lowest):");
    for (wf, means) in &per_workflow {
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        println!("  {:<14} {:.3} ms over {} dashboards", wf, avg, means.len());
    }
}
