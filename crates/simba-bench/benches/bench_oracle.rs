//! Criterion benchmark: one Oracle planning step (§4.1's LookAhead),
//! including the candidate-query executions it performs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simba_core::dashboard::Dashboard;
use simba_core::equivalence::augment_result;
use simba_core::oracle::{Oracle, OracleConfig};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use simba_sql::parse_select;
use simba_store::CoverageStore;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 20_000;

fn bench_oracle(c: &mut Criterion) {
    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(ROWS, 9));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    let goal = parse_select("SELECT queue, COUNT(lost_calls) FROM customer_service GROUP BY queue")
        .unwrap();
    let goal_result = engine.execute(&goal).unwrap().result;
    let state = dashboard.initial_state();
    let mut coverage = CoverageStore::new();
    for (_, q) in dashboard.all_queries(&state) {
        let out = engine.execute(&q).unwrap();
        coverage.absorb(&augment_result(&q, out.result));
    }

    let mut group = c.benchmark_group("oracle_plan_step");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, config) in [
        (
            "depth1_c16",
            OracleConfig {
                depth: 1,
                max_candidates: 16,
                beam_width: 3,
            },
        ),
        (
            "depth1_c48",
            OracleConfig {
                depth: 1,
                max_candidates: 48,
                beam_width: 3,
            },
        ),
        (
            "depth2_c16",
            OracleConfig {
                depth: 2,
                max_candidates: 16,
                beam_width: 3,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            let oracle = Oracle::new(cfg.clone());
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(3);
                oracle
                    .plan_next(
                        &dashboard,
                        &state,
                        engine.as_ref(),
                        &coverage,
                        &[&goal_result],
                        &mut rng,
                    )
                    .unwrap()
                    .map(|s| s.score)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
