//! Vectorized vs row-at-a-time execution on the filtered-aggregate
//! microbenchmark (selection-vector kernels, zone-map pruning, typed
//! aggregation). Scale with `SIMBA_ROWS` (default 100k at bench scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simba_bench::{synthetic_perf_table, PERF_QUERY};
use simba_engine::{execute_row_oracle, Dbms, DuckDbLike, EngineKind};
use simba_sql::parse_select;
use std::sync::Arc;
use std::time::Duration;

fn bench_rows() -> usize {
    std::env::var("SIMBA_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
}

fn bench_filtered_aggregate(c: &mut Criterion) {
    let rows = bench_rows();
    let table = synthetic_perf_table(rows, 0);
    let query = parse_select(PERF_QUERY).unwrap();

    let mut group = c.benchmark_group(format!("filtered_aggregate/{rows}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("row_oracle", |b| {
        b.iter(|| {
            black_box(
                execute_row_oracle(table.clone(), &query)
                    .unwrap()
                    .result
                    .n_rows(),
            )
        })
    });
    for kind in EngineKind::ALL {
        let engine = kind.build();
        engine.register(table.clone());
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(engine.execute(&query).unwrap().result.n_rows()))
        });
    }
    let parallel = DuckDbLike::with_scan_threads(0);
    let threads = parallel.scan_threads();
    parallel.register(table.clone());
    group.bench_function(format!("duckdb-like/threads={threads}"), |b| {
        b.iter(|| black_box(parallel.execute(&query).unwrap().result.n_rows()))
    });
    group.finish();
}

fn bench_selective_projection(c: &mut Criterion) {
    let rows = bench_rows();
    let table = synthetic_perf_table(rows, 0);
    let query = parse_select("SELECT queue, calls FROM perf WHERE calls > 990").unwrap();

    let mut group = c.benchmark_group(format!("selective_projection/{rows}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("row_oracle", |b| {
        b.iter(|| {
            black_box(
                execute_row_oracle(table.clone(), &query)
                    .unwrap()
                    .result
                    .n_rows(),
            )
        })
    });
    for kind in EngineKind::ALL {
        let engine = kind.build();
        engine.register(table.clone());
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(engine.execute(&query).unwrap().result.n_rows()))
        });
    }
    group.finish();
}

fn bench_zone_map_pruning(c: &mut Criterion) {
    let rows = bench_rows();
    let table = synthetic_perf_table(rows, 0);
    // Impossible predicate: every morsel pruned by its zone.
    let query = parse_select("SELECT COUNT(*) FROM perf WHERE calls > 100000").unwrap();
    let engine: Arc<dyn Dbms> = Arc::new(DuckDbLike::new());
    engine.register(table.clone());
    engine.execute(&query).unwrap(); // build zone maps outside the timing

    let mut group = c.benchmark_group(format!("zone_pruned_scan/{rows}"));
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("duckdb-like", |b| {
        b.iter(|| black_box(engine.execute(&query).unwrap().result.n_rows()))
    });
    group.bench_function("row_oracle", |b| {
        b.iter(|| {
            black_box(
                execute_row_oracle(table.clone(), &query)
                    .unwrap()
                    .result
                    .n_rows(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_filtered_aggregate,
    bench_selective_projection,
    bench_zone_map_pruning
);
criterion_main!(benches);
