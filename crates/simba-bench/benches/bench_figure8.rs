//! Criterion counterpart of Figure 8: sessions per workflow on one
//! dashboard, measuring how goal sequences change workload cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simba_core::dashboard::Dashboard;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 20_000;

fn bench_figure8(c: &mut Criterion) {
    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(ROWS, 33));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    let mut group = c.benchmark_group("figure8_workflows");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for wf in Workflow::ALL {
        let goals = wf.goals_for(&dashboard).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(wf.name()),
            &goals,
            |b, goals| {
                b.iter(|| {
                    let config = SessionConfig {
                        seed: 2,
                        max_steps: 6,
                        stop_on_completion: true,
                        ..Default::default()
                    };
                    SessionRunner::new(&dashboard, engine.as_ref(), config)
                        .run(goals)
                        .unwrap()
                        .query_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
