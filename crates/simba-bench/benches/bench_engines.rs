//! Criterion microbenchmarks: the four engine architectures on fixed
//! dashboard-shaped queries (supports the §6 engine comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simba_data::DashboardDataset;
use simba_engine::{Dbms, EngineKind};
use simba_sql::parse_select;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 50_000;

fn queries() -> Vec<(&'static str, simba_sql::Select)> {
    [
        ("stat", "SELECT COUNT(lost_calls) FROM customer_service"),
        (
            "filtered_stat",
            "SELECT SUM(abandoned), COUNT(calls) FROM customer_service WHERE queue IN ('A')",
        ),
        (
            "group_1key",
            "SELECT queue, COUNT(calls) FROM customer_service GROUP BY queue",
        ),
        (
            "group_3key",
            "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
             GROUP BY queue, hour, call_direction",
        ),
        (
            "range_filter",
            "SELECT rep_id, AVG(handle_time) FROM customer_service \
             WHERE hour BETWEEN 9 AND 17 GROUP BY rep_id",
        ),
    ]
    .iter()
    .map(|(name, sql)| (*name, parse_select(sql).unwrap()))
    .collect()
}

fn bench_engines(c: &mut Criterion) {
    let table = Arc::new(DashboardDataset::CustomerService.generate_rows(ROWS, 42));
    let engines: Vec<(EngineKind, Arc<dyn Dbms>)> = EngineKind::ALL
        .into_iter()
        .map(|k| {
            let e = k.build();
            e.register(table.clone());
            (k, e)
        })
        .collect();

    let mut group = c.benchmark_group("engines");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (name, query) in queries() {
        for (kind, engine) in &engines {
            group.bench_with_input(BenchmarkId::new(name, kind.name()), &query, |b, q| {
                b.iter(|| engine.execute(q).unwrap().result.n_rows())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
