//! Criterion counterpart of Figure 7: one session per dashboard on the
//! duckdb-like engine, measuring end-to-end session wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simba_core::dashboard::Dashboard;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 20_000;

fn bench_figure7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_sessions");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for ds in DashboardDataset::ALL {
        let table = Arc::new(ds.generate_rows(ROWS, 21));
        let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table);
        let Ok(goals) = Workflow::Shneiderman.goals_for(&dashboard) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(ds.table_name()),
            &goals,
            |b, goals| {
                b.iter(|| {
                    let config = SessionConfig {
                        seed: 1,
                        max_steps: 6,
                        stop_on_completion: true,
                        ..Default::default()
                    };
                    SessionRunner::new(&dashboard, engine.as_ref(), config)
                        .run(goals)
                        .unwrap()
                        .query_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure7);
criterion_main!(benches);
