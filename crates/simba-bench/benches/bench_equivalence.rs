//! Criterion microbenchmarks for the equivalence suite (§4.1.2) —
//! the cost ladder syntactic < semantic < result that justifies checking in
//! that order.

use criterion::{criterion_group, criterion_main, Criterion};
use simba_core::equivalence::{semantic_equivalent, semantically_subsumes, syntactic_equivalent};
use simba_sql::implication::implies;
use simba_sql::normalize::NormalizedSelect;
use simba_sql::{parse_expr, parse_select};
use simba_store::{CoverageStore, ResultSet, Value};
use std::time::Duration;

fn bench_equivalence(c: &mut Criterion) {
    let goal = parse_select(
        "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
         WHERE queue IN ('A', 'B') AND hour BETWEEN 9 AND 17 \
         GROUP BY queue, hour, call_direction HAVING COUNT(calls) > 10",
    )
    .unwrap();
    let other = parse_select(
        "SELECT COUNT(calls), call_direction, hour, queue FROM customer_service \
         WHERE hour BETWEEN 9 AND 17 AND queue IN ('B', 'A') \
         GROUP BY queue, hour, call_direction HAVING COUNT(calls) > 10",
    )
    .unwrap();

    let mut group = c.benchmark_group("equivalence");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("syntactic", |b| {
        b.iter(|| syntactic_equivalent(&goal, &other))
    });
    group.bench_function("semantic_equal", |b| {
        b.iter(|| semantic_equivalent(&goal, &other))
    });
    group.bench_function("semantic_subsumes", |b| {
        b.iter(|| semantically_subsumes(&other, &goal))
    });
    group.bench_function("normalize", |b| {
        b.iter(|| NormalizedSelect::from_select(&goal))
    });

    let p = parse_expr("queue IN ('A') AND hour >= 9 AND hour <= 12 AND calls > 3").unwrap();
    let q = parse_expr("queue IN ('A', 'B') AND hour BETWEEN 0 AND 23").unwrap();
    group.bench_function("implication", |b| b.iter(|| implies(&p, &q)));

    // Result equivalence: coverage over a thousand-row goal result.
    let rows: Vec<Vec<Value>> = (0..1000)
        .map(|i| vec![Value::str(format!("q{}", i % 4)), Value::Int(i)])
        .collect();
    let goal_result = ResultSet::new(vec!["queue".into(), "n".into()], rows.clone());
    let mut coverage = CoverageStore::new();
    coverage.absorb(&ResultSet::new(vec!["queue".into(), "n".into()], rows));
    group.bench_function("result_coverage_1k", |b| {
        b.iter(|| coverage.covered_rows(&goal_result))
    });
    group.finish();
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
