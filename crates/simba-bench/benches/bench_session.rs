//! Criterion benchmark: full SIMBA sessions and IDEBench runs at matched
//! interaction counts — the end-to-end cost of each benchmarking approach.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simba_core::dashboard::Dashboard;
use simba_core::session::interleave::DecayConfig;
use simba_core::session::workflows::Workflow;
use simba_core::session::{SessionConfig, SessionRunner};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_engine::EngineKind;
use simba_idebench::{IdeBenchConfig, IdeBenchRunner};
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 20_000;

fn bench_session(c: &mut Criterion) {
    let ds = DashboardDataset::ItMonitor;
    let table = Arc::new(ds.generate_rows(ROWS, 8));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table.clone());
    let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();

    let mut group = c.benchmark_group("session");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for (label, decay) in [
        ("simba_markov", DecayConfig::markov_only()),
        ("simba_mixed", DecayConfig::typical()),
        ("simba_oracle", DecayConfig::oracle_only()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &decay, |b, d| {
            b.iter(|| {
                let config = SessionConfig {
                    seed: 5,
                    max_steps: 6,
                    decay: *d,
                    stop_on_completion: false,
                    ..Default::default()
                };
                SessionRunner::new(&dashboard, engine.as_ref(), config)
                    .run(&goals)
                    .unwrap()
                    .query_count()
            })
        });
    }

    group.bench_function("idebench_run", |b| {
        b.iter(|| {
            IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                IdeBenchConfig {
                    seed: 5,
                    interactions: 6,
                    ..Default::default()
                },
            )
            .run()
            .unwrap()
            .queries()
            .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
