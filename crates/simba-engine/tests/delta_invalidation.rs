//! Invalidation regression suite for the session-delta store, driven
//! through the public `Dbms::execute_delta` surface of the columnar engine.
//!
//! Tables are immutable once registered; growth happens by assembling a new
//! table (`TableAssembler` appends) and re-registering it under the same
//! name, which bumps the catalog generation. These tests pin the two
//! consequences the delta store must honour:
//!
//! * retained selections die on re-register **and** on append — a cached
//!   selection indexes rows of a table that no longer exists;
//! * a register racing an in-flight delta-reusing query can never blend
//!   snapshots: every result is exactly what one published table produces.

use simba_engine::{Dbms, EngineKind, SessionDelta};
use simba_sql::parse_select;
use simba_store::{ColumnDef, Schema, Table, TableAssembler, TableBuilder, TableChunk, Value};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::quantitative_int("a"),
            ColumnDef::categorical("q"),
        ],
    )
}

/// `rows` rows with `a = start..start+rows`, `q` cycling over 3 groups.
fn chunk(start: i64, rows: usize) -> TableChunk {
    let mut b = TableBuilder::new(schema(), rows);
    for i in 0..rows as i64 {
        let v = start + i;
        b.push_row(vec![Value::Int(v), Value::str(format!("g{}", v % 3))]);
    }
    TableChunk::new(b.finish_parts().1)
}

/// Assemble a table of `n_chunks` × `chunk_rows` rows through the append
/// path — the same route `simba-data`'s chunked generator publishes growth.
fn assembled(n_chunks: usize, chunk_rows: usize) -> Table {
    let mut asm = TableAssembler::new(schema(), n_chunks * chunk_rows);
    for c in 0..n_chunks {
        asm.append_chunk(chunk((c * chunk_rows) as i64, chunk_rows));
    }
    asm.finish()
}

fn count(engine: &dyn Dbms, delta: &mut SessionDelta, sql: &str) -> (i64, usize) {
    let q = parse_select(sql).unwrap();
    let out = engine.execute_delta(&q, delta).unwrap();
    let rows = out.result.sorted_rows();
    let Value::Int(n) = rows[0][0] else {
        panic!("COUNT(*) did not produce an Int: {rows:?}");
    };
    (n, out.stats.delta_hits)
}

/// Appending to a table (re-registering the grown assembly) must kill every
/// retained entry: the follow-up refinement sees the appended rows instead
/// of seeding from the pre-append selection.
#[test]
fn append_invalidates_retained_selections() {
    let engine = EngineKind::DuckDbLike.build();
    engine.register(Arc::new(assembled(1, 2048)));
    let mut delta = SessionDelta::default();

    let (n, hits) = count(&*engine, &mut delta, "SELECT COUNT(*) FROM t WHERE a >= 0");
    assert_eq!((n, hits), (2048, 0));
    assert_eq!(delta.len(), 1);

    // Grow the table by two appended chunks and publish it.
    engine.register(Arc::new(assembled(3, 2048)));

    // A strict refinement of the cached WHERE: a stale seed would cap the
    // count at the pre-append survivors.
    let (n, hits) = count(
        &*engine,
        &mut delta,
        "SELECT COUNT(*) FROM t WHERE a >= 0 AND a < 3000",
    );
    assert_eq!(hits, 0, "stale pre-append selection must not seed");
    assert_eq!(n, 3000, "appended rows missing from the result");
    assert_eq!(delta.stats().invalidations, 1);

    // The post-append capture chains normally again.
    let (n, hits) = count(
        &*engine,
        &mut delta,
        "SELECT COUNT(*) FROM t WHERE a >= 0 AND a < 3000 AND a < 100",
    );
    assert_eq!((n, hits), (100, 1), "fresh chain must resume reuse");
}

/// Same-name re-register with *shrunk* contents: the cached selection holds
/// indices past the new table's row count — reuse would be out-of-bounds,
/// not merely stale.
#[test]
fn shrinking_reregister_invalidates_out_of_range_selections() {
    let engine = EngineKind::DuckDbLike.build();
    engine.register(Arc::new(assembled(4, 2048)));
    let mut delta = SessionDelta::default();

    count(
        &*engine,
        &mut delta,
        "SELECT COUNT(*) FROM t WHERE a >= 4096",
    );
    engine.register(Arc::new(assembled(1, 2048)));

    let (n, hits) = count(
        &*engine,
        &mut delta,
        "SELECT COUNT(*) FROM t WHERE a >= 4096 AND a < 8192",
    );
    assert_eq!((n, hits), (0, 0));
    assert_eq!(delta.stats().invalidations, 1);
}

/// Race an append/re-register thread against an in-flight delta-reusing
/// query stream. Each published table `k` holds exactly `k * 2048` rows all
/// satisfying the chain's predicates, so every correct answer is a multiple
/// of 2048 within the published range — a blended snapshot (seed from one
/// table, scan of another) or a stale seed would produce a count outside
/// that set.
#[test]
fn register_racing_inflight_delta_queries_never_blends_snapshots() {
    let engine = EngineKind::DuckDbLike.build();
    const CHUNK: usize = 2048;
    const VERSIONS: usize = 12;
    engine.register(Arc::new(assembled(1, CHUNK)));

    let publisher = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for k in 2..=VERSIONS {
                engine.register(Arc::new(assembled(k, CHUNK)));
                std::thread::yield_now();
            }
        })
    };

    let mut delta = SessionDelta::default();
    let mut total_hits = 0;
    for i in 0..200 {
        // Alternate between the chain base and strict refinements of it so
        // the store keeps seeding whenever the catalog sits still.
        let sql = if i % 2 == 0 {
            "SELECT COUNT(*) FROM t WHERE a >= 0".to_string()
        } else {
            format!(
                "SELECT COUNT(*) FROM t WHERE a >= 0 AND a < {}",
                VERSIONS * CHUNK
            )
        };
        let (n, hits) = count(&*engine, &mut delta, &sql);
        total_hits += hits;
        assert!(
            n > 0 && n % CHUNK as i64 == 0 && n <= (VERSIONS * CHUNK) as i64,
            "query {i} observed a blended or stale snapshot: count={n}"
        );
    }
    publisher.join().unwrap();

    // After the publisher settles, the chain must both reuse and agree with
    // a plain fresh execution of the final table.
    let (n, _) = count(&*engine, &mut delta, "SELECT COUNT(*) FROM t WHERE a >= 0");
    let (n2, hits2) = count(
        &*engine,
        &mut delta,
        "SELECT COUNT(*) FROM t WHERE a >= 0 AND a >= 1",
    );
    assert_eq!(n, (VERSIONS * CHUNK) as i64);
    assert_eq!(n2, n - 1);
    assert_eq!(hits2, 1, "settled catalog must seed refinements again");
    assert!(
        total_hits > 0 || delta.stats().invalidations > 0,
        "race test exercised neither reuse nor invalidation"
    );
}
