//! Fuzz the subsumption checker against ground truth: every `is_refinement`
//! verdict is validated against the row oracle's *actual* result sets.
//!
//! `is_refinement(next, prev) == true` is a proof obligation — the delta
//! path trusts it to seed `next`'s scan from `prev`'s surviving rows, so a
//! verdict whose result set is **not** contained in the previous one is a
//! hard failure (silently wrong query results in production), while a
//! missed refinement merely costs a rescan. The tables here are generated
//! with NULL-heavy columns and dictionary-encoded (categorical) strings,
//! the two encodings where three-valued logic and code-space comparisons
//! most easily part ways with value-space reasoning.

use proptest::prelude::*;
use simba_engine::execute_row_oracle;
use simba_sql::{delta_key, is_refinement, BinOp, Expr, Select, SelectItem};
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};
use std::collections::HashMap;
use std::sync::Arc;

const QUEUES: &[&str] = &["A", "B", "C", "D"];
const REGIONS: &[&str] = &["north", "south", "east", "west"];

#[derive(Debug, Clone)]
struct Row {
    queue: Option<&'static str>,
    region: Option<&'static str>,
    calls: Option<i64>,
    cost: Option<f64>,
}

/// NULL-heavy on purpose: a 40% NULL rate on `calls` and 25% on the
/// dictionary columns keeps three-valued edge cases in every table.
fn row_strategy() -> impl Strategy<Value = Row> {
    (
        proptest::option::weighted(0.75, proptest::sample::select(QUEUES)),
        proptest::option::weighted(0.75, proptest::sample::select(REGIONS)),
        proptest::option::weighted(0.6, -10i64..20),
        proptest::option::weighted(0.8, -3.0f64..12.0),
    )
        .prop_map(|(queue, region, calls, cost)| Row {
            queue,
            region,
            calls,
            cost,
        })
}

fn build_table(rows: &[Row]) -> Table {
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::categorical("region"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
        ],
    );
    let mut b = TableBuilder::new(schema, rows.len());
    for r in rows {
        b.push_row(vec![
            r.queue.map_or(Value::Null, Value::from),
            r.region.map_or(Value::Null, Value::from),
            r.calls.map_or(Value::Null, Value::Int),
            r.cost.map_or(Value::Null, Value::Float),
        ]);
    }
    b.finish()
}

/// Random atomic predicate over a small constant universe so predicate
/// pairs overlap often enough for `is_refinement` to return `true`.
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        proptest::sample::subsequence(QUEUES.to_vec(), 1..=3)
            .prop_map(|vs| Expr::in_strs("queue", vs)),
        proptest::sample::select(REGIONS)
            .prop_map(|r| { Expr::binary(Expr::col("region"), BinOp::Eq, Expr::str(r)) }),
        (
            -10i64..20,
            proptest::sample::select(vec![
                BinOp::Lt,
                BinOp::LtEq,
                BinOp::Gt,
                BinOp::GtEq,
                BinOp::Eq,
                BinOp::NotEq,
            ])
        )
            .prop_map(|(v, op)| Expr::binary(Expr::col("calls"), op, Expr::int(v))),
        (-3i64..8, 0i64..8).prop_map(|(lo, w)| Expr::Between {
            expr: Box::new(Expr::col("calls")),
            low: Box::new(Expr::int(lo)),
            high: Box::new(Expr::int(lo + w)),
            negated: false,
        }),
        (
            proptest::sample::select(vec!["queue", "calls"]),
            any::<bool>()
        )
            .prop_map(|(c, neg)| Expr::IsNull {
                expr: Box::new(Expr::col(c)),
                negated: neg,
            }),
    ]
}

/// A bare projection of every column under a random conjunctive WHERE, so
/// the result set *is* the surviving row set.
fn select_with(preds: Vec<Expr>) -> Select {
    let mut select = Select::new(
        "t",
        ["queue", "region", "calls", "cost"]
            .iter()
            .map(|c| SelectItem::bare(Expr::col(*c)))
            .collect(),
    );
    select.where_clause = Expr::conjoin(preds);
    select
}

fn query_strategy() -> impl Strategy<Value = Select> {
    proptest::collection::vec(predicate_strategy(), 0..=3).prop_map(select_with)
}

/// Multiset of surviving rows, keyed by debug representation (stable for
/// values that went through the same execution pipeline).
fn row_multiset(table: &Arc<Table>, q: &Select) -> HashMap<String, usize> {
    let out = execute_row_oracle(Arc::clone(table), q).unwrap();
    let mut counts = HashMap::new();
    for row in out.result.sorted_rows() {
        *counts.entry(format!("{row:?}")).or_insert(0) += 1;
    }
    counts
}

fn is_sub_multiset(sub: &HashMap<String, usize>, sup: &HashMap<String, usize>) -> bool {
    sub.iter().all(|(k, n)| sup.get(k).is_some_and(|m| m >= n))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Soundness: a `true` verdict means `next`'s surviving rows are a
    /// sub-multiset of `prev`'s — checked against the row oracle, not the
    /// implication engine's own reasoning.
    #[test]
    fn refinement_verdicts_imply_result_containment(
        rows in proptest::collection::vec(row_strategy(), 0..120),
        next in query_strategy(),
        prev in query_strategy(),
    ) {
        if is_refinement(&next, &prev) {
            let table = Arc::new(build_table(&rows));
            let next_rows = row_multiset(&table, &next);
            let prev_rows = row_multiset(&table, &prev);
            prop_assert!(
                is_sub_multiset(&next_rows, &prev_rows),
                "refinement verdict without containment:\n  next: {}\n  prev: {}",
                next, prev
            );
        }
    }

    /// Every query is a refinement of itself (the exact-requery fast path
    /// depends on this holding for the whole generated fragment).
    #[test]
    fn refinement_is_reflexive(q in query_strategy()) {
        prop_assert!(is_refinement(&q, &q), "`{}` must refine itself", q);
    }

    /// Key soundness: equal `delta_key`s promise interchangeable surviving
    /// row sets, so equal keys must mean equal result multisets.
    #[test]
    fn equal_delta_keys_mean_equal_row_sets(
        rows in proptest::collection::vec(row_strategy(), 0..120),
        a in query_strategy(),
        b in query_strategy(),
    ) {
        if delta_key(&a) == delta_key(&b) {
            let table = Arc::new(build_table(&rows));
            let ra = row_multiset(&table, &a);
            let rb = row_multiset(&table, &b);
            prop_assert_eq!(
                ra, rb,
                "equal delta keys with different row sets: `{}` vs `{}`", a, b
            );
        }
    }
}
