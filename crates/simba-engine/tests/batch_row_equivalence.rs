//! Property test: the vectorized batch path is byte-identical to the
//! row-at-a-time oracle.
//!
//! The batch kernels, zone-map pruning, and typed aggregation states are
//! only admissible because they change *nothing* about results: every
//! engine's output must match `execute_row_oracle` value-for-value — same
//! variants, same float bit patterns — across NULL-heavy columns, morsel
//! boundaries, and morsels emptied (or pruned) by selective predicates.

use proptest::prelude::*;
use simba_engine::{all_engines, execute_row_oracle, Dbms, DuckDbLike};
use simba_sql::{BinOp, Expr, Func, Select, SelectItem};
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value, MORSEL_ROWS};
use std::cmp::Ordering;
use std::sync::Arc;

const QUEUES: &[&str] = &["A", "B", "C", "D"];

/// Bitwise value equality: `Int(3)` ≠ `Float(3.0)`, floats compare by bits.
fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

/// Canonical row order: the total order, tie-broken by type rank so that a
/// numerically-equal `Int`/`Float` pair cannot swap positions between runs.
fn canon_cmp(a: &[Value], b: &[Value]) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
    for (x, y) in a.iter().zip(b) {
        let ord = x.cmp(y).then_with(|| rank(x).cmp(&rank(y)));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Assert an engine output is byte-identical to the oracle output, modulo
/// group emission order (both sides are canonically sorted first).
fn assert_byte_identical(name: &str, select: &Select, engine: &dyn Dbms, table: &Arc<Table>) {
    let oracle = execute_row_oracle(table.clone(), select).expect("oracle executes");
    let out = engine.execute(select).expect("engine executes");
    assert_eq!(
        out.result.columns, oracle.result.columns,
        "{name}: column names differ on `{select}`"
    );
    assert_eq!(
        out.stats.rows_matched, oracle.stats.rows_matched,
        "{name}: rows_matched differs on `{select}` (pruning must not change matches)"
    );
    let mut got = out.result.rows.clone();
    let mut want = oracle.result.rows.clone();
    got.sort_by(|a, b| canon_cmp(a, b));
    want.sort_by(|a, b| canon_cmp(a, b));
    assert_eq!(
        got.len(),
        want.len(),
        "{name}: row count differs on `{select}`"
    );
    for (g, w) in got.iter().zip(&want) {
        let same = g.len() == w.len() && g.iter().zip(w).all(|(a, b)| strict_eq(a, b));
        assert!(
            same,
            "{name}: rows differ on `{select}`:\n  engine: {g:?}\n  oracle: {w:?}"
        );
    }
}

#[derive(Debug, Clone)]
struct Row {
    queue: Option<&'static str>,
    calls: Option<i64>,
    cost: Option<f64>,
    ts: i64,
}

/// NULL-heavy rows: every nullable column is NULL half the time.
fn row_strategy() -> impl Strategy<Value = Row> {
    (
        proptest::option::weighted(0.5, proptest::sample::select(QUEUES)),
        proptest::option::weighted(0.5, -50i64..500),
        proptest::option::weighted(0.5, -10.0f64..50.0),
        1_600_000_000i64..1_600_400_000,
    )
        .prop_map(|(queue, calls, cost, ts)| Row {
            queue,
            calls,
            cost,
            ts,
        })
}

fn build_table(rows: &[Row]) -> Arc<Table> {
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
            ColumnDef::temporal("ts"),
        ],
    );
    let mut b = TableBuilder::new(schema, rows.len());
    for r in rows {
        b.push_row(vec![
            r.queue.map_or(Value::Null, Value::from),
            r.calls.map_or(Value::Null, Value::Int),
            r.cost.map_or(Value::Null, Value::Float),
            Value::Int(r.ts),
        ]);
    }
    Arc::new(b.finish())
}

fn predicate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        proptest::sample::subsequence(QUEUES.to_vec(), 1..=2)
            .prop_map(|vs| Expr::in_strs("queue", vs)),
        (
            -50i64..500,
            proptest::sample::select(vec![
                BinOp::Lt,
                BinOp::LtEq,
                BinOp::Gt,
                BinOp::GtEq,
                BinOp::Eq,
                BinOp::NotEq
            ])
        )
            .prop_map(|(v, op)| Expr::binary(Expr::col("calls"), op, Expr::int(v))),
        (-10.0f64..40.0, 0.0f64..20.0).prop_map(|(lo, width)| Expr::Between {
            expr: Box::new(Expr::col("cost")),
            low: Box::new(Expr::float(lo)),
            high: Box::new(Expr::float(lo + width)),
            negated: false,
        }),
        Just(Expr::IsNull {
            expr: Box::new(Expr::col("calls")),
            negated: false
        }),
    ]
}

/// Aggregates with typed fast paths *and* ones that force the generic
/// accumulator fallback, mixed freely.
fn aggregate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::count_star()),
        Just(Expr::agg(Func::Count, Expr::col("calls"))),
        Just(Expr::agg(Func::Sum, Expr::col("calls"))),
        Just(Expr::agg(Func::Sum, Expr::col("cost"))),
        Just(Expr::agg(Func::Avg, Expr::col("calls"))),
        Just(Expr::agg(Func::Avg, Expr::col("cost"))),
        Just(Expr::agg(Func::Min, Expr::col("calls"))),
        Just(Expr::agg(Func::Max, Expr::col("cost"))),
        Just(Expr::Function {
            func: Func::Count,
            args: vec![Expr::col("queue")],
            distinct: true
        }),
        // SUM over a computed argument: no typed path, generic per-row eval.
        Just(Expr::agg(
            Func::Sum,
            Expr::binary(Expr::col("calls"), BinOp::Add, Expr::int(1))
        )),
    ]
}

fn aggregate_query_strategy() -> impl Strategy<Value = Select> {
    (
        proptest::sample::subsequence(vec!["queue", "calls"], 0..=2),
        proptest::collection::vec(aggregate_strategy(), 1..=3),
        proptest::collection::vec(predicate_strategy(), 0..=3),
    )
        .prop_map(|(groups, aggs, preds)| {
            let mut projections: Vec<SelectItem> = groups
                .iter()
                .map(|g| SelectItem::bare(Expr::col(*g)))
                .collect();
            projections.extend(aggs.into_iter().map(SelectItem::bare));
            let mut select = Select::new("t", projections);
            select.group_by = groups.iter().map(|g| Expr::col(*g)).collect();
            if let Some(w) = Expr::conjoin(preds) {
                select.where_clause = Some(w);
            }
            select
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn every_engine_is_byte_identical_to_row_oracle_on_aggregates(
        rows in proptest::collection::vec(row_strategy(), 0..250),
        select in aggregate_query_strategy(),
    ) {
        let table = build_table(&rows);
        for engine in all_engines() {
            engine.register(table.clone());
            assert_byte_identical(engine.name(), &select, engine.as_ref(), &table);
        }
    }

    #[test]
    fn every_engine_is_byte_identical_to_row_oracle_on_projections(
        rows in proptest::collection::vec(row_strategy(), 0..250),
        preds in proptest::collection::vec(predicate_strategy(), 0..=3),
    ) {
        let mut select = Select::new(
            "t",
            vec![
                SelectItem::bare(Expr::col("queue")),
                SelectItem::bare(Expr::col("calls")),
                SelectItem::bare(Expr::col("cost")),
            ],
        );
        if let Some(w) = Expr::conjoin(preds) {
            select.where_clause = Some(w);
        }
        let table = build_table(&rows);
        for engine in all_engines() {
            engine.register(table.clone());
            assert_byte_identical(engine.name(), &select, engine.as_ref(), &table);
        }
    }
}

/// Build a table spanning several morsels: morsel 0 mixed, morsel 1 entirely
/// NULL in the numeric columns (an all-NULL zone the scan prunes), morsel 2
/// partial. Exercises boundary alignment, pruned morsels, and morsels
/// emptied by selective filters.
fn multi_morsel_table() -> Arc<Table> {
    let n = MORSEL_ROWS * 2 + 500;
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
            ColumnDef::temporal("ts"),
        ],
    );
    let mut b = TableBuilder::new(schema, n);
    for i in 0..n {
        let in_null_morsel = (MORSEL_ROWS..2 * MORSEL_ROWS).contains(&i);
        let queue = QUEUES[i % QUEUES.len()];
        if in_null_morsel {
            b.push_row(vec![
                Value::str(queue),
                Value::Null,
                Value::Null,
                Value::Int(1_600_000_000 + i as i64),
            ]);
        } else {
            b.push_row(vec![
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::str(queue)
                },
                Value::Int((i % 1000) as i64),
                Value::Float((i % 97) as f64 * 0.5),
                Value::Int(1_600_000_000 + i as i64),
            ]);
        }
    }
    Arc::new(b.finish())
}

#[test]
fn multi_morsel_byte_identity_with_pruning_and_parallelism() {
    let table = multi_morsel_table();
    let queries = [
        // Selective: empties some morsels, prunes the all-NULL one.
        "SELECT queue, COUNT(*), SUM(calls), MIN(calls), MAX(calls) \
         FROM t WHERE calls > 900 GROUP BY queue",
        // Unfiltered typed aggregation across all morsels.
        "SELECT queue, COUNT(*), AVG(cost), SUM(cost) FROM t GROUP BY queue",
        // Global aggregate with an impossible predicate: every morsel pruned
        // or emptied, still exactly one output row.
        "SELECT COUNT(*), SUM(calls) FROM t WHERE calls > 100000",
        // Projection crossing morsel boundaries.
        "SELECT queue, calls FROM t WHERE calls >= 995",
    ];
    let mut engines = all_engines();
    engines.push(Arc::new(DuckDbLike::with_scan_threads(3)));
    for sql in queries {
        let select = simba_sql::parse_select(sql).unwrap();
        for engine in &engines {
            engine.register(table.clone());
            // Float SUM/AVG under the parallel scan may associate partial
            // sums differently; the parallel engine only sees the queries
            // whose aggregates are exact.
            if engine.scan_threads() > 1 && sql.contains("cost") {
                continue;
            }
            assert_byte_identical(engine.name(), &select, engine.as_ref(), &table);
        }
    }
}

#[test]
fn empty_table_byte_identity() {
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
            ColumnDef::temporal("ts"),
        ],
    );
    let table = Arc::new(TableBuilder::new(schema, 0).finish());
    for sql in [
        "SELECT COUNT(*), SUM(calls) FROM t",
        "SELECT queue, COUNT(*) FROM t GROUP BY queue",
        "SELECT queue, calls FROM t WHERE calls > 0",
    ] {
        let select = simba_sql::parse_select(sql).unwrap();
        for engine in all_engines() {
            engine.register(table.clone());
            assert_byte_identical(engine.name(), &select, engine.as_ref(), &table);
        }
    }
}
