use simba_engine::delta::SessionDelta;
use simba_engine::{Dbms, DuckDbLike};
use simba_sql::parse_select;
use simba_store::{ColumnDef, Schema, TableBuilder, Value};
use std::sync::Arc;

fn engine() -> DuckDbLike {
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::quantitative_int("a"),
            ColumnDef::categorical("q"),
            ColumnDef::quantitative_float("v"),
        ],
    );
    let mut b = TableBuilder::new(schema, 10_000);
    for i in 0..10_000i64 {
        b.push_row(vec![
            Value::Int(i % 97),
            Value::str(format!("g{}", i % 7)),
            Value::Float((i % 13) as f64 * 0.5),
        ]);
    }
    let e = DuckDbLike::new();
    e.register(Arc::new(b.finish()));
    e
}

#[test]
fn order_by_agg_swap() {
    let e = engine();
    let mut delta = SessionDelta::default();
    let q1 = "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q ORDER BY SUM(v) DESC LIMIT 3";
    let q2 = "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q ORDER BY MIN(v) DESC LIMIT 3";
    let o1 = e
        .execute_delta(&parse_select(q1).unwrap(), &mut delta)
        .unwrap();
    let o2 = e
        .execute_delta(&parse_select(q2).unwrap(), &mut delta)
        .unwrap();
    let fresh2 = e.execute(&parse_select(q2).unwrap()).unwrap();
    eprintln!("o1 {:?}", o1.result);
    eprintln!("delta o2 {:?} (group_hits={})", o2.result, o2.stats.delta_group_hits);
    eprintln!("fresh o2 {:?}", fresh2.result);
    assert_eq!(o2.result, fresh2.result, "ORDER BY agg swap corrupted replay");
}

#[test]
fn having_conjunct_order_swap() {
    let e = engine();
    let mut delta = SessionDelta::default();
    let q1 = "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q HAVING SUM(v) > 8000 AND MIN(v) >= 0";
    let q2 = "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q HAVING MIN(v) >= 0 AND SUM(v) > 8000";
    let o1 = e
        .execute_delta(&parse_select(q1).unwrap(), &mut delta)
        .unwrap();
    let o2 = e
        .execute_delta(&parse_select(q2).unwrap(), &mut delta)
        .unwrap();
    let fresh2 = e.execute(&parse_select(q2).unwrap()).unwrap();
    eprintln!("o1 rows={}", o1.result.rows().len());
    eprintln!("delta o2 rows={} (group_hits={})", o2.result.rows().len(), o2.stats.delta_group_hits);
    eprintln!("fresh o2 rows={}", fresh2.result.rows().len());
    assert_eq!(o2.result, fresh2.result, "HAVING conjunct order corrupted replay");
}
