//! Property test: the four engines agree on every query.
//!
//! This is the load-bearing property of the DBMS substrate (DESIGN.md §3):
//! the engines may differ arbitrarily in latency, but must be
//! indistinguishable in results. We generate random tables and random
//! queries from the dashboard fragment and require multiset-equal outputs.

use proptest::prelude::*;
use simba_engine::all_engines;
use simba_sql::{BinOp, Expr, Func, Literal, Select, SelectItem};
use simba_store::{ColumnDef, Schema, Table, TableBuilder, Value};
use std::sync::Arc;

const QUEUES: &[&str] = &["A", "B", "C", "D"];
const REGIONS: &[&str] = &["north", "south", "east", "west", "central"];

#[derive(Debug, Clone)]
struct Row {
    queue: Option<&'static str>,
    region: Option<&'static str>,
    calls: Option<i64>,
    cost: Option<f64>,
    ts: i64,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        proptest::option::weighted(0.9, proptest::sample::select(QUEUES)),
        proptest::option::weighted(0.9, proptest::sample::select(REGIONS)),
        proptest::option::weighted(0.9, -20i64..100),
        proptest::option::weighted(0.9, -5.0f64..50.0),
        1_600_000_000i64..1_610_000_000,
    )
        .prop_map(|(queue, region, calls, cost, ts)| Row {
            queue,
            region,
            calls,
            cost,
            ts,
        })
}

fn build_table(rows: &[Row]) -> Table {
    let schema = Schema::new(
        "t",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::categorical("region"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::quantitative_float("cost"),
            ColumnDef::temporal("ts"),
        ],
    );
    let mut b = TableBuilder::new(schema, rows.len());
    for r in rows {
        b.push_row(vec![
            r.queue.map_or(Value::Null, Value::from),
            r.region.map_or(Value::Null, Value::from),
            r.calls.map_or(Value::Null, Value::Int),
            r.cost.map_or(Value::Null, Value::Float),
            Value::Int(r.ts),
        ]);
    }
    b.finish()
}

/// One random WHERE conjunct.
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // queue IN (subset)
        proptest::sample::subsequence(QUEUES.to_vec(), 1..=3)
            .prop_map(|vs| Expr::in_strs("queue", vs)),
        // region equality
        proptest::sample::select(REGIONS).prop_map(|r| Expr::binary(
            Expr::col("region"),
            BinOp::Eq,
            Expr::str(r)
        )),
        // numeric comparison on calls
        (
            -20i64..100,
            proptest::sample::select(vec![
                BinOp::Lt,
                BinOp::LtEq,
                BinOp::Gt,
                BinOp::GtEq,
                BinOp::Eq,
                BinOp::NotEq
            ])
        )
            .prop_map(|(v, op)| Expr::binary(Expr::col("calls"), op, Expr::int(v))),
        // cost range
        (-5.0f64..25.0, 0.0f64..25.0).prop_map(|(lo, width)| Expr::Between {
            expr: Box::new(Expr::col("cost")),
            low: Box::new(Expr::float(lo)),
            high: Box::new(Expr::float(lo + width)),
            negated: false,
        }),
        // null checks
        Just(Expr::IsNull {
            expr: Box::new(Expr::col("calls")),
            negated: false
        }),
        Just(Expr::IsNull {
            expr: Box::new(Expr::col("queue")),
            negated: true
        }),
        // date-part filter
        (0i64..24).prop_map(|h| Expr::binary(Expr::agg_free_hour(), BinOp::Eq, Expr::int(h))),
    ]
}

trait HourExt {
    fn agg_free_hour() -> Expr;
}

impl HourExt for Expr {
    fn agg_free_hour() -> Expr {
        Expr::Function {
            func: Func::Hour,
            args: vec![Expr::col("ts")],
            distinct: false,
        }
    }
}

/// One random aggregate projection.
fn aggregate_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::count_star()),
        Just(Expr::agg(Func::Count, Expr::col("calls"))),
        Just(Expr::Function {
            func: Func::Count,
            args: vec![Expr::col("queue")],
            distinct: true
        }),
        Just(Expr::agg(Func::Sum, Expr::col("calls"))),
        Just(Expr::agg(Func::Avg, Expr::col("cost"))),
        Just(Expr::agg(Func::Min, Expr::col("calls"))),
        Just(Expr::agg(Func::Max, Expr::col("cost"))),
    ]
}

#[derive(Debug, Clone)]
struct QueryCase {
    select: Select,
}

fn query_strategy() -> impl Strategy<Value = QueryCase> {
    let group_cols = proptest::sample::subsequence(vec!["queue", "region"], 0..=2);
    (
        group_cols,
        proptest::collection::vec(aggregate_strategy(), 1..=3),
        proptest::collection::vec(predicate_strategy(), 0..=3),
        proptest::option::of(1i64..3),
    )
        .prop_map(|(groups, aggs, preds, having_min)| {
            let mut projections: Vec<SelectItem> = groups
                .iter()
                .map(|g| SelectItem::bare(Expr::col(*g)))
                .collect();
            projections.extend(aggs.into_iter().map(SelectItem::bare));
            let mut select = Select::new("t", projections);
            select.group_by = groups.iter().map(|g| Expr::col(*g)).collect();
            if let Some(w) = Expr::conjoin(preds) {
                select.where_clause = Some(w);
            }
            if let Some(min) = having_min {
                if !select.group_by.is_empty() {
                    select.having = Some(Expr::binary(
                        Expr::count_star(),
                        BinOp::GtEq,
                        Expr::Literal(Literal::Int(min)),
                    ));
                }
            }
            QueryCase { select }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_on_aggregates(
        rows in proptest::collection::vec(row_strategy(), 0..200),
        case in query_strategy(),
    ) {
        let table = Arc::new(build_table(&rows));
        let engines = all_engines();
        let mut outputs = Vec::new();
        for e in &engines {
            e.register(table.clone());
            let out = e.execute(&case.select);
            prop_assert!(out.is_ok(), "{} failed: {:?} on {}", e.name(), out.err(), case.select);
            outputs.push((e.name(), out.unwrap().result));
        }
        let (base_name, base) = &outputs[0];
        for (name, rs) in &outputs[1..] {
            prop_assert!(
                base.multiset_eq(rs),
                "{} and {} disagree on `{}`:\n{:?}\nvs\n{:?}",
                base_name, name, case.select, base.sorted_rows(), rs.sorted_rows()
            );
        }
    }

    #[test]
    fn engines_agree_on_projections(
        rows in proptest::collection::vec(row_strategy(), 0..200),
        preds in proptest::collection::vec(predicate_strategy(), 0..=3),
    ) {
        let mut select = Select::new(
            "t",
            vec![
                SelectItem::bare(Expr::col("queue")),
                SelectItem::bare(Expr::col("calls")),
                SelectItem::bare(Expr::col("cost")),
            ],
        );
        if let Some(w) = Expr::conjoin(preds) {
            select.where_clause = Some(w);
        }
        let table = Arc::new(build_table(&rows));
        let engines = all_engines();
        let mut outputs = Vec::new();
        for e in &engines {
            e.register(table.clone());
            outputs.push((e.name(), e.execute(&select).unwrap().result));
        }
        let (base_name, base) = &outputs[0];
        for (name, rs) in &outputs[1..] {
            prop_assert!(
                base.multiset_eq(rs),
                "{} and {} disagree on `{}`", base_name, name, select
            );
        }
    }

    #[test]
    fn parsed_and_built_queries_agree(
        rows in proptest::collection::vec(row_strategy(), 0..100),
        case in query_strategy(),
    ) {
        // Round-tripping the query through SQL text must not change results.
        let table = Arc::new(build_table(&rows));
        let engine = simba_engine::EngineKind::DuckDbLike.build();
        engine.register(table);
        let direct = engine.execute(&case.select).unwrap().result;
        let sql = case.select.to_string();
        let reparsed = simba_sql::parse_select(&sql).unwrap();
        let via_text = engine.execute(&reparsed).unwrap().result;
        prop_assert!(direct.multiset_eq(&via_text), "text round-trip changed results for `{sql}`");
    }
}
