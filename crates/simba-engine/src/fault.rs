//! Deterministic chaos: a [`Dbms`] wrapper that injects faults from a
//! seeded per-query RNG.
//!
//! Real engines under dashboard load hiccup, drop connections, and time
//! out; a benchmark that never sees a failure cannot claim to measure
//! resilience. [`FaultInjectingDbms`] wraps any engine and, per execution
//! attempt, may inject:
//!
//! * a **latency spike** — sleep before running the query (drives the
//!   driver's deadline/timeout path);
//! * a **transient error** — [`EngineError::Transient`], the retryable
//!   kind;
//! * a **permanent error** — [`EngineError::Invalid`], which retrying can
//!   only repeat;
//! * a **panic** — an unwind out of `execute`, for exercising
//!   panic-recovery in callers.
//!
//! # Determinism contract
//!
//! Every decision is a pure function of
//! `(FaultConfig::seed, QueryCtx { session, step, query, attempt })` — no
//! wall clock, no shared mutable state, no thread identity. Two runs with
//! the same seed and spec inject byte-identical fault sequences regardless
//! of worker count or interleaving, and a retry (same position, `attempt +
//! 1`) re-rolls rather than deterministically re-failing. Calls through the
//! plain [`Dbms::execute`] entry point (no context) use the zero context,
//! so ad-hoc callers still get reproducible — if positionally
//! indistinguishable — faults.

use crate::{Dbms, EngineError, QueryCtx, QueryOutput};
use simba_sql::Select;
use simba_store::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fault mix of a [`FaultInjectingDbms`]. The default injects nothing, so a
/// wrapped engine behaves byte-identically to the bare one.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed the per-query RNG mixes with the execution context.
    pub seed: u64,
    /// Probability of sleeping [`latency_spike`](Self::latency_spike)
    /// before executing (independent of the error draw).
    pub latency_spike_prob: f64,
    /// Injected sleep duration for a latency spike.
    pub latency_spike: Duration,
    /// Probability of failing with a retryable [`EngineError::Transient`].
    pub transient_error_prob: f64,
    /// Probability of failing with a permanent [`EngineError::Invalid`].
    pub permanent_error_prob: f64,
    /// Probability of panicking out of `execute`.
    pub panic_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            latency_spike_prob: 0.0,
            latency_spike: Duration::ZERO,
            transient_error_prob: 0.0,
            permanent_error_prob: 0.0,
            panic_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// Does this config ever inject anything?
    pub fn is_active(&self) -> bool {
        self.latency_spike_prob > 0.0
            || self.transient_error_prob > 0.0
            || self.permanent_error_prob > 0.0
            || self.panic_prob > 0.0
    }
}

/// Monotonic injection counters, snapshot via
/// [`FaultInjectingDbms::stats`]. Counts what the wrapper *injected*; what
/// the driver observed (after caching, coalescing, retries) is reported
/// separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Latency spikes slept.
    pub latency_spikes: u64,
    /// Transient errors returned.
    pub transient_errors: u64,
    /// Permanent errors returned.
    pub permanent_errors: u64,
    /// Panics raised.
    pub panics: u64,
}

/// Payload of an injected panic, so panic-recovery code can tell a chaos
/// fault from a genuine engine bug when it cares to downcast.
#[derive(Debug, Clone)]
pub struct InjectedPanic {
    /// The execution context the panic was injected at.
    pub ctx: QueryCtx,
}

/// SplitMix64: the tiny, high-quality mixer used across the workspace for
/// seed derivation. Local copy — this crate must not depend on simba-core.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A minimal deterministic generator over the splitmix64 stream. Enough
/// randomness for Bernoulli fault draws; crucially, zero dependencies and
/// a trivially auditable determinism story.
struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeded from the fault seed and the full execution context, each
    /// field passed through the mixer so low-entropy inputs (small session
    /// and step indices) land far apart in the stream.
    fn for_ctx(seed: u64, ctx: &QueryCtx) -> FaultRng {
        let mut state = splitmix64(seed ^ 0xC4A0_5FA0_17E5_D001);
        for part in [ctx.session, ctx.step, ctx.query, ctx.attempt as u64] {
            state = splitmix64(state ^ splitmix64(part.wrapping_add(1)));
        }
        FaultRng { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, 1)` (53 mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What the fault draw decided for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injected {
    None,
    Transient,
    Permanent,
    Panic,
}

/// A [`Dbms`] wrapper injecting deterministic faults around any inner
/// engine. Reports the inner engine's name and scan parallelism so
/// per-engine breakdowns stay stable.
pub struct FaultInjectingDbms {
    inner: Arc<dyn Dbms>,
    config: FaultConfig,
    latency_spikes: AtomicU64,
    transient_errors: AtomicU64,
    permanent_errors: AtomicU64,
    panics: AtomicU64,
}

/// Install (once, process-wide) a panic-hook filter that suppresses the
/// default "thread panicked" report for [`InjectedPanic`] payloads — they
/// are expected, recovered by the driver, and would otherwise flood stderr
/// with one backtrace per injected fault. Every other panic still reaches
/// the previous hook untouched.
fn silence_injected_panic_reports() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

impl FaultInjectingDbms {
    /// Wrap `inner` under `config`. Constructing a wrapper that can panic
    /// also quiets the default panic report for its own injected panics.
    pub fn new(inner: Arc<dyn Dbms>, config: FaultConfig) -> FaultInjectingDbms {
        if config.panic_prob > 0.0 {
            silence_injected_panic_reports();
        }
        FaultInjectingDbms {
            inner,
            config,
            latency_spikes: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            permanent_errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Arc<dyn Dbms> {
        &self.inner
    }

    /// The fault mix this wrapper was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Snapshot the injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            permanent_errors: self.permanent_errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }

    /// The error-kind decision for one context: a single uniform draw
    /// against cumulative probability bands (panic, then permanent, then
    /// transient), so the three error kinds are mutually exclusive per
    /// attempt and their rates add.
    fn decide(&self, ctx: &QueryCtx) -> (Injected, bool) {
        let mut rng = FaultRng::for_ctx(self.config.seed, ctx);
        let error_draw = rng.next_f64();
        let spike_draw = rng.next_f64();
        let panic_band = self.config.panic_prob;
        let permanent_band = panic_band + self.config.permanent_error_prob;
        let transient_band = permanent_band + self.config.transient_error_prob;
        let injected = if error_draw < panic_band {
            Injected::Panic
        } else if error_draw < permanent_band {
            Injected::Permanent
        } else if error_draw < transient_band {
            Injected::Transient
        } else {
            Injected::None
        };
        let spike = spike_draw < self.config.latency_spike_prob;
        (injected, spike)
    }
}

impl Dbms for FaultInjectingDbms {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn scan_threads(&self) -> usize {
        self.inner.scan_threads()
    }

    fn register(&self, table: Arc<Table>) {
        self.inner.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        self.execute_at(query, &QueryCtx::default())
    }

    fn execute_at(&self, query: &Select, ctx: &QueryCtx) -> Result<QueryOutput, EngineError> {
        if !self.config.is_active() {
            return self.inner.execute_at(query, ctx);
        }
        let (injected, spike) = self.decide(ctx);
        if spike {
            self.latency_spikes.fetch_add(1, Ordering::Relaxed);
            simba_obs::counter!("fault.latency_spikes").add(1);
            std::thread::sleep(self.config.latency_spike);
        }
        match injected {
            Injected::None => self.inner.execute_at(query, ctx),
            Injected::Transient => {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("fault.transient_errors").add(1);
                Err(EngineError::Transient(format!(
                    "injected transient fault (session {} step {} query {} attempt {})",
                    ctx.session, ctx.step, ctx.query, ctx.attempt
                )))
            }
            Injected::Permanent => {
                self.permanent_errors.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("fault.permanent_errors").add(1);
                Err(EngineError::Invalid(format!(
                    "injected permanent fault (session {} step {} query {})",
                    ctx.session, ctx.step, ctx.query
                )))
            }
            Injected::Panic => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("fault.panics").add(1);
                std::panic::panic_any(InjectedPanic { ctx: *ctx });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    fn small_table() -> Arc<Table> {
        let schema = Schema::new("t", vec![ColumnDef::quantitative_int("x")]);
        let mut b = TableBuilder::new(schema, 8);
        for i in 0..8 {
            b.push_row(vec![Value::Int(i)]);
        }
        Arc::new(b.finish())
    }

    fn wrapped(config: FaultConfig) -> FaultInjectingDbms {
        let inner = EngineKind::SqliteLike.build();
        inner.register(small_table());
        FaultInjectingDbms::new(inner, config)
    }

    fn query() -> Select {
        simba_sql::parse_select("SELECT COUNT(*) FROM t").unwrap()
    }

    #[test]
    fn inactive_config_is_transparent() {
        let db = wrapped(FaultConfig::default());
        assert!(!db.config().is_active());
        let out = db.execute(&query()).unwrap();
        assert_eq!(out.result.rows, vec![vec![Value::Int(8)]]);
        assert_eq!(db.stats(), FaultStats::default());
        assert_eq!(db.name(), "sqlite-like", "wrapper reports the inner name");
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_ctx() {
        let config = FaultConfig {
            seed: 42,
            transient_error_prob: 0.3,
            permanent_error_prob: 0.1,
            panic_prob: 0.0,
            latency_spike_prob: 0.2,
            latency_spike: Duration::ZERO,
        };
        let a = wrapped(config.clone());
        let b = wrapped(config);
        let q = query();
        for session in 0..4u64 {
            for step in 0..16u64 {
                for attempt in 0..3u32 {
                    let ctx = QueryCtx {
                        session,
                        step,
                        query: 0,
                        attempt,
                    };
                    let ra = a.execute_at(&q, &ctx).map(|o| o.result.rows);
                    let rb = b.execute_at(&q, &ctx).map(|o| o.result.rows);
                    assert_eq!(ra, rb, "ctx {ctx:?}");
                }
            }
        }
        assert_eq!(a.stats(), b.stats());
        let s = a.stats();
        assert!(
            s.transient_errors > 0 && s.permanent_errors > 0 && s.latency_spikes > 0,
            "192 draws at these rates must inject every configured kind: {s:?}"
        );
    }

    #[test]
    fn retry_rerolls_instead_of_refailing() {
        let config = FaultConfig {
            seed: 7,
            transient_error_prob: 0.5,
            ..Default::default()
        };
        let db = wrapped(config);
        let q = query();
        // Find a position whose first attempt fails, then check some later
        // attempt of the same position succeeds: the rng must include the
        // attempt counter, or retries would be pointless.
        let mut saw_recovery = false;
        for step in 0..32u64 {
            let first = db.execute_at(
                &q,
                &QueryCtx {
                    session: 0,
                    step,
                    query: 0,
                    attempt: 0,
                },
            );
            if first.is_ok() {
                continue;
            }
            for attempt in 1..8u32 {
                let retry = db.execute_at(
                    &q,
                    &QueryCtx {
                        session: 0,
                        step,
                        query: 0,
                        attempt,
                    },
                );
                if retry.is_ok() {
                    saw_recovery = true;
                    break;
                }
            }
            if saw_recovery {
                break;
            }
        }
        assert!(saw_recovery, "some failed position must recover on retry");
    }

    #[test]
    fn certain_probabilities_always_fire() {
        let transient = wrapped(FaultConfig {
            transient_error_prob: 1.0,
            ..Default::default()
        });
        let err = transient.execute(&query()).unwrap_err();
        assert!(err.is_transient(), "{err}");

        let permanent = wrapped(FaultConfig {
            permanent_error_prob: 1.0,
            ..Default::default()
        });
        let err = permanent.execute(&query()).unwrap_err();
        assert!(!err.is_transient(), "{err}");

        let panicking = wrapped(FaultConfig {
            panic_prob: 1.0,
            ..Default::default()
        });
        let q = query();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = panicking.execute(&q);
        }))
        .unwrap_err();
        assert!(
            unwound.downcast_ref::<InjectedPanic>().is_some(),
            "injected panics carry their context"
        );
        assert_eq!(panicking.stats().panics, 1);
    }

    #[test]
    fn error_kinds_are_mutually_exclusive_bands() {
        // panic + permanent + transient = 1.0: every attempt fails, split
        // across the three kinds, never more than one per attempt.
        let db = wrapped(FaultConfig {
            seed: 3,
            transient_error_prob: 0.4,
            permanent_error_prob: 0.3,
            panic_prob: 0.3,
            ..Default::default()
        });
        let q = query();
        let attempts = 64u64;
        for step in 0..attempts {
            let ctx = QueryCtx {
                session: 1,
                step,
                query: 0,
                attempt: 0,
            };
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.execute_at(&q, &ctx)));
            if let Ok(Ok(_)) = outcome {
                panic!("probabilities sum to 1: step {step} cannot succeed");
            }
        }
        let s = db.stats();
        assert_eq!(
            s.transient_errors + s.permanent_errors + s.panics,
            attempts,
            "exactly one fault per attempt: {s:?}"
        );
        assert!(s.transient_errors > 0 && s.permanent_errors > 0 && s.panics > 0);
    }
}
