//! `duckdb-like`: vectorized columnar execution.
//!
//! Mirrors a vectorized analytical engine: scans proceed in fixed-size
//! batches, predicates run as typed kernels producing selection vectors
//! (dictionary-code masks for categorical `IN` filters, typed comparisons
//! for numeric ranges), and single-categorical-key aggregation groups
//! directly on dictionary codes instead of hashing values.

use crate::agg::Accumulator;
use crate::error::EngineError;
use crate::eval::{eval, TableRow};
use crate::exec::{
    compile_kernels, emit_groups, new_group, Catalog, ExecStats, Kernel, QueryOutput,
};
use crate::plan::{PreparedQuery, QueryKind};
use crate::Dbms;
use simba_sql::Select;
use simba_store::{ColumnData, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Vector (batch) size, matching DuckDB's default of 2048.
const BATCH: usize = 2048;

/// Vectorized columnar engine (DuckDB-style architecture).
#[derive(Default)]
pub struct DuckDbLike {
    catalog: Catalog,
}

impl DuckDbLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn run(plan: &PreparedQuery) -> (Vec<Vec<Value>>, ExecStats) {
        let table = &plan.table;
        let n = table.row_count();
        let mut stats = ExecStats {
            rows_scanned: n,
            ..ExecStats::default()
        };
        let kernels: Option<Vec<Kernel>> = plan.filter.as_ref().map(|f| compile_kernels(f, table));

        // Fast path: one bare dictionary-encoded group key → group by code.
        let dict_key_col = match &plan.kind {
            QueryKind::Aggregate { keys, .. } if keys.len() == 1 => keys[0]
                .as_col()
                .filter(|&c| matches!(table.column(c), ColumnData::Str { .. })),
            _ => None,
        };

        let mut sel: Vec<u32> = Vec::with_capacity(BATCH);
        match &plan.kind {
            QueryKind::Project { exprs } => {
                let mut rows = Vec::new();
                for batch_start in (0..n).step_by(BATCH) {
                    let end = (batch_start + BATCH).min(n);
                    fill_selection(&mut sel, batch_start, end, &kernels, table);
                    stats.rows_matched += sel.len();
                    for &i in &sel {
                        let ctx = TableRow {
                            table,
                            row: i as usize,
                        };
                        rows.push(exprs.iter().map(|e| eval(e, &ctx)).collect());
                    }
                }
                (rows, stats)
            }
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            } => {
                if let Some(key_col) = dict_key_col {
                    // Dictionary-code grouping: dense vector of group states.
                    let dict_len = table
                        .column(key_col)
                        .dictionary()
                        .map(<[_]>::len)
                        .unwrap_or(0);
                    let mut code_groups: Vec<Option<Vec<Accumulator>>> = vec![None; dict_len];
                    let mut null_group: Option<Vec<Accumulator>> = None;
                    for batch_start in (0..n).step_by(BATCH) {
                        let end = (batch_start + BATCH).min(n);
                        fill_selection(&mut sel, batch_start, end, &kernels, table);
                        stats.rows_matched += sel.len();
                        let col = table.column(key_col);
                        for &i in &sel {
                            let row = i as usize;
                            let slot = match col.code(row) {
                                Some(code) => &mut code_groups[code as usize],
                                None => &mut null_group,
                            };
                            let accs = slot.get_or_insert_with(|| new_group(aggs));
                            let ctx = TableRow { table, row };
                            for (acc, spec) in accs.iter_mut().zip(aggs) {
                                match &spec.arg {
                                    None => acc.update_star(),
                                    Some(arg) => acc.update_value(eval(arg, &ctx)),
                                }
                            }
                        }
                    }
                    let dict = table.column(key_col).dictionary().unwrap_or(&[]);
                    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
                    for (code, slot) in code_groups.into_iter().enumerate() {
                        if let Some(accs) = slot {
                            groups.push((vec![Value::Str(dict[code].clone())], accs));
                        }
                    }
                    if let Some(accs) = null_group {
                        groups.push((vec![Value::Null], accs));
                    }
                    stats.groups = groups.len();
                    let rows = emit_groups(plan, projections, having.as_ref(), groups);
                    (rows, stats)
                } else {
                    // Generic hash grouping over evaluated keys.
                    let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
                    if keys.is_empty() {
                        groups.insert(Vec::new(), new_group(aggs));
                    }
                    for batch_start in (0..n).step_by(BATCH) {
                        let end = (batch_start + BATCH).min(n);
                        fill_selection(&mut sel, batch_start, end, &kernels, table);
                        stats.rows_matched += sel.len();
                        for &i in &sel {
                            let ctx = TableRow {
                                table,
                                row: i as usize,
                            };
                            let key: Vec<Value> = keys.iter().map(|k| eval(k, &ctx)).collect();
                            let accs = groups.entry(key).or_insert_with(|| new_group(aggs));
                            for (acc, spec) in accs.iter_mut().zip(aggs) {
                                match &spec.arg {
                                    None => acc.update_star(),
                                    Some(arg) => acc.update_value(eval(arg, &ctx)),
                                }
                            }
                        }
                    }
                    stats.groups = groups.len();
                    let rows = emit_groups(plan, projections, having.as_ref(), groups);
                    (rows, stats)
                }
            }
        }
    }
}

/// Populate `sel` with the batch's passing row indices by running each filter
/// kernel over the (shrinking) selection vector.
fn fill_selection(
    sel: &mut Vec<u32>,
    start: usize,
    end: usize,
    kernels: &Option<Vec<Kernel>>,
    table: &Table,
) {
    sel.clear();
    sel.extend(start as u32..end as u32);
    if let Some(ks) = kernels {
        for k in ks {
            sel.retain(|&i| k.matches(table, i as usize));
            if sel.is_empty() {
                break;
            }
        }
    }
}

impl Dbms for DuckDbLike {
    fn name(&self) -> &'static str {
        "duckdb-like"
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, Self::run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_table;
    use simba_sql::parse_select;

    fn engine() -> DuckDbLike {
        let e = DuckDbLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn dict_key_fast_path_counts() {
        let out = engine()
            .execute(&parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap())
            .unwrap();
        let rows = out.result.sorted_rows();
        // NULL group sorts first under the total order.
        assert_eq!(rows[0], vec![Value::Null, Value::Int(1)]);
        assert_eq!(rows[1], vec![Value::str("A"), Value::Int(2)]);
        assert_eq!(rows[2], vec![Value::str("B"), Value::Int(2)]);
    }

    #[test]
    fn in_filter_uses_dict_mask() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE queue IN ('A')").unwrap())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(2));
    }

    #[test]
    fn generic_grouping_with_two_keys() {
        let out = engine()
            .execute(
                &parse_select("SELECT queue, HOUR(ts), COUNT(*) FROM cs GROUP BY queue, HOUR(ts)")
                    .unwrap(),
            )
            .unwrap();
        assert!(out.result.n_rows() >= 3);
    }

    #[test]
    fn range_filter_numeric_kernel() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE calls BETWEEN 3 AND 7").unwrap())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(3)); // 5, 3, 7
    }
}
