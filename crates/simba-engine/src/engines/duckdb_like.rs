//! `duckdb-like`: vectorized columnar execution.
//!
//! Mirrors a vectorized analytical engine: scans proceed morsel-at-a-time
//! (2048 rows), zone maps skip morsels a comparison predicate cannot match,
//! predicates run as typed kernels refining a selection vector, aggregation
//! uses dense dictionary-code group slots with unboxed typed states, and an
//! opt-in morsel-parallel mode fans contiguous morsel ranges out to scoped
//! worker threads whose partial states merge in scan order. All of that
//! machinery lives in [`crate::batch`]; this engine uses it wholesale.

use crate::batch::run_morsels;
use crate::error::EngineError;
use crate::exec::{Catalog, QueryOutput};
use crate::Dbms;
use simba_sql::Select;
use simba_store::Table;
use std::sync::Arc;

/// Vectorized columnar engine (DuckDB-style architecture).
pub struct DuckDbLike {
    catalog: Catalog,
    scan_threads: usize,
}

impl Default for DuckDbLike {
    fn default() -> Self {
        Self::new()
    }
}

impl DuckDbLike {
    /// Sequential (single-threaded) scans.
    pub fn new() -> Self {
        Self::with_scan_threads(1)
    }

    /// Morsel-parallel scans across `threads` worker threads (`0` = one per
    /// available core). Results are identical to sequential execution for
    /// every exact aggregate; float SUM/AVG may differ in the last ulp
    /// because partial sums associate differently.
    pub fn with_scan_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        DuckDbLike {
            catalog: Catalog::default(),
            scan_threads: threads,
        }
    }
}

impl Dbms for DuckDbLike {
    fn name(&self) -> &'static str {
        "duckdb-like"
    }

    fn scan_threads(&self) -> usize {
        self.scan_threads
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, |plan| {
            run_morsels(plan, self.scan_threads)
        })
    }

    /// Opts in to session-delta reuse: this engine owns its catalog
    /// in-process, so generation + snapshot identity checks are sound.
    fn execute_delta(
        &self,
        query: &Select,
        delta: &mut crate::delta::SessionDelta,
    ) -> Result<QueryOutput, EngineError> {
        crate::delta::execute_with_delta(&self.catalog, self.scan_threads, query, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_table;
    use simba_sql::parse_select;
    use simba_store::Value;

    fn engine() -> DuckDbLike {
        let e = DuckDbLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn dict_key_fast_path_counts() {
        let out = engine()
            .execute(&parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap())
            .unwrap();
        let rows = out.result.sorted_rows();
        // NULL group sorts first under the total order.
        assert_eq!(rows[0], vec![Value::Null, Value::Int(1)]);
        assert_eq!(rows[1], vec![Value::str("A"), Value::Int(2)]);
        assert_eq!(rows[2], vec![Value::str("B"), Value::Int(2)]);
    }

    #[test]
    fn in_filter_uses_dict_mask() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE queue IN ('A')").unwrap())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(2));
    }

    #[test]
    fn generic_grouping_with_two_keys() {
        let out = engine()
            .execute(
                &parse_select("SELECT queue, HOUR(ts), COUNT(*) FROM cs GROUP BY queue, HOUR(ts)")
                    .unwrap(),
            )
            .unwrap();
        assert!(out.result.n_rows() >= 3);
    }

    #[test]
    fn range_filter_numeric_kernel() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE calls BETWEEN 3 AND 7").unwrap())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(3)); // 5, 3, 7
    }

    #[test]
    fn zone_maps_prune_impossible_predicates() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE calls > 1000").unwrap())
            .unwrap();
        assert_eq!(out.result.rows[0][0], Value::Int(0));
        assert_eq!(out.stats.morsels_pruned, 1);
        assert_eq!(out.stats.rows_scanned, 0);
    }

    #[test]
    fn parallel_scan_threads_report_and_agree() {
        let seq = engine();
        let par = DuckDbLike::with_scan_threads(3);
        par.register(Arc::new(sample_table()));
        assert_eq!(seq.scan_threads(), 1);
        assert_eq!(par.scan_threads(), 3);
        let q = parse_select(
            "SELECT queue, COUNT(*), SUM(calls), MIN(calls) FROM cs \
             WHERE calls >= 1 GROUP BY queue",
        )
        .unwrap();
        let a = seq.execute(&q).unwrap().result;
        let b = par.execute(&q).unwrap().result;
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }
}
