//! The four engine implementations.
//!
//! Each engine mirrors the execution architecture of one DBMS from the
//! paper's evaluation (§6.2.2). They share the planner and evaluator — so
//! results are identical — but iterate storage very differently, which is
//! what produces their distinct latency profiles.

pub mod duckdb_like;
pub mod monetdb_like;
pub mod postgres_like;
pub mod sqlite_like;

use crate::error::EngineError;
use crate::exec::{finalize_rows, Catalog, ExecStats, QueryOutput};
use crate::plan::{prepare, PreparedQuery};
use simba_sql::Select;
use simba_store::{ResultSet, Value};
use std::time::Instant;

/// Shared execute wrapper: look up the table, plan, run the engine-specific
/// runner, finalize ordering/limit, and time the whole thing.
pub(crate) fn execute_common(
    catalog: &Catalog,
    query: &Select,
    runner: impl FnOnce(&PreparedQuery) -> (Vec<Vec<Value>>, ExecStats),
) -> Result<QueryOutput, EngineError> {
    let start = Instant::now();
    let table = catalog
        .get(&query.from)
        .ok_or_else(|| EngineError::UnknownTable(query.from.clone()))?;
    let plan = prepare(query, table)?;
    let (rows, stats) = runner(&plan);
    let rows = finalize_rows(rows, plan.n_output, &plan.order_dirs, plan.limit);
    Ok(QueryOutput {
        result: ResultSet::new(plan.output_names.clone(), rows),
        stats,
        elapsed: start.elapsed(),
    })
}
