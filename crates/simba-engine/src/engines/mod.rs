//! The four engine implementations.
//!
//! Each engine mirrors the execution architecture of one DBMS from the
//! paper's evaluation (§6.2.2). They share the planner and evaluator — so
//! results are identical — but iterate storage very differently, which is
//! what produces their distinct latency profiles.

pub mod duckdb_like;
pub mod monetdb_like;
pub mod postgres_like;
pub mod sqlite_like;

use crate::error::EngineError;
use crate::exec::{finalize_rows, Catalog, ExecStats, QueryOutput};
use crate::plan::{prepare, PreparedQuery};
use simba_sql::Select;
use simba_store::{ResultSet, Value};
use std::time::Instant;

/// Shared execute wrapper: look up the table, plan, run the engine-specific
/// runner, finalize ordering/limit, and time the whole thing. Also the
/// single point where every engine reports to the observability layer:
/// an `engine.execute` span with `engine.plan`/`engine.finalize` phase
/// children (runners emit their own interior phases), and the query's
/// [`ExecStats`] promoted into the metrics registry.
pub(crate) fn execute_common(
    catalog: &Catalog,
    query: &Select,
    runner: impl FnOnce(&PreparedQuery) -> (Vec<Vec<Value>>, ExecStats),
) -> Result<QueryOutput, EngineError> {
    execute_common_with(catalog, query, |plan| {
        let (rows, stats) = runner(plan);
        (rows, stats, ())
    })
    .map(|(output, ())| output)
}

/// [`execute_common`] for runners that hand back an extra payload alongside
/// the rows — the session-delta path uses this to carry the captured
/// selection / group states out past the finalize step.
pub(crate) fn execute_common_with<R>(
    catalog: &Catalog,
    query: &Select,
    runner: impl FnOnce(&PreparedQuery) -> (Vec<Vec<Value>>, ExecStats, R),
) -> Result<(QueryOutput, R), EngineError> {
    let _span = simba_obs::trace::span("engine.execute", "engine");
    // simba: allow(wall-clock-outside-obs): `elapsed` is the engine-latency deliverable consumed by latency stats; results and fingerprints never see it
    let start = Instant::now();
    let plan = {
        let _p = simba_obs::phase!("engine.plan", "engine", "engine.phase.plan");
        let table = catalog
            .get(&query.from)
            .ok_or_else(|| EngineError::UnknownTable(query.from.clone()))?;
        prepare(query, table)?
    };
    let (rows, stats, payload) = runner(&plan);
    let rows = {
        let _p = simba_obs::phase!("engine.finalize", "engine", "engine.phase.finalize");
        finalize_rows(rows, plan.n_output, &plan.order_dirs, plan.limit)
    };
    promote_stats(&stats);
    Ok((
        QueryOutput {
            result: ResultSet::new(plan.output_names.clone(), rows),
            stats,
            elapsed: start.elapsed(),
        },
        payload,
    ))
}

/// Promote per-query [`ExecStats`] into the global metrics registry.
fn promote_stats(stats: &ExecStats) {
    simba_obs::counter!("engine.queries").add(1);
    simba_obs::counter!("engine.rows_scanned").add(stats.rows_scanned as u64);
    simba_obs::counter!("engine.rows_matched").add(stats.rows_matched as u64);
    simba_obs::counter!("engine.groups").add(stats.groups as u64);
    simba_obs::counter!("engine.morsels_pruned").add(stats.morsels_pruned as u64);
}
