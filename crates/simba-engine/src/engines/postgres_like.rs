//! `postgres-like`: a row engine with lazy attribute access and hash
//! aggregation.
//!
//! Mirrors a server-class row store executing analytics without indexes:
//! the scan proceeds in page-sized blocks, predicates run through the shared
//! filter kernels over each block's selection vector (touching only the
//! attributes a conjunct references — PostgreSQL's slot-based lazy attribute
//! access), and grouping stays a per-row hash table over boxed values. No
//! zone maps and no typed aggregation: a heap has no morsel statistics, and
//! the executor materializes datums per tuple.

use crate::agg::Accumulator;
use crate::batch::{fill_filtered, SelectionVector};
use crate::error::EngineError;
use crate::eval::{eval, TableRow};
use crate::exec::{compile_kernels, emit_groups, new_group, Catalog, ExecStats, QueryOutput};
use crate::plan::{PreparedQuery, QueryKind};
use crate::Dbms;
use simba_sql::Select;
use simba_store::{Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Rows per scan block (loop blocking akin to page-at-a-time access).
const BLOCK: usize = 1024;

/// Lazy row engine with hash aggregation (PostgreSQL-style architecture).
#[derive(Default)]
pub struct PostgresLike {
    catalog: Catalog,
}

impl PostgresLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn run(plan: &PreparedQuery) -> (Vec<Vec<Value>>, ExecStats) {
        let table = &plan.table;
        let n = table.row_count();
        let mut stats = ExecStats {
            rows_scanned: n,
            ..ExecStats::default()
        };
        let kernels = plan.filter.as_ref().map(|f| compile_kernels(f, table));
        let mut sel = SelectionVector::with_capacity(BLOCK);

        match &plan.kind {
            QueryKind::Project { exprs } => {
                let mut rows = Vec::new();
                for block_start in (0..n).step_by(BLOCK) {
                    let end = (block_start + BLOCK).min(n);
                    fill_filtered(&mut sel, table, block_start, end, kernels.as_deref());
                    stats.rows_matched += sel.len();
                    for &i in sel.as_slice() {
                        let ctx = TableRow {
                            table,
                            row: i as usize,
                        };
                        rows.push(exprs.iter().map(|e| eval(e, &ctx)).collect());
                    }
                }
                (rows, stats)
            }
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            } => {
                let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
                if keys.is_empty() {
                    groups.insert(Vec::new(), new_group(aggs));
                }
                for block_start in (0..n).step_by(BLOCK) {
                    let end = (block_start + BLOCK).min(n);
                    fill_filtered(&mut sel, table, block_start, end, kernels.as_deref());
                    stats.rows_matched += sel.len();
                    for &i in sel.as_slice() {
                        let ctx = TableRow {
                            table,
                            row: i as usize,
                        };
                        let key: Vec<Value> = keys.iter().map(|k| eval(k, &ctx)).collect();
                        let accs = groups.entry(key).or_insert_with(|| new_group(aggs));
                        for (acc, spec) in accs.iter_mut().zip(aggs) {
                            match &spec.arg {
                                None => acc.update_star(),
                                Some(arg) => acc.update_value(eval(arg, &ctx)),
                            }
                        }
                    }
                }
                stats.groups = groups.len();
                let rows = emit_groups(projections, having.as_ref(), groups);
                (rows, stats)
            }
        }
    }
}

impl Dbms for PostgresLike {
    fn name(&self) -> &'static str {
        "postgres-like"
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, Self::run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_table;
    use simba_sql::parse_select;

    fn engine() -> PostgresLike {
        let e = PostgresLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn grouped_sum_matches_expectation() {
        let out = engine()
            .execute(
                &parse_select(
                    "SELECT queue, SUM(calls) FROM cs WHERE queue IS NOT NULL GROUP BY queue",
                )
                .unwrap(),
            )
            .unwrap();
        let mut rows = out.result.sorted_rows();
        rows.retain(|r| !r[0].is_null());
        assert_eq!(rows[0], vec![Value::str("A"), Value::Int(4)]);
        assert_eq!(rows[1], vec![Value::str("B"), Value::Int(12)]);
    }

    #[test]
    fn order_by_aggregate_desc() {
        let out = engine()
            .execute(
                &parse_select(
                    "SELECT queue, COUNT(*) AS n FROM cs GROUP BY queue ORDER BY n DESC LIMIT 1",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.result.n_rows(), 1);
        assert_eq!(out.result.rows[0][1], Value::Int(2));
    }

    #[test]
    fn having_filters_groups() {
        let out = engine()
            .execute(
                &parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue HAVING COUNT(*) > 1")
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(out.result.n_rows(), 2); // A(2) and B(2)
    }
}
