//! `monetdb-like`: operator-at-a-time columnar execution with full
//! materialization.
//!
//! Mirrors MonetDB's BAT algebra: each operator consumes and produces fully
//! materialized intermediate vectors. Selection runs one conjunct at a time
//! over the *whole* candidate vector (a single table-sized "morsel" — no
//! blocking, no zone maps), each pass a shared batch kernel. Aggregation is
//! BAT-wise too: with a dictionary-encoded group key and typed aggregates it
//! feeds the entire candidate vector into dense typed group states in one
//! call; otherwise group keys and aggregate inputs are materialized as
//! complete value vectors before aggregation. Fast per operator, but pays
//! full intermediate-materialization cost.

use crate::agg::Accumulator;
use crate::batch::{
    dict_group_key_col, dict_key_slots, fill_filtered, finalize_typed_groups, SelectionVector,
    TypedGroupStates,
};
use crate::error::EngineError;
use crate::eval::{eval, CExpr, TableRow};
use crate::exec::{
    compile_kernels, emit_finalized_groups, emit_groups, new_group, Catalog, ExecStats, QueryOutput,
};
use crate::plan::{PreparedQuery, QueryKind};
use crate::Dbms;
use simba_sql::Select;
use simba_store::{Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Operator-at-a-time columnar engine (MonetDB-style architecture).
#[derive(Default)]
pub struct MonetDbLike {
    catalog: Catalog,
}

impl MonetDbLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn run(plan: &PreparedQuery) -> (Vec<Vec<Value>>, ExecStats) {
        let table = &plan.table;
        let n = table.row_count();
        let mut stats = ExecStats {
            rows_scanned: n,
            ..ExecStats::default()
        };

        // Selection phase: one fully materialized candidate vector per
        // conjunct (BAT-style) — each conjunct is one whole-vector kernel.
        let kernels = plan.filter.as_ref().map(|f| compile_kernels(f, table));
        let mut sel = SelectionVector::with_capacity(n);
        fill_filtered(&mut sel, table, 0, n, kernels.as_deref());
        stats.rows_matched = sel.len();
        let candidates = sel.as_slice();

        match &plan.kind {
            QueryKind::Project { exprs } => {
                // Materialize each projection column fully, then zip.
                let cols: Vec<Vec<Value>> = exprs
                    .iter()
                    .map(|e| materialize(e, table, candidates))
                    .collect();
                let mut rows = Vec::with_capacity(candidates.len());
                for r in 0..candidates.len() {
                    rows.push(cols.iter().map(|c| c[r].clone()).collect());
                }
                (rows, stats)
            }
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            } => {
                // BAT-wise fast path: one dictionary-encoded key, all-typed
                // aggregates → a single whole-vector update into dense
                // code-indexed states.
                if let Some(key_col) = dict_group_key_col(keys, table) {
                    let dict = table.column(key_col).dictionary().unwrap_or(&[]);
                    if let Some(mut states) = TypedGroupStates::compile(aggs, table, dict.len() + 1)
                    {
                        let mut slots = Vec::with_capacity(candidates.len());
                        dict_key_slots(
                            table.column(key_col),
                            candidates,
                            &mut slots,
                            dict.len() as u32,
                        );
                        states.update_batch(table, candidates, &slots);
                        let groups = finalize_typed_groups(&states, dict, false);
                        stats.groups = groups.len();
                        let rows = emit_finalized_groups(projections, having.as_ref(), groups);
                        return (rows, stats);
                    }
                }

                // Materialize key vectors and aggregate-argument vectors.
                let key_cols: Vec<Vec<Value>> = keys
                    .iter()
                    .map(|k| materialize(k, table, candidates))
                    .collect();
                let arg_cols: Vec<Option<Vec<Value>>> = aggs
                    .iter()
                    .map(|a| a.arg.as_ref().map(|e| materialize(e, table, candidates)))
                    .collect();

                let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
                if keys.is_empty() {
                    groups.insert(Vec::new(), new_group(aggs));
                }
                for r in 0..candidates.len() {
                    let key: Vec<Value> = key_cols.iter().map(|c| c[r].clone()).collect();
                    let accs = groups.entry(key).or_insert_with(|| new_group(aggs));
                    for (ai, (acc, spec)) in accs.iter_mut().zip(aggs).enumerate() {
                        match &spec.arg {
                            None => acc.update_star(),
                            Some(_) => {
                                // simba: allow(panic-hygiene): arg_cols[ai] was materialized above for exactly the specs with an arg; a miss is a planner bug
                                let col = arg_cols[ai].as_ref().expect("materialized arg");
                                acc.update_value(col[r].clone());
                            }
                        }
                    }
                }
                stats.groups = groups.len();
                let rows = emit_groups(projections, having.as_ref(), groups);
                (rows, stats)
            }
        }
    }
}

/// Fully materialize an expression over the candidate vector.
fn materialize(e: &CExpr, table: &Table, candidates: &[u32]) -> Vec<Value> {
    candidates
        .iter()
        .map(|&i| {
            eval(
                e,
                &TableRow {
                    table,
                    row: i as usize,
                },
            )
        })
        .collect()
}

impl Dbms for MonetDbLike {
    fn name(&self) -> &'static str {
        "monetdb-like"
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, Self::run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::sample_table;
    use simba_sql::parse_select;

    fn engine() -> MonetDbLike {
        let e = MonetDbLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn projection_materializes_columns() {
        let out = engine()
            .execute(&parse_select("SELECT queue, calls FROM cs WHERE calls >= 3").unwrap())
            .unwrap();
        assert_eq!(out.result.n_rows(), 3);
        assert_eq!(out.result.columns, vec!["queue", "calls"]);
    }

    #[test]
    fn grouped_min_max() {
        let out = engine()
            .execute(
                &parse_select(
                    "SELECT queue, MIN(calls), MAX(calls) FROM cs \
                     WHERE queue IS NOT NULL GROUP BY queue",
                )
                .unwrap(),
            )
            .unwrap();
        let rows = out.result.sorted_rows();
        assert_eq!(rows[0], vec![Value::str("A"), Value::Int(1), Value::Int(3)]);
        assert_eq!(rows[1], vec![Value::str("B"), Value::Int(5), Value::Int(7)]);
    }

    #[test]
    fn empty_candidates_short_circuit() {
        let out = engine()
            .execute(&parse_select("SELECT queue FROM cs WHERE calls > 100").unwrap())
            .unwrap();
        assert!(out.result.is_empty());
        assert_eq!(out.stats.rows_matched, 0);
    }

    #[test]
    fn typed_bat_aggregation_matches_materialized_path() {
        // AVG(duration) is typed; adding COUNT(DISTINCT ts) forces the
        // materialized fallback — both must agree on the shared columns.
        let typed = engine()
            .execute(
                &parse_select("SELECT queue, AVG(duration), SUM(calls) FROM cs GROUP BY queue")
                    .unwrap(),
            )
            .unwrap();
        let fallback = engine()
            .execute(
                &parse_select(
                    "SELECT queue, AVG(duration), SUM(calls), COUNT(DISTINCT ts) \
                     FROM cs GROUP BY queue",
                )
                .unwrap(),
            )
            .unwrap();
        let typed_rows = typed.result.sorted_rows();
        let fb_rows = fallback.result.sorted_rows();
        assert_eq!(typed_rows.len(), fb_rows.len());
        for (t, f) in typed_rows.iter().zip(&fb_rows) {
            assert_eq!(t[..3], f[..3]);
        }
    }
}
