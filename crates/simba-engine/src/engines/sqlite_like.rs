//! `sqlite-like`: a row-at-a-time Volcano interpreter over row views.
//!
//! Mirrors an embedded row store: every row is fully materialized before the
//! predicate runs (SQLite reads whole records from B-tree pages), expressions
//! are interpreted per row, and grouping uses an ordered map (SQLite sorts or
//! B-trees its temporaries). No vectorization, no lazy column access — the
//! slowest but simplest architecture. The implementation *is* the shared
//! row-path oracle ([`crate::exec::run_row`]): keeping this engine
//! row-at-a-time preserves the latency spread the benchmark measures and
//! gives the vectorized engines a reference to be property-tested against.

use crate::error::EngineError;
use crate::exec::{run_row, Catalog, QueryOutput};
use crate::Dbms;
use simba_sql::Select;
use simba_store::Table;
use std::sync::Arc;

/// Row-at-a-time interpreter engine (SQLite-style architecture).
#[derive(Default)]
pub struct SqliteLike {
    catalog: Catalog,
}

impl SqliteLike {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Dbms for SqliteLike {
    fn name(&self) -> &'static str {
        "sqlite-like"
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, run_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_table, sorted};
    use simba_sql::parse_select;
    use simba_store::Value;

    fn engine() -> SqliteLike {
        let e = SqliteLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn filters_and_projects() {
        let out = engine()
            .execute(&parse_select("SELECT queue FROM cs WHERE calls > 4").unwrap())
            .unwrap();
        assert_eq!(out.result.n_rows(), 2);
        assert_eq!(out.stats.rows_matched, 2);
    }

    #[test]
    fn grouped_count() {
        let out = engine()
            .execute(&parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap())
            .unwrap();
        let rows = sorted(&out.result);
        assert_eq!(rows.len(), 3); // A, B, NULL group
        assert_eq!(out.stats.groups, 3);
    }

    #[test]
    fn global_aggregate_over_empty_filter() {
        let out = engine()
            .execute(
                &parse_select("SELECT COUNT(*), SUM(calls) FROM cs WHERE calls > 999").unwrap(),
            )
            .unwrap();
        assert_eq!(out.result.n_rows(), 1);
        assert_eq!(out.result.rows[0][0], Value::Int(0));
        assert!(out.result.rows[0][1].is_null());
    }

    #[test]
    fn unknown_table_error() {
        let e = SqliteLike::new();
        let err = e
            .execute(&parse_select("SELECT a FROM missing").unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }

    #[test]
    fn never_prunes_morsels() {
        let out = engine()
            .execute(&parse_select("SELECT COUNT(*) FROM cs WHERE calls > 1000").unwrap())
            .unwrap();
        assert_eq!(out.stats.morsels_pruned, 0, "row path reads every row");
    }
}
