//! `sqlite-like`: a row-at-a-time Volcano interpreter over row views.
//!
//! Mirrors an embedded row store: every row is fully materialized before the
//! predicate runs (SQLite reads whole records from B-tree pages), expressions
//! are interpreted per row, and grouping uses an ordered map (SQLite sorts or
//! B-trees its temporaries). No vectorization, no lazy column access — the
//! slowest but simplest architecture.

use crate::agg::Accumulator;
use crate::error::EngineError;
use crate::eval::{eval, eval_predicate, RowSlice};
use crate::exec::{emit_groups, new_group, Catalog, ExecStats, QueryOutput};
use crate::plan::{PreparedQuery, QueryKind};
use crate::Dbms;
use simba_sql::Select;
use simba_store::{Table, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Row-at-a-time interpreter engine (SQLite-style architecture).
#[derive(Default)]
pub struct SqliteLike {
    catalog: Catalog,
}

impl SqliteLike {
    pub fn new() -> Self {
        Self::default()
    }

    fn run(plan: &PreparedQuery) -> (Vec<Vec<Value>>, ExecStats) {
        let table = &plan.table;
        let n = table.row_count();
        let mut stats = ExecStats {
            rows_scanned: n,
            ..ExecStats::default()
        };
        let mut buf: Vec<Value> = Vec::with_capacity(table.schema().width());

        match &plan.kind {
            QueryKind::Project { exprs } => {
                let mut rows = Vec::new();
                for i in 0..n {
                    table.read_row_into(i, &mut buf);
                    let ctx = RowSlice(&buf);
                    if let Some(f) = &plan.filter {
                        if eval_predicate(f, &ctx) != Some(true) {
                            continue;
                        }
                    }
                    stats.rows_matched += 1;
                    rows.push(exprs.iter().map(|e| eval(e, &ctx)).collect());
                }
                (rows, stats)
            }
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            } => {
                let mut groups: BTreeMap<Vec<Value>, Vec<Accumulator>> = BTreeMap::new();
                if keys.is_empty() {
                    // A global aggregate emits one row even over zero input.
                    groups.insert(Vec::new(), new_group(aggs));
                }
                for i in 0..n {
                    table.read_row_into(i, &mut buf);
                    let ctx = RowSlice(&buf);
                    if let Some(f) = &plan.filter {
                        if eval_predicate(f, &ctx) != Some(true) {
                            continue;
                        }
                    }
                    stats.rows_matched += 1;
                    let key: Vec<Value> = keys.iter().map(|k| eval(k, &ctx)).collect();
                    let accs = groups.entry(key).or_insert_with(|| new_group(aggs));
                    for (acc, spec) in accs.iter_mut().zip(aggs) {
                        match &spec.arg {
                            None => acc.update_star(),
                            Some(arg) => acc.update_value(eval(arg, &ctx)),
                        }
                    }
                }
                stats.groups = groups.len();
                let rows = emit_groups(plan, projections, having.as_ref(), groups);
                (rows, stats)
            }
        }
    }
}

impl Dbms for SqliteLike {
    fn name(&self) -> &'static str {
        "sqlite-like"
    }

    fn register(&self, table: Arc<Table>) {
        self.catalog.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        super::execute_common(&self.catalog, query, Self::run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_table, sorted};
    use simba_sql::parse_select;

    fn engine() -> SqliteLike {
        let e = SqliteLike::new();
        e.register(Arc::new(sample_table()));
        e
    }

    #[test]
    fn filters_and_projects() {
        let out = engine()
            .execute(&parse_select("SELECT queue FROM cs WHERE calls > 4").unwrap())
            .unwrap();
        assert_eq!(out.result.n_rows(), 2);
        assert_eq!(out.stats.rows_matched, 2);
    }

    #[test]
    fn grouped_count() {
        let out = engine()
            .execute(&parse_select("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap())
            .unwrap();
        let rows = sorted(&out.result);
        assert_eq!(rows.len(), 3); // A, B, NULL group
        assert_eq!(out.stats.groups, 3);
    }

    #[test]
    fn global_aggregate_over_empty_filter() {
        let out = engine()
            .execute(
                &parse_select("SELECT COUNT(*), SUM(calls) FROM cs WHERE calls > 999").unwrap(),
            )
            .unwrap();
        assert_eq!(out.result.n_rows(), 1);
        assert_eq!(out.result.rows[0][0], Value::Int(0));
        assert!(out.result.rows[0][1].is_null());
    }

    #[test]
    fn unknown_table_error() {
        let e = SqliteLike::new();
        let err = e
            .execute(&parse_select("SELECT a FROM missing").unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }
}
