//! Query planning: validate a [`Select`] against a table schema and compile
//! it into a [`PreparedQuery`] that all engines execute.
//!
//! The plan separates *row-level* computation (filtering, group keys,
//! aggregate arguments) from *group-level* computation (projections over
//! keys and aggregate results, HAVING, ORDER BY). Group-level expressions
//! reuse [`CExpr`] with `Col(i)` indexing a virtual row of
//! `[keys…, aggregates…]`.

use crate::agg::AggSpec;
use crate::error::EngineError;
use crate::eval::{CExpr, ValueSet};
use simba_sql::normalize::normalize_expr;
use simba_sql::printer::print_expr;
use simba_sql::{Expr, Func, Select};
use simba_store::{Schema, Table};
use std::sync::Arc;

/// A compiled, validated query ready for execution.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub table: Arc<Table>,
    /// Row-level filter (WHERE).
    pub filter: Option<CExpr>,
    pub kind: QueryKind,
    /// Number of user-visible output columns; compiled projection lists may
    /// carry extra trailing sort-key columns.
    pub n_output: usize,
    pub output_names: Vec<String>,
    /// Sort directions for the trailing sort-key columns (`true` = ASC).
    pub order_dirs: Vec<bool>,
    pub limit: Option<usize>,
}

/// The two query shapes in the dashboard fragment.
#[derive(Debug, Clone)]
pub enum QueryKind {
    /// Plain projection (no aggregation). `exprs.len() == n_output + order_dirs.len()`.
    Project { exprs: Vec<CExpr> },
    /// Grouped aggregation.
    Aggregate {
        /// Row-level group-key expressions (may be empty: global aggregate).
        keys: Vec<CExpr>,
        /// Row-level aggregate argument specs.
        aggs: Vec<AggSpec>,
        /// Group-level projections over `[keys…, aggs…]`;
        /// `len == n_output + order_dirs.len()`.
        projections: Vec<CExpr>,
        /// Group-level HAVING predicate.
        having: Option<CExpr>,
    },
}

impl PreparedQuery {
    /// Is this an aggregation query?
    pub fn is_aggregate(&self) -> bool {
        matches!(self.kind, QueryKind::Aggregate { .. })
    }
}

/// Compile `query` against `table`.
pub fn prepare(query: &Select, table: Arc<Table>) -> Result<PreparedQuery, EngineError> {
    let schema = table.schema().clone();
    if !query.from.eq_ignore_ascii_case(&schema.table) {
        return Err(EngineError::UnknownTable(query.from.clone()));
    }
    if query.projections.is_empty() {
        return Err(EngineError::Invalid("empty SELECT list".into()));
    }

    let filter = query
        .where_clause
        .as_ref()
        .map(|w| compile_row_expr(w, &schema))
        .transpose()?;

    let output_names: Vec<String> = query.projections.iter().map(|p| p.output_name()).collect();
    let n_output = output_names.len();
    let limit = query.limit.map(|l| l as usize);
    let order_dirs: Vec<bool> = query.order_by.iter().map(|o| o.asc).collect();

    // Substitute projection aliases into ORDER BY / HAVING references.
    let order_exprs: Vec<Expr> = query
        .order_by
        .iter()
        .map(|o| substitute_aliases(&o.expr, &query.projections))
        .collect();
    let having_expr = query
        .having
        .as_ref()
        .map(|h| substitute_aliases(h, &query.projections));

    if query.is_aggregate_query() {
        // Collect the distinct aggregate calls appearing anywhere.
        let mut agg_calls: Vec<(String, Expr)> = Vec::new();
        for item in &query.projections {
            collect_aggregates(&item.expr, &mut agg_calls);
        }
        if let Some(h) = &having_expr {
            collect_aggregates(h, &mut agg_calls);
        }
        for o in &order_exprs {
            collect_aggregates(o, &mut agg_calls);
        }

        // Compile group keys.
        let keys: Vec<CExpr> = query
            .group_by
            .iter()
            .map(|g| compile_row_expr(g, &schema))
            .collect::<Result<_, _>>()?;
        let key_prints: Vec<String> = query
            .group_by
            .iter()
            .map(|g| print_expr(&normalize_expr(g)))
            .collect();

        // Compile aggregate argument specs.
        let mut aggs = Vec::with_capacity(agg_calls.len());
        for (_, call) in &agg_calls {
            let Expr::Function {
                func,
                args,
                distinct,
            } = call
            else {
                unreachable!()
            };
            let arg = match args.first() {
                None | Some(Expr::Wildcard) => None,
                Some(a) => Some(compile_row_expr(a, &schema)?),
            };
            let spec = AggSpec {
                func: *func,
                arg,
                distinct: *distinct,
            };
            spec.validate()?;
            aggs.push(spec);
        }
        let agg_prints: Vec<String> = agg_calls.iter().map(|(p, _)| p.clone()).collect();

        let ctx = GroupCtx {
            schema: &schema,
            key_prints: &key_prints,
            agg_prints: &agg_prints,
        };
        let mut projections: Vec<CExpr> = query
            .projections
            .iter()
            .map(|p| compile_group_expr(&p.expr, &ctx))
            .collect::<Result<_, _>>()?;
        for o in &order_exprs {
            projections.push(compile_group_expr(o, &ctx)?);
        }
        let having = having_expr
            .as_ref()
            .map(|h| compile_group_expr(h, &ctx))
            .transpose()?;

        Ok(PreparedQuery {
            table,
            filter,
            kind: QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            },
            n_output,
            output_names,
            order_dirs,
            limit,
        })
    } else {
        if !query.group_by.is_empty() {
            return Err(EngineError::Invalid(
                "GROUP BY without aggregate projections".into(),
            ));
        }
        if having_expr.is_some() {
            return Err(EngineError::Invalid("HAVING requires aggregation".into()));
        }
        let mut exprs: Vec<CExpr> = query
            .projections
            .iter()
            .map(|p| compile_row_expr(&p.expr, &schema))
            .collect::<Result<_, _>>()?;
        for o in &order_exprs {
            exprs.push(compile_row_expr(o, &schema)?);
        }
        Ok(PreparedQuery {
            table,
            filter,
            kind: QueryKind::Project { exprs },
            n_output,
            output_names,
            order_dirs,
            limit,
        })
    }
}

/// Recursively replace references to projection aliases with the aliased
/// expression (so `ORDER BY n` / `HAVING n > 1` resolve when `n` aliases an
/// aggregate).
fn substitute_aliases(e: &Expr, projections: &[simba_sql::SelectItem]) -> Expr {
    if let Expr::Column(name) = e {
        for item in projections {
            if item
                .alias
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(name))
            {
                return item.expr.clone();
            }
        }
        return e.clone();
    }
    match e {
        Expr::Literal(_) | Expr::Wildcard | Expr::Column(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_aliases(expr, projections)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_aliases(left, projections)),
            op: *op,
            right: Box::new(substitute_aliases(right, projections)),
        },
        Expr::Function {
            func,
            args,
            distinct,
        } => Expr::Function {
            func: *func,
            args: args
                .iter()
                .map(|a| substitute_aliases(a, projections))
                .collect(),
            distinct: *distinct,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_aliases(expr, projections)),
            list: list
                .iter()
                .map(|a| substitute_aliases(a, projections))
                .collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(substitute_aliases(expr, projections)),
            low: Box::new(substitute_aliases(low, projections)),
            high: Box::new(substitute_aliases(high, projections)),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aliases(expr, projections)),
            negated: *negated,
        },
    }
}

/// Collect distinct aggregate calls (by normalized print) in evaluation order.
fn collect_aggregates(e: &Expr, out: &mut Vec<(String, Expr)>) {
    match e {
        Expr::Function { func, args, .. } if func.is_aggregate() => {
            let print = print_expr(&normalize_expr(e));
            if !out.iter().any(|(p, _)| *p == print) {
                out.push((print, e.clone()));
            }
            // Aggregate args cannot themselves contain aggregates; no need to
            // recurse (nested aggregation is rejected at compile).
            let _ = args;
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for x in list {
                collect_aggregates(x, out);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// Compile a row-level expression: columns resolve to physical indices;
/// aggregates are rejected.
pub fn compile_row_expr(e: &Expr, schema: &Schema) -> Result<CExpr, EngineError> {
    match e {
        Expr::Column(name) => {
            let idx = schema
                .index_of(name)
                .ok_or_else(|| EngineError::UnknownColumn {
                    table: schema.table.clone(),
                    column: name.clone(),
                })?;
            Ok(CExpr::Col(idx))
        }
        Expr::Literal(lit) => Ok(CExpr::Lit(CExpr::lit_value(lit))),
        Expr::Wildcard => Err(EngineError::Invalid("`*` outside COUNT(*)".into())),
        Expr::Unary { op, expr } => Ok(CExpr::Un {
            op: *op,
            e: Box::new(compile_row_expr(expr, schema)?),
        }),
        Expr::Binary { left, op, right } => Ok(CExpr::Bin {
            l: Box::new(compile_row_expr(left, schema)?),
            op: *op,
            r: Box::new(compile_row_expr(right, schema)?),
        }),
        Expr::Function { func, args, .. } => {
            if func.is_aggregate() {
                return Err(EngineError::Invalid(format!(
                    "aggregate {} not allowed here",
                    func.name()
                )));
            }
            let expected = if *func == Func::Bin { 2 } else { 1 };
            if args.len() != expected {
                return Err(EngineError::Invalid(format!(
                    "{} expects {expected} argument(s), got {}",
                    func.name(),
                    args.len()
                )));
            }
            Ok(CExpr::Call {
                func: *func,
                args: args
                    .iter()
                    .map(|a| compile_row_expr(a, schema))
                    .collect::<Result<_, _>>()?,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let mut values = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    Expr::Literal(lit) => values.push(CExpr::lit_value(lit)),
                    _ => {
                        return Err(EngineError::Unsupported(
                            "IN lists must contain literals".into(),
                        ))
                    }
                }
            }
            Ok(CExpr::In {
                e: Box::new(compile_row_expr(expr, schema)?),
                set: Arc::new(ValueSet::new(values)),
                negated: *negated,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(CExpr::Between {
            e: Box::new(compile_row_expr(expr, schema)?),
            low: Box::new(compile_row_expr(low, schema)?),
            high: Box::new(compile_row_expr(high, schema)?),
            negated: *negated,
        }),
        Expr::IsNull { expr, negated } => Ok(CExpr::IsNull {
            e: Box::new(compile_row_expr(expr, schema)?),
            negated: *negated,
        }),
    }
}

struct GroupCtx<'a> {
    schema: &'a Schema,
    key_prints: &'a [String],
    agg_prints: &'a [String],
}

/// Compile a group-level expression over the virtual row `[keys…, aggs…]`.
fn compile_group_expr(e: &Expr, ctx: &GroupCtx<'_>) -> Result<CExpr, EngineError> {
    // Aggregate call → virtual aggregate slot.
    if let Expr::Function { func, .. } = e {
        if func.is_aggregate() {
            let print = print_expr(&normalize_expr(e));
            let idx = ctx
                .agg_prints
                .iter()
                .position(|p| *p == print)
                .expect("aggregate was collected in a prior pass");
            return Ok(CExpr::Col(ctx.key_prints.len() + idx));
        }
    }
    // Expression matching a GROUP BY key → virtual key slot.
    let print = print_expr(&normalize_expr(e));
    if let Some(idx) = ctx.key_prints.iter().position(|p| *p == print) {
        return Ok(CExpr::Col(idx));
    }
    // Otherwise recurse; bare columns at this point are ungrouped.
    match e {
        Expr::Column(name) => {
            if ctx.schema.index_of(name).is_none() {
                Err(EngineError::UnknownColumn {
                    table: ctx.schema.table.clone(),
                    column: name.clone(),
                })
            } else {
                Err(EngineError::Invalid(format!(
                    "column `{name}` must appear in GROUP BY or inside an aggregate"
                )))
            }
        }
        Expr::Literal(lit) => Ok(CExpr::Lit(CExpr::lit_value(lit))),
        Expr::Wildcard => Err(EngineError::Invalid("`*` outside COUNT(*)".into())),
        Expr::Unary { op, expr } => Ok(CExpr::Un {
            op: *op,
            e: Box::new(compile_group_expr(expr, ctx)?),
        }),
        Expr::Binary { left, op, right } => Ok(CExpr::Bin {
            l: Box::new(compile_group_expr(left, ctx)?),
            op: *op,
            r: Box::new(compile_group_expr(right, ctx)?),
        }),
        Expr::Function { func, args, .. } => Ok(CExpr::Call {
            func: *func,
            args: args
                .iter()
                .map(|a| compile_group_expr(a, ctx))
                .collect::<Result<_, _>>()?,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let mut values = Vec::with_capacity(list.len());
            for item in list {
                match item {
                    Expr::Literal(lit) => values.push(CExpr::lit_value(lit)),
                    _ => {
                        return Err(EngineError::Unsupported(
                            "IN lists must contain literals".into(),
                        ))
                    }
                }
            }
            Ok(CExpr::In {
                e: Box::new(compile_group_expr(expr, ctx)?),
                set: Arc::new(ValueSet::new(values)),
                negated: *negated,
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(CExpr::Between {
            e: Box::new(compile_group_expr(expr, ctx)?),
            low: Box::new(compile_group_expr(low, ctx)?),
            high: Box::new(compile_group_expr(high, ctx)?),
            negated: *negated,
        }),
        Expr::IsNull { expr, negated } => Ok(CExpr::IsNull {
            e: Box::new(compile_group_expr(expr, ctx)?),
            negated: *negated,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::parse_select;
    use simba_store::{ColumnDef, TableBuilder, Value};

    fn table() -> Arc<Table> {
        let schema = Schema::new(
            "cs",
            vec![
                ColumnDef::categorical("queue"),
                ColumnDef::quantitative_int("calls"),
                ColumnDef::temporal("ts"),
            ],
        );
        let mut b = TableBuilder::new(schema, 1);
        b.push_row(vec![Value::str("A"), Value::Int(1), Value::Int(0)]);
        Arc::new(b.finish())
    }

    fn plan(sql: &str) -> Result<PreparedQuery, EngineError> {
        prepare(&parse_select(sql).unwrap(), table())
    }

    #[test]
    fn plans_simple_projection() {
        let p = plan("SELECT queue, calls FROM cs WHERE calls > 0").unwrap();
        assert!(!p.is_aggregate());
        assert_eq!(p.n_output, 2);
        assert!(p.filter.is_some());
    }

    #[test]
    fn plans_grouped_aggregate() {
        let p = plan("SELECT queue, COUNT(*) FROM cs GROUP BY queue").unwrap();
        match &p.kind {
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                ..
            } => {
                assert_eq!(keys.len(), 1);
                assert_eq!(aggs.len(), 1);
                assert_eq!(projections.len(), 2);
            }
            _ => panic!("expected aggregate"),
        }
    }

    #[test]
    fn dedupes_repeated_aggregates() {
        let p = plan("SELECT COUNT(*), COUNT(*) FROM cs HAVING COUNT(*) > 0").unwrap();
        match &p.kind {
            QueryKind::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 1),
            _ => panic!("expected aggregate"),
        }
    }

    #[test]
    fn group_expr_matches_date_part_key() {
        let p = plan("SELECT HOUR(ts), COUNT(*) FROM cs GROUP BY HOUR(ts)").unwrap();
        match &p.kind {
            QueryKind::Aggregate { projections, .. } => {
                assert!(matches!(projections[0], CExpr::Col(0)));
                assert!(matches!(projections[1], CExpr::Col(1)));
            }
            _ => panic!("expected aggregate"),
        }
    }

    #[test]
    fn rejects_ungrouped_column() {
        let err = plan("SELECT queue, COUNT(*) FROM cs GROUP BY ts").unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)), "{err}");
    }

    #[test]
    fn rejects_unknown_column() {
        let err = plan("SELECT nope FROM cs").unwrap_err();
        assert!(matches!(err, EngineError::UnknownColumn { .. }));
    }

    #[test]
    fn rejects_unknown_table() {
        let err = prepare(&parse_select("SELECT 1 FROM other").unwrap(), table()).unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }

    #[test]
    fn order_by_alias_resolves_to_aggregate() {
        let p = plan("SELECT queue, COUNT(*) AS n FROM cs GROUP BY queue ORDER BY n DESC").unwrap();
        assert_eq!(p.order_dirs, vec![false]);
        match &p.kind {
            QueryKind::Aggregate { projections, .. } => {
                // projections = [queue, count, order-key(count)]
                assert_eq!(projections.len(), 3);
            }
            _ => panic!("expected aggregate"),
        }
    }

    #[test]
    fn having_via_alias() {
        let p = plan("SELECT queue, COUNT(*) AS n FROM cs GROUP BY queue HAVING n > 1");
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn non_literal_in_list_rejected() {
        let err = plan("SELECT queue FROM cs WHERE calls IN (ts)").unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }

    #[test]
    fn output_names_use_aliases() {
        let p = plan("SELECT queue AS q, COUNT(*) AS n FROM cs GROUP BY queue").unwrap();
        assert_eq!(p.output_names, vec!["q", "n"]);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let p = plan("SELECT COUNT(*), SUM(calls) FROM cs").unwrap();
        match &p.kind {
            QueryKind::Aggregate { keys, aggs, .. } => {
                assert!(keys.is_empty());
                assert_eq!(aggs.len(), 2);
            }
            _ => panic!("expected aggregate"),
        }
    }

    #[test]
    fn sum_div_count_projection_compiles() {
        // Example 2.2's SUM(x)/COUNT(x) normalizes to AVG(x) — either way it
        // must compile to a single aggregate slot expression.
        let p = plan("SELECT queue, SUM(calls) / COUNT(calls) FROM cs GROUP BY queue");
        assert!(p.is_ok(), "{p:?}");
    }
}
