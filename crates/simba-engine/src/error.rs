//! Engine error types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors surfaced by query planning and execution.
///
/// Serializes with serde's external enum tagging (`{"unknown_table":
/// "t"}`, `{"unknown_column": {"table": ..., "column": ...}}`), so errors
/// cross the wire to remote clients without losing their variant — the
/// variant is what [`is_transient`](EngineError::is_transient) keys retry
/// classification on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EngineError {
    /// The referenced table has not been registered with the engine.
    UnknownTable(String),
    /// A referenced column is not part of the table schema.
    UnknownColumn { table: String, column: String },
    /// The query uses a construct outside the supported fragment.
    Unsupported(String),
    /// A query shape error (e.g. projecting an ungrouped column).
    Invalid(String),
    /// A transient execution failure (dropped connection, overload shed, an
    /// injected chaos fault): the same query may well succeed if retried.
    /// Every other variant is permanent — the query itself is at fault and
    /// retrying can only fail the same way.
    Transient(String),
    /// An infrastructure failure inside the harness itself (a poisoned
    /// lock, a disconnected channel, a panicked single-flight leader).
    /// Permanent like the query-shape errors — retrying the same query
    /// cannot un-panic the thread that died — but the *session* should
    /// degrade and keep its remaining queries, not take the worker down.
    Internal(String),
}

impl EngineError {
    /// Is this failure worth retrying? Only [`EngineError::Transient`] is:
    /// the rest describe the query, not the moment.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::Transient(_))
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            EngineError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            EngineError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            EngineError::Transient(msg) => write!(f, "transient failure: {msg}"),
            EngineError::Internal(msg) => write!(f, "internal harness failure: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_round_trips_through_json() {
        let cases = [
            EngineError::UnknownTable("t".into()),
            EngineError::UnknownColumn {
                table: "t".into(),
                column: "c".into(),
            },
            EngineError::Unsupported("no window functions".into()),
            EngineError::Invalid("ungrouped projection".into()),
            EngineError::Transient("connection dropped".into()),
            EngineError::Internal("worker panicked".into()),
        ];
        for e in &cases {
            let json = serde_json::to_string(e).expect("error serializes");
            let back: EngineError = serde_json::from_str(&json).expect("error re-parses");
            assert_eq!(&back, e, "variant drifted through {json}");
            // Retry classification must survive the wire: a remote
            // Transient that came back as any other variant would silently
            // disable retries on the client side.
            assert_eq!(back.is_transient(), e.is_transient());
        }
    }

    #[test]
    fn wire_shape_uses_snake_case_tags() {
        let json = serde_json::to_string(&EngineError::UnknownColumn {
            table: "sales".into(),
            column: "qty".into(),
        })
        .unwrap();
        assert!(json.contains("unknown_column"), "{json}");
        let json = serde_json::to_string(&EngineError::Transient("x".into())).unwrap();
        assert!(json.contains("transient"), "{json}");
    }
}
