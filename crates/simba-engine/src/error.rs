//! Engine error types.

use std::fmt;

/// Errors surfaced by query planning and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The referenced table has not been registered with the engine.
    UnknownTable(String),
    /// A referenced column is not part of the table schema.
    UnknownColumn { table: String, column: String },
    /// The query uses a construct outside the supported fragment.
    Unsupported(String),
    /// A query shape error (e.g. projecting an ungrouped column).
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            EngineError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            EngineError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}
