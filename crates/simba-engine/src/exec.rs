//! Execution helpers shared by the four engines: filter kernels, group
//! emission, ordering/limit finalization, and execution statistics.
//!
//! Sharing the *semantics* here is what lets the engines disagree only in
//! latency, never in results — the property the benchmark's comparative
//! claims rest on.

use crate::agg::{Accumulator, AggSpec};
use crate::error::EngineError;
use crate::eval::{eval, eval_predicate, CExpr, RowSlice, TableRow, ValueSet};
use crate::plan::{prepare, PreparedQuery, QueryKind};
use simba_sql::{BinOp, Select};
use simba_store::{ColumnData, ResultSet, Table, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

/// Per-query execution statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExecStats {
    /// Rows actually scanned from base storage (rows inside zone-map-pruned
    /// morsels are never read and are not counted).
    pub rows_scanned: usize,
    /// Rows surviving the WHERE clause.
    pub rows_matched: usize,
    /// Groups produced (aggregate queries only).
    pub groups: usize,
    /// Morsels skipped entirely by zone-map pruning (vectorized scans only).
    pub morsels_pruned: usize,
    /// 1 when this execution was seeded from a session-delta selection
    /// instead of rescanning the table (session-delta execution only).
    #[serde(default)]
    pub delta_hits: usize,
    /// 1 when cached typed group states were reused outright, skipping the
    /// scan *and* the aggregation (session-delta execution only).
    #[serde(default)]
    pub delta_group_hits: usize,
    /// Rows the delta seed spared from scanning: table rows minus the
    /// candidate rows the seeded scan examined.
    #[serde(default)]
    pub delta_rows_saved: usize,
}

/// The result of [`crate::Dbms::execute`]: the result set plus timing/stats.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub result: ResultSet,
    pub stats: ExecStats,
    /// Wall-clock execution latency, measured around plan + execute.
    pub elapsed: Duration,
}

/// Split a compiled predicate into top-level conjuncts.
pub fn cexpr_conjuncts(e: &CExpr) -> Vec<&CExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a CExpr, out: &mut Vec<&'a CExpr>) {
        if let CExpr::Bin {
            l,
            op: BinOp::And,
            r,
        } = e
        {
            walk(l, out);
            walk(r, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// A filter kernel: either a typed fast path over raw column data or a
/// generic fallback through the shared evaluator. Conjunct-wise filtering is
/// equivalent to whole-predicate three-valued filtering because a row passes
/// a conjunction iff every conjunct evaluates to TRUE.
pub enum Kernel {
    /// `col <op> constant` over an Int column.
    IntCmp { col: usize, op: BinOp, rhs: i64 },
    /// `col <op> constant` over Int/Float columns with a float constant.
    FloatCmp { col: usize, op: BinOp, rhs: f64 },
    /// `col [NOT] IN (set)` over a dictionary-encoded string column,
    /// pre-resolved to a mask over dictionary codes.
    DictIn { col: usize, mask: Vec<bool> },
    /// Anything else: evaluated through the shared interpreter.
    Generic(CExpr),
}

impl Kernel {
    /// Does `row` pass this kernel?
    #[inline]
    pub fn matches(&self, table: &Table, row: usize) -> bool {
        match self {
            Kernel::IntCmp { col, op, rhs } => {
                let c = table.column(*col);
                if c.is_null(row) {
                    return false;
                }
                match c {
                    ColumnData::Int { data, .. } => cmp_ok(data[row].cmp(rhs), *op),
                    _ => false,
                }
            }
            Kernel::FloatCmp { col, op, rhs } => {
                let c = table.column(*col);
                if c.is_null(row) {
                    return false;
                }
                let v = match c {
                    ColumnData::Int { data, .. } => data[row] as f64,
                    ColumnData::Float { data, .. } => data[row],
                    _ => return false,
                };
                cmp_ok(v.total_cmp(rhs), *op)
            }
            Kernel::DictIn { col, mask } => {
                let c = table.column(*col);
                match c.code(row) {
                    Some(code) => mask.get(code as usize).copied().unwrap_or(false),
                    None => false,
                }
            }
            Kernel::Generic(expr) => eval_predicate(expr, &TableRow { table, row }) == Some(true),
        }
    }
}

#[inline]
fn cmp_ok(ord: Ordering, op: BinOp) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        // Kernels are only built for comparison operators; anything else
        // here is a planner bug and must not masquerade as an empty result.
        op => unreachable!("non-comparison BinOp {op:?} in comparison kernel"),
    }
}

/// Compile a filter into per-conjunct kernels for the given table, choosing
/// typed fast paths where the shapes allow.
pub fn compile_kernels(filter: &CExpr, table: &Table) -> Vec<Kernel> {
    cexpr_conjuncts(filter)
        .into_iter()
        .map(|c| specialize(c, table))
        .collect()
}

fn specialize(e: &CExpr, table: &Table) -> Kernel {
    match e {
        CExpr::Bin { l, op, r } if op.is_comparison() => {
            if let (Some(col), CExpr::Lit(lit)) = (l.as_col(), r.as_ref()) {
                let column = table.column(col);
                match (column, lit) {
                    (ColumnData::Int { .. }, Value::Int(v)) => {
                        return Kernel::IntCmp {
                            col,
                            op: *op,
                            rhs: *v,
                        };
                    }
                    (ColumnData::Int { .. } | ColumnData::Float { .. }, _) => {
                        if let Some(f) = lit.as_f64() {
                            return Kernel::FloatCmp {
                                col,
                                op: *op,
                                rhs: f,
                            };
                        }
                    }
                    (ColumnData::Str { .. }, Value::Str(_)) if *op == BinOp::Eq => {
                        return dict_in_kernel(col, column, std::slice::from_ref(lit), false);
                    }
                    _ => {}
                }
            }
            Kernel::Generic(e.clone())
        }
        CExpr::In {
            e: inner,
            set,
            negated,
        } => {
            if let Some(col) = inner.as_col() {
                if let ColumnData::Str { .. } = table.column(col) {
                    return dict_in_kernel(col, table.column(col), set.values(), *negated);
                }
            }
            Kernel::Generic(e.clone())
        }
        _ => Kernel::Generic(e.clone()),
    }
}

fn dict_in_kernel(col: usize, column: &ColumnData, values: &[Value], negated: bool) -> Kernel {
    // simba: allow(panic-hygiene): kernel selection only routes dictionary-encoded string columns here; a bare column is a planner bug
    let dict = column.dictionary().expect("string column has a dictionary");
    let set: ValueSet = ValueSet::new(values.to_vec());
    let mask: Vec<bool> = dict
        .iter()
        .map(|s| set.contains(&Value::Str(s.clone())) != negated)
        .collect();
    Kernel::DictIn { col, mask }
}

/// Emit output rows for an aggregate query from its per-group accumulators.
/// Applies the group-level HAVING predicate and projections.
pub fn emit_groups(
    projections: &[CExpr],
    having: Option<&CExpr>,
    groups: impl IntoIterator<Item = (Vec<Value>, Vec<Accumulator>)>,
) -> Vec<Vec<Value>> {
    emit_finalized_groups(
        projections,
        having,
        groups.into_iter().map(|(keys, accs)| {
            let finalized = accs.iter().map(Accumulator::finalize).collect();
            (keys, finalized)
        }),
    )
}

/// Like [`emit_groups`], but for group states that are already finalized to
/// values (the typed aggregation fast path produces these directly).
pub fn emit_finalized_groups(
    projections: &[CExpr],
    having: Option<&CExpr>,
    groups: impl IntoIterator<Item = (Vec<Value>, Vec<Value>)>,
) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let mut virtual_row: Vec<Value> = Vec::new();
    for (keys, aggs) in groups {
        virtual_row.clear();
        virtual_row.extend(keys);
        virtual_row.extend(aggs);
        let ctx = RowSlice(&virtual_row);
        if let Some(h) = having {
            if eval_predicate(h, &ctx) != Some(true) {
                continue;
            }
        }
        rows.push(projections.iter().map(|p| eval(p, &ctx)).collect());
    }
    rows
}

/// Sort by trailing sort-key columns, strip them, and apply LIMIT.
pub fn finalize_rows(
    mut rows: Vec<Vec<Value>>,
    n_output: usize,
    order_dirs: &[bool],
    limit: Option<usize>,
) -> Vec<Vec<Value>> {
    if !order_dirs.is_empty() {
        rows.sort_by(|a, b| {
            for (k, asc) in order_dirs.iter().enumerate() {
                let i = n_output + k;
                let ord = a[i].cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    // Rows carry trailing sort-key columns exactly when ORDER BY is present
    // (`exprs.len() == n_output + order_dirs.len()`), so the emptiness of
    // `order_dirs` decides truncation — no per-row pre-scan needed.
    if !order_dirs.is_empty() {
        for r in &mut rows {
            r.truncate(n_output);
        }
    }
    if let Some(l) = limit {
        rows.truncate(l);
    }
    rows
}

/// The row-at-a-time reference path: fully materialize each row, interpret
/// the filter per row, and group through an ordered map. This is both the
/// `sqlite-like` engine's personality and the oracle the vectorized path is
/// property-tested against.
pub fn run_row(plan: &PreparedQuery) -> (Vec<Vec<Value>>, ExecStats) {
    let table = &plan.table;
    let n = table.row_count();
    let mut stats = ExecStats {
        rows_scanned: n,
        ..ExecStats::default()
    };
    let mut buf: Vec<Value> = Vec::with_capacity(table.schema().width());

    match &plan.kind {
        QueryKind::Project { exprs } => {
            let mut rows = Vec::new();
            for i in 0..n {
                table.read_row_into(i, &mut buf);
                let ctx = RowSlice(&buf);
                if let Some(f) = &plan.filter {
                    if eval_predicate(f, &ctx) != Some(true) {
                        continue;
                    }
                }
                stats.rows_matched += 1;
                rows.push(exprs.iter().map(|e| eval(e, &ctx)).collect());
            }
            (rows, stats)
        }
        QueryKind::Aggregate {
            keys,
            aggs,
            projections,
            having,
        } => {
            let mut groups: BTreeMap<Vec<Value>, Vec<Accumulator>> = BTreeMap::new();
            if keys.is_empty() {
                // A global aggregate emits one row even over zero input.
                groups.insert(Vec::new(), new_group(aggs));
            }
            for i in 0..n {
                table.read_row_into(i, &mut buf);
                let ctx = RowSlice(&buf);
                if let Some(f) = &plan.filter {
                    if eval_predicate(f, &ctx) != Some(true) {
                        continue;
                    }
                }
                stats.rows_matched += 1;
                let key: Vec<Value> = keys.iter().map(|k| eval(k, &ctx)).collect();
                let accs = groups.entry(key).or_insert_with(|| new_group(aggs));
                for (acc, spec) in accs.iter_mut().zip(aggs) {
                    match &spec.arg {
                        None => acc.update_star(),
                        Some(arg) => acc.update_value(eval(arg, &ctx)),
                    }
                }
            }
            stats.groups = groups.len();
            let rows = emit_groups(projections, having.as_ref(), groups);
            (rows, stats)
        }
    }
}

/// Plan and execute `query` through the row-at-a-time oracle, producing the
/// same [`QueryOutput`] shape as `Dbms::execute`. Benchmarks and equivalence
/// tests use this as the reference implementation.
pub fn execute_row_oracle(table: Arc<Table>, query: &Select) -> Result<QueryOutput, EngineError> {
    // simba: allow(wall-clock-outside-obs): latency parity with Dbms::execute — `elapsed` is the measured deliverable, never result content
    let start = Instant::now();
    let plan = prepare(query, table)?;
    let (rows, stats) = run_row(&plan);
    let rows = finalize_rows(rows, plan.n_output, &plan.order_dirs, plan.limit);
    Ok(QueryOutput {
        result: ResultSet::new(plan.output_names.clone(), rows),
        stats,
        elapsed: start.elapsed(),
    })
}

/// Update the accumulators of one group from one source row.
#[inline]
pub fn update_group(accs: &mut [Accumulator], aggs: &[AggSpec], table: &Table, row: usize) {
    let ctx = TableRow { table, row };
    for (acc, spec) in accs.iter_mut().zip(aggs) {
        match &spec.arg {
            None => acc.update_star(),
            Some(arg) => acc.update_value(eval(arg, &ctx)),
        }
    }
}

/// Fresh accumulator row for a group.
pub fn new_group(aggs: &[AggSpec]) -> Vec<Accumulator> {
    aggs.iter().map(AggSpec::accumulator).collect()
}

/// Shared registry of tables, keyed by lowercase name. Reads take a shared
/// lock only, so concurrent `execute` calls across driver worker threads
/// never serialize on the catalog.
///
/// Every `register` — first registration, re-registration, or the publish
/// step of a `TableAssembler` append (appended data becomes visible only
/// through `register`) — bumps a monotone generation counter. Work retained
/// across queries (the session-delta store) stamps the generation it
/// observed and is invalidated by any mismatch, so stale selections can
/// never be served against changed table state.
#[derive(Default)]
pub struct Catalog {
    tables: std::sync::RwLock<std::collections::HashMap<String, Arc<Table>>>,
    generation: std::sync::atomic::AtomicU64,
}

impl Catalog {
    // The catalog recovers poisoned locks instead of panicking: its map
    // only sees whole-entry insert/read, so a panic elsewhere while a
    // guard was held cannot leave it structurally broken — and a poisoned
    // catalog must not take down every worker that plans a query.
    pub fn register(&self, table: Arc<Table>) {
        self.tables
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(table.name().to_ascii_lowercase(), table);
        // The counter is the *coarse* staleness signal consumers poll to
        // drop retained work eagerly; it is not the reuse-time guard. A
        // register racing a generation read can always slip between the
        // publish and the bump (or vice versa), so reuse additionally
        // requires `Arc::ptr_eq` between the snapshot a delta entry was
        // captured against and the table the new plan resolved — tables
        // are immutable once built, so pointer identity is airtight.
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// Current registration generation: incremented by every [`register`]
    /// (including re-registers and append publishes). Retained-work caches
    /// compare stamped generations against this to detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::SeqCst)
    }

    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::{ColumnDef, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
                ColumnDef::quantitative_float("f"),
            ],
        );
        let mut b = TableBuilder::new(schema, 4);
        b.push_row(vec![Value::str("A"), Value::Int(1), Value::Float(0.5)]);
        b.push_row(vec![Value::str("B"), Value::Int(5), Value::Float(1.5)]);
        b.push_row(vec![Value::str("A"), Value::Int(9), Value::Float(2.5)]);
        b.push_row(vec![Value::Null, Value::Null, Value::Null]);
        b.finish()
    }

    #[test]
    fn int_cmp_kernel_matches_typed_rows() {
        let t = table();
        let k = Kernel::IntCmp {
            col: 1,
            op: BinOp::Gt,
            rhs: 2,
        };
        assert!(!k.matches(&t, 0));
        assert!(k.matches(&t, 1));
        assert!(k.matches(&t, 2));
        assert!(!k.matches(&t, 3), "NULL never matches");
    }

    #[test]
    fn dict_in_kernel_with_negation() {
        let t = table();
        let k = dict_in_kernel(0, t.column(0), &[Value::str("A")], false);
        assert!(k.matches(&t, 0));
        assert!(!k.matches(&t, 1));
        assert!(!k.matches(&t, 3), "NULL never matches IN");
        let nk = dict_in_kernel(0, t.column(0), &[Value::str("A")], true);
        assert!(!nk.matches(&t, 0));
        assert!(nk.matches(&t, 1));
        assert!(!nk.matches(&t, 3), "NULL never matches NOT IN");
    }

    #[test]
    fn float_cmp_kernel_reads_int_columns() {
        let t = table();
        let k = Kernel::FloatCmp {
            col: 1,
            op: BinOp::GtEq,
            rhs: 5.0,
        };
        assert!(!k.matches(&t, 0));
        assert!(k.matches(&t, 1));
    }

    #[test]
    fn finalize_sorts_desc_and_strips_keys() {
        let rows = vec![
            vec![Value::str("A"), Value::Int(1)],
            vec![Value::str("B"), Value::Int(3)],
            vec![Value::str("C"), Value::Int(2)],
        ];
        let out = finalize_rows(rows, 1, &[false], Some(2));
        assert_eq!(out, vec![vec![Value::str("B")], vec![Value::str("C")]]);
    }

    #[test]
    fn finalize_without_order_preserves_and_limits() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
        ];
        let out = finalize_rows(rows, 1, &[], Some(2));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Int(1)]);
    }

    #[test]
    fn catalog_round_trip_case_insensitive() {
        let c = Catalog::default();
        c.register(Arc::new(table()));
        assert!(c.get("T").is_some());
        assert!(c.get("t").is_some());
        assert!(c.get("nope").is_none());
    }
}
