//! Shared fixtures for engine unit tests.

use simba_store::{ColumnDef, ResultSet, Schema, Table, TableBuilder, Value};

/// A small `cs` table exercising every column role, including a NULL row.
pub fn sample_table() -> Table {
    let schema = Schema::new(
        "cs",
        vec![
            ColumnDef::categorical("queue"),
            ColumnDef::quantitative_int("calls"),
            ColumnDef::temporal("ts"),
            ColumnDef::quantitative_float("duration"),
        ],
    );
    let mut b = TableBuilder::new(schema, 5);
    // ts values: 2021-06-15 with varying hours.
    b.push_row(vec![
        Value::str("A"),
        Value::Int(1),
        Value::Int(1_623_715_200),
        Value::Float(0.5),
    ]);
    b.push_row(vec![
        Value::str("B"),
        Value::Int(5),
        Value::Int(1_623_718_800),
        Value::Float(1.5),
    ]);
    b.push_row(vec![
        Value::str("A"),
        Value::Int(3),
        Value::Int(1_623_722_400),
        Value::Float(2.5),
    ]);
    b.push_row(vec![
        Value::str("B"),
        Value::Int(7),
        Value::Int(1_623_726_000),
        Value::Float(3.5),
    ]);
    b.push_row(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
    b.finish()
}

/// Sorted row view of a result for order-insensitive assertions.
pub fn sorted(rs: &ResultSet) -> Vec<Vec<Value>> {
    rs.sorted_rows()
}
