//! Batch-at-a-time execution: selection vectors, columnar filter kernels,
//! zone-map pruning, typed aggregation states, and the morsel-driven scan.
//!
//! The row-at-a-time interpreter ([`crate::exec::run_row`]) pays an enum
//! dispatch and a `Value` allocation per row per expression. The batch path
//! instead evaluates each filter conjunct over a contiguous column slice
//! with a tight typed loop, refining a [`SelectionVector`] of surviving row
//! indices, and feeds aggregates from raw `i64`/`f64` slices into dense
//! group-indexed states — no `Value` boxing on the hot path. Semantics are
//! pinned to the row path: the equivalence suite requires byte-identical
//! results from both.

use crate::agg::{Accumulator, AggSpec};
use crate::eval::{eval, eval_predicate, CExpr, TableRow};
use crate::exec::{
    compile_kernels, emit_finalized_groups, new_group, update_group, ExecStats, Kernel,
};
use crate::plan::{PreparedQuery, QueryKind};
use simba_sql::{BinOp, Func};
use simba_store::zonemap::{morsel_bounds, morsel_count, Zone, ZoneMaps, MORSEL_ROWS};
use simba_store::{ColumnData, Table, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Rows per scan batch. Equal to the zone-map granularity so every batch is
/// covered by exactly one zone per column.
pub const MORSEL: usize = MORSEL_ROWS;

/// The set of row indices (within a morsel or a whole table) still alive
/// after the filter conjuncts applied so far.
#[derive(Debug, Default)]
pub struct SelectionVector {
    rows: Vec<u32>,
}

impl SelectionVector {
    /// Empty selection with room for `capacity` rows.
    pub fn with_capacity(capacity: usize) -> SelectionVector {
        SelectionVector {
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Reset to the dense range `[start, end)`.
    pub fn fill_range(&mut self, start: usize, end: usize) {
        self.rows.clear();
        self.rows.extend(start as u32..end as u32);
    }

    /// Reset to an explicit (sorted) row list — the seeded-scan entry point,
    /// where the candidate rows come from a prior step's captured selection
    /// rather than a dense range.
    pub fn fill_from(&mut self, rows: &[u32]) {
        self.rows.clear();
        self.rows.extend_from_slice(rows);
    }

    /// Surviving row indices.
    pub fn as_slice(&self) -> &[u32] {
        &self.rows
    }

    /// Number of surviving rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no row survives.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drop every row.
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

/// In-place compaction of a selection vector: keep row `i` iff `$keep(i)`.
/// Written branch-light (unconditional store + predicated advance) so the
/// typed comparison loops compile to straight-line code.
macro_rules! compact {
    ($sel:expr, $keep:expr) => {{
        let rows = &mut $sel.rows;
        let mut out = 0usize;
        for k in 0..rows.len() {
            let i = rows[k] as usize;
            rows[out] = rows[k];
            out += usize::from($keep(i));
        }
        rows.truncate(out);
    }};
}

impl Kernel {
    /// Refine `sel` to the rows that pass this kernel, evaluating over
    /// contiguous column slices. Exactly equivalent to calling
    /// [`Kernel::matches`] per row (the equivalence suite enforces this),
    /// but without per-row column lookup or `Value` boxing.
    pub fn filter_batch(&self, table: &Table, sel: &mut SelectionVector) {
        match self {
            Kernel::IntCmp { col, op, rhs } => {
                let c = table.column(*col);
                match c.int_data() {
                    Some(data) => filter_int(data, c.validity(), *op, *rhs, sel),
                    // Type mismatch: the row path rejects every row.
                    None => sel.clear(),
                }
            }
            Kernel::FloatCmp { col, op, rhs } => {
                let c = table.column(*col);
                let valid = c.validity();
                if let Some(data) = c.float_data() {
                    filter_float(|i| data[i], valid, *op, *rhs, sel);
                } else if let Some(data) = c.int_data() {
                    filter_float(|i| data[i] as f64, valid, *op, *rhs, sel);
                } else {
                    sel.clear();
                }
            }
            Kernel::DictIn { col, mask } => {
                let c = table.column(*col);
                match c.code_data() {
                    Some(codes) => {
                        let valid = c.validity();
                        let keep_code =
                            |i: usize| mask.get(codes[i] as usize).copied().unwrap_or(false);
                        if valid.is_empty() {
                            compact!(sel, keep_code);
                        } else {
                            compact!(sel, |i: usize| valid[i] && keep_code(i));
                        }
                    }
                    None => sel.clear(),
                }
            }
            Kernel::Generic(expr) => {
                compact!(sel, |i: usize| eval_predicate(
                    expr,
                    &TableRow { table, row: i }
                ) == Some(true));
            }
        }
    }

    /// Can this kernel rule out every row of morsel `m` from its zone alone?
    /// `true` means the whole morsel can be skipped without reading data.
    pub fn prunes_morsel(&self, zones: &ZoneMaps, m: usize) -> bool {
        match self {
            Kernel::IntCmp { col, op, rhs } => match zones.column(*col).map(|z| z.zone(m)) {
                Some(Zone::AllNull) => true,
                Some(Zone::Int { min, max }) => int_zone_excludes(min, max, *op, *rhs),
                _ => false,
            },
            Kernel::FloatCmp { col, op, rhs } => match zones.column(*col).map(|z| z.zone(m)) {
                Some(Zone::AllNull) => true,
                Some(Zone::Float { min, max }) => float_zone_excludes(min, max, *op, *rhs),
                // A float comparison over an Int column: only prune when the
                // bounds convert to f64 exactly, else rounding could move a
                // bound past the true extremum and drop matching rows.
                Some(Zone::Int { min, max }) => {
                    const EXACT: i64 = 1 << 53;
                    min.abs() <= EXACT
                        && max.abs() <= EXACT
                        && float_zone_excludes(min as f64, max as f64, *op, *rhs)
                }
                None => false,
            },
            // Dictionary and generic filters carry no zone statistics.
            Kernel::DictIn { .. } | Kernel::Generic(_) => false,
        }
    }

    /// True when zone maps can ever prune for this kernel (used to decide
    /// whether building/consulting them is worthwhile).
    pub fn is_zone_prunable(&self) -> bool {
        matches!(self, Kernel::IntCmp { .. } | Kernel::FloatCmp { .. })
    }
}

fn filter_int(data: &[i64], valid: &[bool], op: BinOp, rhs: i64, sel: &mut SelectionVector) {
    macro_rules! cmp {
        ($keep:expr) => {{
            if valid.is_empty() {
                compact!(sel, |i: usize| $keep(data[i]));
            } else {
                compact!(sel, |i: usize| valid[i] && $keep(data[i]));
            }
        }};
    }
    match op {
        BinOp::Eq => cmp!(|v: i64| v == rhs),
        BinOp::NotEq => cmp!(|v: i64| v != rhs),
        BinOp::Lt => cmp!(|v: i64| v < rhs),
        BinOp::LtEq => cmp!(|v: i64| v <= rhs),
        BinOp::Gt => cmp!(|v: i64| v > rhs),
        BinOp::GtEq => cmp!(|v: i64| v >= rhs),
        op => unreachable!("non-comparison BinOp {op:?} in IntCmp kernel"),
    }
}

fn filter_float(
    get: impl Fn(usize) -> f64,
    valid: &[bool],
    op: BinOp,
    rhs: f64,
    sel: &mut SelectionVector,
) {
    // `total_cmp`, matching the row path (`Kernel::matches`) bit-for-bit.
    macro_rules! cmp {
        ($keep:expr) => {{
            if valid.is_empty() {
                compact!(sel, |i: usize| $keep(get(i).total_cmp(&rhs)));
            } else {
                compact!(sel, |i: usize| valid[i] && $keep(get(i).total_cmp(&rhs)));
            }
        }};
    }
    match op {
        BinOp::Eq => cmp!(|o: Ordering| o == Ordering::Equal),
        BinOp::NotEq => cmp!(|o: Ordering| o != Ordering::Equal),
        BinOp::Lt => cmp!(|o: Ordering| o == Ordering::Less),
        BinOp::LtEq => cmp!(|o: Ordering| o != Ordering::Greater),
        BinOp::Gt => cmp!(|o: Ordering| o == Ordering::Greater),
        BinOp::GtEq => cmp!(|o: Ordering| o != Ordering::Less),
        op => unreachable!("non-comparison BinOp {op:?} in FloatCmp kernel"),
    }
}

fn int_zone_excludes(min: i64, max: i64, op: BinOp, rhs: i64) -> bool {
    match op {
        BinOp::Eq => rhs < min || rhs > max,
        BinOp::NotEq => min == max && min == rhs,
        BinOp::Lt => min >= rhs,
        BinOp::LtEq => min > rhs,
        BinOp::Gt => max <= rhs,
        BinOp::GtEq => max < rhs,
        _ => false,
    }
}

fn float_zone_excludes(min: f64, max: f64, op: BinOp, rhs: f64) -> bool {
    // Bounds were computed under total_cmp, so comparisons here use it too.
    let lo = min.total_cmp(&rhs);
    let hi = max.total_cmp(&rhs);
    match op {
        BinOp::Eq => lo == Ordering::Greater || hi == Ordering::Less,
        BinOp::NotEq => lo == Ordering::Equal && hi == Ordering::Equal,
        BinOp::Lt => lo != Ordering::Less,
        BinOp::LtEq => lo == Ordering::Greater,
        BinOp::Gt => hi != Ordering::Greater,
        BinOp::GtEq => hi == Ordering::Less,
        _ => false,
    }
}

/// One aggregate admitted to the typed fast path: its function, source
/// column, and the column's physical type, all resolved at compile time.
#[derive(Debug, Clone, Copy)]
enum TypedAggKind {
    CountStar,
    /// `COUNT(col)`: non-null count, any column type.
    CountCol {
        col: usize,
    },
    SumInt {
        col: usize,
    },
    SumFloat {
        col: usize,
    },
    AvgInt {
        col: usize,
    },
    AvgFloat {
        col: usize,
    },
    MinInt {
        col: usize,
    },
    MaxInt {
        col: usize,
    },
    MinFloat {
        col: usize,
    },
    MaxFloat {
        col: usize,
    },
}

/// Decide whether every aggregate of a plan has a typed fast path: the
/// argument must be a bare column of a matching physical type, and
/// `COUNT(DISTINCT …)` always falls back (it needs a value set).
fn compile_typed_aggs(aggs: &[AggSpec], table: &Table) -> Option<Vec<TypedAggKind>> {
    aggs.iter()
        .map(|spec| {
            if spec.distinct {
                return None;
            }
            let Some(arg) = &spec.arg else {
                return (spec.func == Func::Count).then_some(TypedAggKind::CountStar);
            };
            let col = arg.as_col()?;
            let is_int = matches!(table.column(col), ColumnData::Int { .. });
            let is_float = matches!(table.column(col), ColumnData::Float { .. });
            match spec.func {
                Func::Count => Some(TypedAggKind::CountCol { col }),
                Func::Sum if is_int => Some(TypedAggKind::SumInt { col }),
                Func::Sum if is_float => Some(TypedAggKind::SumFloat { col }),
                Func::Avg if is_int => Some(TypedAggKind::AvgInt { col }),
                Func::Avg if is_float => Some(TypedAggKind::AvgFloat { col }),
                Func::Min if is_int => Some(TypedAggKind::MinInt { col }),
                Func::Max if is_int => Some(TypedAggKind::MaxInt { col }),
                Func::Min if is_float => Some(TypedAggKind::MinFloat { col }),
                Func::Max if is_float => Some(TypedAggKind::MaxFloat { col }),
                _ => None,
            }
        })
        .collect()
}

/// Unboxed per-group state for one typed aggregate, group-slot indexed.
#[derive(Debug, Clone)]
enum AggStateVec {
    Count(Vec<i64>),
    /// SUM over an Int column: integer-preserving (wrapping, like the
    /// accumulator); `any` distinguishes `0` from "no input → NULL".
    SumInt {
        int: Vec<i64>,
        any: Vec<bool>,
    },
    SumFloat {
        sum: Vec<f64>,
        any: Vec<bool>,
    },
    Avg {
        sum: Vec<f64>,
        n: Vec<i64>,
    },
    MinMaxInt {
        val: Vec<i64>,
        seen: Vec<bool>,
    },
    MinMaxFloat {
        val: Vec<f64>,
        seen: Vec<bool>,
    },
}

impl AggStateVec {
    fn new(kind: TypedAggKind, n_groups: usize) -> AggStateVec {
        match kind {
            TypedAggKind::CountStar | TypedAggKind::CountCol { .. } => {
                AggStateVec::Count(vec![0; n_groups])
            }
            TypedAggKind::SumInt { .. } => AggStateVec::SumInt {
                int: vec![0; n_groups],
                any: vec![false; n_groups],
            },
            TypedAggKind::SumFloat { .. } => AggStateVec::SumFloat {
                sum: vec![0.0; n_groups],
                any: vec![false; n_groups],
            },
            TypedAggKind::AvgInt { .. } | TypedAggKind::AvgFloat { .. } => AggStateVec::Avg {
                sum: vec![0.0; n_groups],
                n: vec![0; n_groups],
            },
            TypedAggKind::MinInt { .. } | TypedAggKind::MaxInt { .. } => AggStateVec::MinMaxInt {
                val: vec![0; n_groups],
                seen: vec![false; n_groups],
            },
            TypedAggKind::MinFloat { .. } | TypedAggKind::MaxFloat { .. } => {
                AggStateVec::MinMaxFloat {
                    val: vec![0.0; n_groups],
                    seen: vec![false; n_groups],
                }
            }
        }
    }
}

/// Dense typed aggregation states: one slot per group, fed batch-wise from
/// raw column slices. Group slots are assigned by the caller (dictionary
/// codes for categorical keys, slot 0 for global aggregates).
#[derive(Debug, Clone)]
pub struct TypedGroupStates {
    kinds: Vec<TypedAggKind>,
    states: Vec<AggStateVec>,
    touched: Vec<bool>,
}

impl TypedGroupStates {
    /// Compile the plan's aggregates into typed states over `n_groups`
    /// dense slots, or `None` if any aggregate lacks a fast path.
    pub fn compile(aggs: &[AggSpec], table: &Table, n_groups: usize) -> Option<TypedGroupStates> {
        let kinds = compile_typed_aggs(aggs, table)?;
        let states = kinds
            .iter()
            .map(|&k| AggStateVec::new(k, n_groups))
            .collect();
        Some(TypedGroupStates {
            kinds,
            states,
            touched: vec![false; n_groups],
        })
    }

    /// Mark a group slot live even if no row reaches it (global aggregates
    /// emit one row over empty input).
    pub fn mark_touched(&mut self, slot: usize) {
        self.touched[slot] = true;
    }

    /// Has any row (or an explicit mark) reached group `slot`?
    pub fn is_touched(&self, slot: usize) -> bool {
        self.touched[slot]
    }

    /// Number of group slots.
    pub fn n_groups(&self) -> usize {
        self.touched.len()
    }

    /// Feed one batch: for each selected row `sel[k]`, update every
    /// aggregate's state at group slot `slots[k]`. Tight per-aggregate
    /// loops over the raw column slices; no `Value` is constructed.
    pub fn update_batch(&mut self, table: &Table, sel: &[u32], slots: &[u32]) {
        debug_assert_eq!(sel.len(), slots.len());
        for &s in slots {
            self.touched[s as usize] = true;
        }
        for (kind, state) in self.kinds.iter().zip(self.states.iter_mut()) {
            update_one(*kind, state, table, sel, slots);
        }
    }

    /// Merge a partial state produced over a *later* range of morsels.
    /// Order matters for min/max tie-breaking (keep-first) and mirrors the
    /// sequential scan when partials are merged in morsel order.
    pub fn merge(&mut self, other: &TypedGroupStates) {
        for (t, o) in self.touched.iter_mut().zip(&other.touched) {
            *t |= o;
        }
        for (kind, (a, b)) in self
            .kinds
            .iter()
            .zip(self.states.iter_mut().zip(&other.states))
        {
            merge_state(*kind, a, b);
        }
    }

    /// Finalized aggregate values for group `slot`, matching
    /// [`Accumulator::finalize`] exactly.
    pub fn finalize_into(&self, slot: usize, out: &mut Vec<Value>) {
        for state in &self.states {
            out.push(match state {
                AggStateVec::Count(n) => Value::Int(n[slot]),
                AggStateVec::SumInt { int, any } => {
                    if any[slot] {
                        Value::Int(int[slot])
                    } else {
                        Value::Null
                    }
                }
                AggStateVec::SumFloat { sum, any } => {
                    if any[slot] {
                        Value::Float(sum[slot])
                    } else {
                        Value::Null
                    }
                }
                AggStateVec::Avg { sum, n } => {
                    if n[slot] == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum[slot] / n[slot] as f64)
                    }
                }
                AggStateVec::MinMaxInt { val, seen } => {
                    if seen[slot] {
                        Value::Int(val[slot])
                    } else {
                        Value::Null
                    }
                }
                AggStateVec::MinMaxFloat { val, seen } => {
                    if seen[slot] {
                        Value::Float(val[slot])
                    } else {
                        Value::Null
                    }
                }
            });
        }
    }
}

/// Iterate `(row, slot)` pairs where the column is valid at `row`.
macro_rules! for_valid {
    ($valid:expr, $sel:expr, $slots:expr, |$i:ident, $s:ident| $body:expr) => {{
        let valid = $valid;
        if valid.is_empty() {
            for (&row, &slot) in $sel.iter().zip($slots) {
                let ($i, $s) = (row as usize, slot as usize);
                $body
            }
        } else {
            for (&row, &slot) in $sel.iter().zip($slots) {
                let ($i, $s) = (row as usize, slot as usize);
                if valid[$i] {
                    $body
                }
            }
        }
    }};
}

fn update_one(
    kind: TypedAggKind,
    state: &mut AggStateVec,
    table: &Table,
    sel: &[u32],
    slots: &[u32],
) {
    match (kind, state) {
        (TypedAggKind::CountStar, AggStateVec::Count(n)) => {
            for &slot in slots {
                n[slot as usize] += 1;
            }
        }
        (TypedAggKind::CountCol { col }, AggStateVec::Count(n)) => {
            let c = table.column(col);
            for_valid!(c.validity(), sel, slots, |_i, s| n[s] += 1);
        }
        (TypedAggKind::SumInt { col }, AggStateVec::SumInt { int, any }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.int_data().expect("typed agg column is Int");
            for_valid!(c.validity(), sel, slots, |i, s| {
                int[s] = int[s].wrapping_add(data[i]);
                any[s] = true;
            });
        }
        (TypedAggKind::SumFloat { col }, AggStateVec::SumFloat { sum, any }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.float_data().expect("typed agg column is Float");
            for_valid!(c.validity(), sel, slots, |i, s| {
                sum[s] += data[i];
                any[s] = true;
            });
        }
        (TypedAggKind::AvgInt { col }, AggStateVec::Avg { sum, n }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.int_data().expect("typed agg column is Int");
            for_valid!(c.validity(), sel, slots, |i, s| {
                sum[s] += data[i] as f64;
                n[s] += 1;
            });
        }
        (TypedAggKind::AvgFloat { col }, AggStateVec::Avg { sum, n }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.float_data().expect("typed agg column is Float");
            for_valid!(c.validity(), sel, slots, |i, s| {
                sum[s] += data[i];
                n[s] += 1;
            });
        }
        (TypedAggKind::MinInt { col }, AggStateVec::MinMaxInt { val, seen }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.int_data().expect("typed agg column is Int");
            for_valid!(c.validity(), sel, slots, |i, s| {
                let v = data[i];
                // Strict `<`: ties keep the earlier value, like the
                // accumulator's keep-first rule.
                if !seen[s] || v < val[s] {
                    val[s] = v;
                    seen[s] = true;
                }
            });
        }
        (TypedAggKind::MaxInt { col }, AggStateVec::MinMaxInt { val, seen }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.int_data().expect("typed agg column is Int");
            for_valid!(c.validity(), sel, slots, |i, s| {
                let v = data[i];
                if !seen[s] || v > val[s] {
                    val[s] = v;
                    seen[s] = true;
                }
            });
        }
        (TypedAggKind::MinFloat { col }, AggStateVec::MinMaxFloat { val, seen }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.float_data().expect("typed agg column is Float");
            for_valid!(c.validity(), sel, slots, |i, s| {
                let v = data[i];
                if !seen[s] || v.total_cmp(&val[s]) == Ordering::Less {
                    val[s] = v;
                    seen[s] = true;
                }
            });
        }
        (TypedAggKind::MaxFloat { col }, AggStateVec::MinMaxFloat { val, seen }) => {
            let c = table.column(col);
            // simba: allow(panic-hygiene): TypedGroupStates::compile pinned this kernel to the column's physical type; a mismatch is a planner bug, not a runtime condition
            let data = c.float_data().expect("typed agg column is Float");
            for_valid!(c.validity(), sel, slots, |i, s| {
                let v = data[i];
                if !seen[s] || v.total_cmp(&val[s]) == Ordering::Greater {
                    val[s] = v;
                    seen[s] = true;
                }
            });
        }
        (kind, state) => unreachable!("typed agg state mismatch: {kind:?} vs {state:?}"),
    }
}

fn merge_state(kind: TypedAggKind, a: &mut AggStateVec, b: &AggStateVec) {
    match (a, b) {
        (AggStateVec::Count(x), AggStateVec::Count(y)) => {
            for (x, y) in x.iter_mut().zip(y) {
                *x += y;
            }
        }
        (AggStateVec::SumInt { int: xi, any: xa }, AggStateVec::SumInt { int: yi, any: ya }) => {
            for s in 0..xi.len() {
                xi[s] = xi[s].wrapping_add(yi[s]);
                xa[s] |= ya[s];
            }
        }
        (
            AggStateVec::SumFloat { sum: xs, any: xa },
            AggStateVec::SumFloat { sum: ys, any: ya },
        ) => {
            for s in 0..xs.len() {
                xs[s] += ys[s];
                xa[s] |= ya[s];
            }
        }
        (AggStateVec::Avg { sum: xs, n: xn }, AggStateVec::Avg { sum: ys, n: yn }) => {
            for s in 0..xs.len() {
                xs[s] += ys[s];
                xn[s] += yn[s];
            }
        }
        (
            AggStateVec::MinMaxInt { val: xv, seen: xs },
            AggStateVec::MinMaxInt { val: yv, seen: ys },
        ) => {
            // `other` covers later morsels, so its representative plays the
            // role of "new value v" in the keep-first rule: adopt only when
            // strictly better.
            let is_min = matches!(kind, TypedAggKind::MinInt { .. });
            for s in 0..xv.len() {
                if !ys[s] {
                    continue;
                }
                let better = !xs[s] || if is_min { yv[s] < xv[s] } else { yv[s] > xv[s] };
                if better {
                    xv[s] = yv[s];
                    xs[s] = true;
                }
            }
        }
        (
            AggStateVec::MinMaxFloat { val: xv, seen: xs },
            AggStateVec::MinMaxFloat { val: yv, seen: ys },
        ) => {
            let want = if matches!(kind, TypedAggKind::MinFloat { .. }) {
                Ordering::Less
            } else {
                Ordering::Greater
            };
            for s in 0..xv.len() {
                if !ys[s] {
                    continue;
                }
                if !xs[s] || yv[s].total_cmp(&xv[s]) == want {
                    xv[s] = yv[s];
                    xs[s] = true;
                }
            }
        }
        (a, b) => unreachable!("typed agg merge mismatch: {a:?} vs {b:?}"),
    }
}

/// Group slots for the selected rows of a dictionary-encoded key column:
/// the row's dictionary code, or `null_slot` for NULL rows.
pub fn dict_key_slots(col: &ColumnData, sel: &[u32], slots: &mut Vec<u32>, null_slot: u32) {
    slots.clear();
    // simba: allow(panic-hygiene): only dictionary-encoded key columns are routed here (DenseDict/TypedDict mode selection); a codeless column is a planner bug
    let codes = col.code_data().expect("dict key column");
    let valid = col.validity();
    if valid.is_empty() {
        slots.extend(sel.iter().map(|&i| codes[i as usize]));
    } else {
        slots.extend(sel.iter().map(|&i| {
            let i = i as usize;
            if valid[i] {
                codes[i]
            } else {
                null_slot
            }
        }));
    }
}

/// Reset `sel` to the rows `[start, end)` and refine it through each filter
/// kernel in turn, stopping early once no row survives. The one fill+refine
/// loop shared by every engine's scan (morsel, block, or whole-vector).
pub fn fill_filtered(
    sel: &mut SelectionVector,
    table: &Table,
    start: usize,
    end: usize,
    kernels: Option<&[Kernel]>,
) {
    sel.fill_range(start, end);
    if let Some(ks) = kernels {
        for k in ks {
            k.filter_batch(table, sel);
            if sel.is_empty() {
                break;
            }
        }
    }
}

/// The single bare dictionary-encoded group-key column of an aggregate, if
/// the plan has exactly that shape (the dense code-indexed grouping paths
/// require it).
pub fn dict_group_key_col(keys: &[CExpr], table: &Table) -> Option<usize> {
    (keys.len() == 1)
        .then(|| keys[0].as_col())
        .flatten()
        .filter(|&c| matches!(table.column(c), ColumnData::Str { .. }))
}

/// Emit `(group key, finalized aggregates)` for every touched slot of a
/// dense typed state: slot `< dict.len()` keys the dictionary string, the
/// trailing slot keys the NULL group, and with `global` (no group keys) the
/// single slot emits an empty key.
pub fn finalize_typed_groups(
    states: &TypedGroupStates,
    dict: &[std::sync::Arc<str>],
    global: bool,
) -> Vec<(Vec<Value>, Vec<Value>)> {
    (0..states.n_groups())
        .filter(|&s| states.is_touched(s))
        .map(|s| {
            let key = if global {
                Vec::new()
            } else if s < dict.len() {
                vec![Value::Str(dict[s].clone())]
            } else {
                vec![Value::Null]
            };
            let mut finalized = Vec::new();
            states.finalize_into(s, &mut finalized);
            (key, finalized)
        })
        .collect()
}

/// Split `0..n` into at most `parts` contiguous, near-equal ranges.
fn split_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Aggregation strategy, decided once per query from the plan shape.
enum AggMode {
    /// Plain projection: collect output rows.
    Project,
    /// One bare dict-encoded group key and all-typed aggregates: dense
    /// code-indexed typed states (slot = code, last slot = NULL group).
    TypedDict { key_col: usize, dict_len: usize },
    /// One bare dict-encoded group key, generic accumulators per code slot.
    DenseDict { key_col: usize, dict_len: usize },
    /// Global aggregate (no keys) with all-typed aggregates: one slot.
    TypedGlobal,
    /// Fallback: hash grouping over evaluated key values.
    Hash,
}

fn decide_mode(plan: &PreparedQuery, table: &Table) -> AggMode {
    let QueryKind::Aggregate { keys, aggs, .. } = &plan.kind else {
        return AggMode::Project;
    };
    let typed = compile_typed_aggs(aggs, table).is_some();
    match dict_group_key_col(keys, table) {
        Some(key_col) => {
            let dict_len = table
                .column(key_col)
                .dictionary()
                .map_or(0, <[std::sync::Arc<str>]>::len);
            if typed {
                AggMode::TypedDict { key_col, dict_len }
            } else {
                AggMode::DenseDict { key_col, dict_len }
            }
        }
        None if keys.is_empty() && typed => AggMode::TypedGlobal,
        None => AggMode::Hash,
    }
}

/// Partial result of scanning one contiguous range of morsels.
enum Partial {
    Rows(Vec<Vec<Value>>),
    Typed(TypedGroupStates),
    Dense(Vec<Option<Vec<Accumulator>>>),
    Hash(HashMap<Vec<Value>, Vec<Accumulator>>),
}

struct RangePartial {
    partial: Partial,
    matched: usize,
    pruned: usize,
    /// Rows never examined: inside pruned morsels for the fresh scan, or
    /// outside the seed for a seeded scan.
    skipped: usize,
    /// Surviving row indices in table order (delta capture only).
    selection: Option<Vec<u32>>,
}

/// How a scan participates in session-delta execution.
pub enum DeltaScan<'a> {
    /// No participation: the plain fresh scan.
    Off,
    /// Fresh scan that additionally captures the surviving selection (and,
    /// for typed aggregation modes, the merged group states) so a session
    /// delta store can seed later refinements from it.
    Capture,
    /// Scan seeded from a previously captured selection: only the seed rows
    /// are candidates, everything else is provably filtered out already.
    /// With `exact` the seeding query's WHERE is identical to this one's,
    /// so the filter kernels are not re-evaluated at all. Seeded scans
    /// capture their own (sub)selection so refinement chains compound.
    Seeded {
        /// Ascending row indices that survived the seeding query's WHERE.
        seed: &'a [u32],
        /// The WHERE clauses are semantically identical, not merely implied.
        exact: bool,
    },
}

/// Aggregation state retained by a capture, re-finalizable without a scan
/// when a later query repeats the same aggregation shape (`states_key`
/// match) over the same table snapshot.
#[derive(Debug, Clone)]
pub enum GroupStates {
    /// Merged typed per-slot states (the `TypedDict` / `TypedGlobal` fast
    /// paths).
    Typed(TypedGroupStates),
    /// Materialized `(group key, accumulators)` pairs from the dense and
    /// hash aggregation paths. Pair order is irrelevant: emission order is
    /// only observable through ORDER BY, which re-sorts on replay, and
    /// fingerprints hash the sorted row multiset.
    Grouped(Vec<(Vec<Value>, Vec<Accumulator>)>),
}

/// Upper bound on the group count a `GroupStates::Grouped` capture retains.
/// Dashboard group-bys are low-cardinality (binned hours, categorical
/// columns), so this only drops pathological high-cardinality aggregations
/// whose captured states would rival the table itself in size. Skipping a
/// capture is always safe — the store is an optimization cache.
const MAX_CAPTURED_GROUPS: usize = 1 << 16;

/// Work retained from one scan for reuse by a later refinement step.
#[derive(Debug, Clone)]
pub struct DeltaCapture {
    /// Surviving row indices over the whole table, ascending.
    pub selection: Vec<u32>,
    /// Group states: reusable outright when a later query repeats the same
    /// aggregation shape.
    pub states: Option<GroupStates>,
}

/// Morsel-driven vectorized scan: zone-map pruning, selection-vector filter
/// kernels, and (where the plan allows) typed aggregation. With `threads > 1`
/// the morsels are split into contiguous chunks scanned by scoped worker
/// threads whose partial states are merged in morsel order, keeping output
/// deterministic.
pub fn run_morsels(plan: &PreparedQuery, threads: usize) -> (Vec<Vec<Value>>, ExecStats) {
    let (rows, stats, _) = run_morsels_delta(plan, threads, DeltaScan::Off);
    (rows, stats)
}

/// [`run_morsels`] with session-delta participation: optionally capture the
/// surviving selection / typed group states for later reuse, or seed the
/// scan from a previously captured selection (see [`DeltaScan`]).
///
/// Seeded scans run sequentially regardless of `threads`: the seed already
/// collapsed the candidate set to the previous step's survivors, so the
/// remaining work is too small to amortize worker spawn + merge, and a
/// single pass keeps the captured chain selection trivially in table order.
pub fn run_morsels_delta(
    plan: &PreparedQuery,
    threads: usize,
    delta: DeltaScan<'_>,
) -> (Vec<Vec<Value>>, ExecStats, Option<DeltaCapture>) {
    let table = plan.table.as_ref();
    let n = table.row_count();
    let mode = decide_mode(plan, table);
    let (seeded, capture_requested) = match delta {
        DeltaScan::Off => (None, false),
        DeltaScan::Capture => (None, true),
        DeltaScan::Seeded { seed, exact } => (Some((seed, exact)), true),
    };
    // On an exact seed the WHERE is byte-for-byte the seeding query's: the
    // seed rows *are* the survivors, so kernels are never evaluated and
    // need not be compiled.
    let kernels: Option<Vec<Kernel>> = if matches!(seeded, Some((_, true))) {
        None
    } else {
        plan.filter.as_ref().map(|f| compile_kernels(f, table))
    };
    let zones = kernels
        .as_deref()
        .is_some_and(|ks| ks.iter().any(Kernel::is_zone_prunable))
        .then(|| table.zone_maps());
    let n_morsels = morsel_count(n);

    let partials: Vec<RangePartial> = if let Some((seed, exact)) = seeded {
        let _scan = simba_obs::phase!("engine.scan", "engine", "engine.phase.scan");
        vec![scan_seeded(
            plan,
            table,
            kernels.as_deref(),
            zones,
            &mode,
            seed,
            exact,
        )]
    } else {
        let threads = threads.clamp(1, n_morsels.max(1));
        // Zone-map pruning runs as one pre-pass over all morsels so the
        // prune phase is attributable on its own; scan workers then consult
        // the bitmap. The per-morsel decisions are identical to checking
        // inline.
        let pruned_map: Option<Vec<bool>> = match (kernels.as_deref(), zones) {
            (Some(ks), Some(z)) => {
                let _p = simba_obs::phase!("engine.prune", "engine", "engine.phase.prune");
                Some(
                    (0..n_morsels)
                        .map(|m| ks.iter().any(|k| k.prunes_morsel(z, m)))
                        .collect(),
                )
            }
            _ => None,
        };

        let _scan = simba_obs::phase!("engine.scan", "engine", "engine.phase.scan");
        let pruned_map_ref = pruned_map.as_deref();
        if threads <= 1 {
            vec![scan_range(
                plan,
                table,
                kernels.as_deref(),
                pruned_map_ref,
                &mode,
                0..n_morsels,
                capture_requested,
            )]
        } else {
            let mode = &mode;
            let kernels = kernels.as_deref();
            std::thread::scope(|scope| {
                let handles: Vec<_> = split_ranges(n_morsels, threads)
                    .into_iter()
                    .map(|range| {
                        scope.spawn(move || {
                            scan_range(
                                plan,
                                table,
                                kernels,
                                pruned_map_ref,
                                mode,
                                range,
                                capture_requested,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // simba: allow(panic-hygiene): scan_range catches no panics by design — a panicking scan worker is an engine bug, and re-raising it here is the only honest outcome
                    .map(|h| h.join().expect("scan worker panicked"))
                    .collect()
            })
        }
    };

    let _agg_phase = simba_obs::phase!("engine.aggregate", "engine", "engine.phase.aggregate");
    let mut stats = ExecStats {
        rows_scanned: n,
        ..ExecStats::default()
    };
    if let Some((seed, _)) = seeded {
        stats.delta_hits = 1;
        stats.delta_rows_saved = n - seed.len();
    }
    // Captured range selections concatenate in range order, so the chain
    // selection is in ascending table order however many threads scanned.
    let mut chain_selection: Vec<u32> = Vec::new();
    let mut iter = partials.into_iter();
    // simba: allow(panic-hygiene): split_ranges always yields >= 1 range, so there is always a first partial
    let first = iter.next().expect("at least one scan range");
    stats.rows_matched = first.matched;
    stats.morsels_pruned = first.pruned;
    stats.rows_scanned -= first.skipped;
    if let Some(sel) = first.selection {
        chain_selection = sel;
    }
    let mut merged = first.partial;
    for p in iter {
        stats.rows_matched += p.matched;
        stats.morsels_pruned += p.pruned;
        stats.rows_scanned -= p.skipped;
        if let Some(sel) = p.selection {
            chain_selection.extend_from_slice(&sel);
        }
        match (&mut merged, p.partial) {
            (Partial::Rows(a), Partial::Rows(b)) => a.extend(b),
            (Partial::Typed(a), Partial::Typed(b)) => a.merge(&b),
            (Partial::Dense(a), Partial::Dense(b)) => {
                for (slot, accs) in a.iter_mut().zip(b) {
                    match (slot.as_mut(), accs) {
                        (Some(mine), Some(theirs)) => {
                            for (m, t) in mine.iter_mut().zip(&theirs) {
                                m.merge(t);
                            }
                        }
                        (None, theirs @ Some(_)) => *slot = theirs,
                        _ => {}
                    }
                }
            }
            (Partial::Hash(a), Partial::Hash(b)) => {
                // Key-merge order cannot leak: each key's accumulators are
                // merged exactly once into `a`'s slot for that same key, so
                // the merged map is identical whatever order `b` yields —
                // and group emission order is sorted downstream before any
                // fingerprint sees it.
                // simba: allow(nondeterministic-iteration): per-key merge into the matching key's slot is independent of visit order
                for (key, accs) in b {
                    match a.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (m, t) in e.get_mut().iter_mut().zip(&accs) {
                                m.merge(t);
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(accs);
                        }
                    }
                }
            }
            _ => unreachable!("scan ranges share one mode"),
        }
    }

    let mut capture = capture_requested.then(|| DeltaCapture {
        selection: chain_selection,
        states: None,
    });
    let rows = match (merged, &plan.kind) {
        (Partial::Rows(rows), _) => rows,
        (
            Partial::Typed(mut states),
            QueryKind::Aggregate {
                keys,
                projections,
                having,
                ..
            },
        ) => {
            if keys.is_empty() {
                // A global aggregate emits one row even over zero input.
                states.mark_touched(0);
            }
            // Captured *after* the global empty-input touch so a cached
            // state re-finalizes to the identical row set.
            if let Some(cap) = capture.as_mut() {
                cap.states = Some(GroupStates::Typed(states.clone()));
            }
            let dict = match &mode {
                AggMode::TypedDict { key_col, .. } => {
                    table.column(*key_col).dictionary().unwrap_or(&[])
                }
                _ => &[],
            };
            let groups = finalize_typed_groups(&states, dict, keys.is_empty());
            stats.groups = groups.len();
            emit_finalized_groups(projections, having.as_ref(), groups)
        }
        (
            Partial::Dense(slots),
            QueryKind::Aggregate {
                projections,
                having,
                ..
            },
        ) => {
            let dict = match &mode {
                AggMode::DenseDict { key_col, .. } => {
                    table.column(*key_col).dictionary().unwrap_or(&[])
                }
                _ => &[],
            };
            let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
            for (slot, accs) in slots.into_iter().enumerate() {
                if let Some(accs) = accs {
                    let key = if slot < dict.len() {
                        Value::Str(dict[slot].clone())
                    } else {
                        Value::Null
                    };
                    groups.push((vec![key], accs));
                }
            }
            stats.groups = groups.len();
            if let Some(cap) = capture.as_mut() {
                if groups.len() <= MAX_CAPTURED_GROUPS {
                    cap.states = Some(GroupStates::Grouped(groups.clone()));
                }
            }
            crate::exec::emit_groups(projections, having.as_ref(), groups)
        }
        (
            Partial::Hash(mut map),
            QueryKind::Aggregate {
                keys,
                aggs,
                projections,
                having,
            },
        ) => {
            if keys.is_empty() && map.is_empty() {
                map.insert(Vec::new(), new_group(aggs));
            }
            stats.groups = map.len();
            // Materialize before emitting so the same pairs can be both
            // captured and consumed. Drain order does not matter (see
            // `GroupStates::Grouped`).
            // simba: allow(nondeterministic-iteration): pair order is unobservable — ORDER BY re-sorts and fingerprints hash the sorted multiset
            let groups: Vec<(Vec<Value>, Vec<Accumulator>)> = map.into_iter().collect();
            if let Some(cap) = capture.as_mut() {
                if groups.len() <= MAX_CAPTURED_GROUPS {
                    cap.states = Some(GroupStates::Grouped(groups.clone()));
                }
            }
            crate::exec::emit_groups(projections, having.as_ref(), groups)
        }
        _ => unreachable!("partial shape matches plan kind"),
    };
    (rows, stats, capture)
}

/// Re-finalize cached typed group states against `plan`'s projections,
/// HAVING, ORDER BY, and LIMIT without touching the table at all. Sound only
/// when the cached states were captured for the same (table, WHERE,
/// projections, GROUP BY, HAVING) — the caller's `states_key` match
/// establishes that; the shape guards here are defense in depth. `matched`
/// is the seeding scan's surviving-row count, reported as this execution's
/// `rows_matched`.
pub fn run_typed_from_cache(
    plan: &PreparedQuery,
    states: &TypedGroupStates,
    matched: usize,
) -> Option<(Vec<Vec<Value>>, ExecStats)> {
    let table = plan.table.as_ref();
    let QueryKind::Aggregate {
        keys,
        aggs,
        projections,
        having,
    } = &plan.kind
    else {
        return None;
    };
    if states.kinds.len() != aggs.len() {
        return None;
    }
    let (dict, global): (&[std::sync::Arc<str>], bool) = match decide_mode(plan, table) {
        AggMode::TypedDict { key_col, dict_len } => {
            if states.n_groups() != dict_len + 1 {
                return None;
            }
            (table.column(key_col).dictionary().unwrap_or(&[]), false)
        }
        AggMode::TypedGlobal => {
            if states.n_groups() != 1 || !keys.is_empty() {
                return None;
            }
            (&[], true)
        }
        _ => return None,
    };
    let groups = finalize_typed_groups(states, dict, global);
    let stats = ExecStats {
        rows_matched: matched,
        groups: groups.len(),
        delta_group_hits: 1,
        delta_rows_saved: table.row_count(),
        ..ExecStats::default()
    };
    Some((
        emit_finalized_groups(projections, having.as_ref(), groups),
        stats,
    ))
}

/// Re-finalize cached materialized groups (the dense and hash aggregation
/// paths) against `plan`'s projections, HAVING, ORDER BY, and LIMIT without
/// touching the table. Soundness comes from the caller's `states_key` match
/// plus the store's generation / snapshot-identity checks; the accumulator
/// arity guard here is defense in depth. `matched` is the seeding scan's
/// surviving-row count, reported as this execution's `rows_matched`.
pub fn run_grouped_from_cache(
    plan: &PreparedQuery,
    groups: &[(Vec<Value>, Vec<Accumulator>)],
    matched: usize,
) -> Option<(Vec<Vec<Value>>, ExecStats)> {
    let QueryKind::Aggregate {
        aggs,
        projections,
        having,
        ..
    } = &plan.kind
    else {
        return None;
    };
    if groups.iter().any(|(_, accs)| accs.len() != aggs.len()) {
        return None;
    }
    let stats = ExecStats {
        rows_matched: matched,
        groups: groups.len(),
        delta_group_hits: 1,
        delta_rows_saved: plan.table.row_count(),
        ..ExecStats::default()
    };
    Some((
        crate::exec::emit_groups(projections, having.as_ref(), groups.to_vec()),
        stats,
    ))
}

/// Empty partial state for one scan range, shaped by the aggregation mode.
fn make_partial(plan: &PreparedQuery, table: &Table, mode: &AggMode) -> Partial {
    match mode {
        AggMode::Project => Partial::Rows(Vec::new()),
        AggMode::TypedDict { dict_len, .. } => {
            let QueryKind::Aggregate { aggs, .. } = &plan.kind else {
                unreachable!()
            };
            Partial::Typed(
                TypedGroupStates::compile(aggs, table, dict_len + 1)
                    // simba: allow(panic-hygiene): AggMode selection already ran compile successfully on this (aggs, table) pair; failure here is unreachable
                    .expect("mode chosen with typed support"),
            )
        }
        AggMode::TypedGlobal => {
            let QueryKind::Aggregate { aggs, .. } = &plan.kind else {
                unreachable!()
            };
            Partial::Typed(
                // simba: allow(panic-hygiene): AggMode selection already ran compile successfully on this (aggs, table) pair; failure here is unreachable
                TypedGroupStates::compile(aggs, table, 1).expect("mode chosen with typed support"),
            )
        }
        AggMode::DenseDict { dict_len, .. } => Partial::Dense(vec![None; dict_len + 1]),
        AggMode::Hash => Partial::Hash(HashMap::new()),
    }
}

/// Feed one filtered batch into a range's partial state — the per-morsel
/// aggregation step shared by the fresh and seeded scans.
fn update_partial(
    partial: &mut Partial,
    plan: &PreparedQuery,
    table: &Table,
    mode: &AggMode,
    sel: &SelectionVector,
    slots: &mut Vec<u32>,
) {
    match (partial, mode) {
        (Partial::Rows(rows), AggMode::Project) => {
            let QueryKind::Project { exprs } = &plan.kind else {
                unreachable!()
            };
            for &i in sel.as_slice() {
                let ctx = TableRow {
                    table,
                    row: i as usize,
                };
                rows.push(exprs.iter().map(|e| eval(e, &ctx)).collect());
            }
        }
        (Partial::Typed(states), AggMode::TypedDict { key_col, dict_len }) => {
            dict_key_slots(
                table.column(*key_col),
                sel.as_slice(),
                slots,
                *dict_len as u32,
            );
            states.update_batch(table, sel.as_slice(), slots);
        }
        (Partial::Typed(states), AggMode::TypedGlobal) => {
            slots.clear();
            slots.resize(sel.len(), 0);
            states.update_batch(table, sel.as_slice(), slots);
        }
        (Partial::Dense(groups), AggMode::DenseDict { key_col, dict_len }) => {
            let QueryKind::Aggregate { aggs, .. } = &plan.kind else {
                unreachable!()
            };
            let col = table.column(*key_col);
            for &i in sel.as_slice() {
                let row = i as usize;
                let slot = match col.code(row) {
                    Some(code) => code as usize,
                    None => *dict_len,
                };
                let accs = groups[slot].get_or_insert_with(|| new_group(aggs));
                update_group(accs, aggs, table, row);
            }
        }
        (Partial::Hash(map), AggMode::Hash) => {
            let QueryKind::Aggregate { keys, aggs, .. } = &plan.kind else {
                unreachable!()
            };
            for &i in sel.as_slice() {
                let ctx = TableRow {
                    table,
                    row: i as usize,
                };
                let key: Vec<Value> = keys.iter().map(|k| eval(k, &ctx)).collect();
                let accs = map.entry(key).or_insert_with(|| new_group(aggs));
                for (acc, spec) in accs.iter_mut().zip(aggs) {
                    match &spec.arg {
                        None => acc.update_star(),
                        Some(arg) => acc.update_value(eval(arg, &ctx)),
                    }
                }
            }
        }
        _ => unreachable!("partial shape matches mode"),
    }
}

fn scan_range(
    plan: &PreparedQuery,
    table: &Table,
    kernels: Option<&[Kernel]>,
    pruned_map: Option<&[bool]>,
    mode: &AggMode,
    morsels: std::ops::Range<usize>,
    capture: bool,
) -> RangePartial {
    let n = table.row_count();
    let mut sel = SelectionVector::with_capacity(MORSEL);
    let mut slots: Vec<u32> = Vec::new();
    let (mut matched, mut pruned, mut skipped) = (0usize, 0usize, 0usize);
    let mut partial = make_partial(plan, table, mode);
    let mut selection = capture.then(Vec::new);

    for m in morsels {
        let (start, end) = morsel_bounds(m, n);
        if pruned_map.is_some_and(|p| p[m]) {
            pruned += 1;
            skipped += end - start;
            continue;
        }
        fill_filtered(&mut sel, table, start, end, kernels);
        if sel.is_empty() {
            continue;
        }
        matched += sel.len();
        if let Some(out) = selection.as_mut() {
            out.extend_from_slice(sel.as_slice());
        }
        update_partial(&mut partial, plan, table, mode, &sel, &mut slots);
    }
    RangePartial {
        partial,
        matched,
        pruned,
        skipped,
        selection,
    }
}

/// Scan only the seed rows (a previous refinement step's survivors),
/// morsel-aligned so zone maps can still prune and the aggregation arms see
/// batches no wider than [`MORSEL`]. `rows_scanned` counts the candidates
/// actually examined, so the stats honestly show the seeded scan's work.
fn scan_seeded(
    plan: &PreparedQuery,
    table: &Table,
    kernels: Option<&[Kernel]>,
    zones: Option<&ZoneMaps>,
    mode: &AggMode,
    seed: &[u32],
    exact: bool,
) -> RangePartial {
    let n = table.row_count();
    let mut sel = SelectionVector::with_capacity(MORSEL);
    let mut slots: Vec<u32> = Vec::new();
    let mut partial = make_partial(plan, table, mode);
    let mut selection = Vec::with_capacity(seed.len());
    let (mut matched, mut pruned, mut examined) = (0usize, 0usize, 0usize);

    let mut pos = 0;
    while pos < seed.len() {
        let m = seed[pos] as usize / MORSEL;
        let morsel_end = ((m + 1) * MORSEL) as u32;
        let chunk_end = pos + seed[pos..].partition_point(|&r| r < morsel_end);
        let chunk = &seed[pos..chunk_end];
        pos = chunk_end;
        if let (Some(ks), Some(z)) = (kernels, zones) {
            if ks.iter().any(|k| k.prunes_morsel(z, m)) {
                pruned += 1;
                continue;
            }
        }
        examined += chunk.len();
        sel.fill_from(chunk);
        if !exact {
            if let Some(ks) = kernels {
                for k in ks {
                    k.filter_batch(table, &mut sel);
                    if sel.is_empty() {
                        break;
                    }
                }
            }
        }
        if sel.is_empty() {
            continue;
        }
        matched += sel.len();
        selection.extend_from_slice(sel.as_slice());
        update_partial(&mut partial, plan, table, mode, &sel, &mut slots);
    }
    RangePartial {
        partial,
        matched,
        pruned,
        // The caller derives rows_scanned as `n - skipped`; report the
        // candidates examined, not the table size.
        skipped: n - examined,
        selection: Some(selection),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CExpr;
    use crate::test_support::sample_table;
    use simba_sql::parse_select;
    use std::sync::Arc;

    fn table() -> Table {
        sample_table()
    }

    #[test]
    fn int_filter_batch_matches_row_kernel() {
        let t = table();
        let k = Kernel::IntCmp {
            col: 1,
            op: BinOp::Gt,
            rhs: 2,
        };
        let mut sel = SelectionVector::with_capacity(8);
        sel.fill_range(0, t.row_count());
        k.filter_batch(&t, &mut sel);
        let expect: Vec<u32> = (0..t.row_count() as u32)
            .filter(|&i| k.matches(&t, i as usize))
            .collect();
        assert_eq!(sel.as_slice(), expect.as_slice());
    }

    #[test]
    fn dict_filter_batch_drops_nulls() {
        let t = table();
        let filter = crate::plan::compile_row_expr(
            &simba_sql::Expr::in_strs("queue", vec!["A"]),
            t.schema(),
        )
        .unwrap();
        let kernels = compile_kernels(&filter, &t);
        let mut sel = SelectionVector::with_capacity(8);
        sel.fill_range(0, t.row_count());
        for k in &kernels {
            k.filter_batch(&t, &mut sel);
        }
        assert_eq!(sel.as_slice(), &[0, 2]);
    }

    #[test]
    fn generic_kernel_refines_surviving_rows_only() {
        let t = table();
        // `calls + 0 > 2` does not specialize: exercised via the interpreter.
        let filter = CExpr::Bin {
            l: Box::new(CExpr::Bin {
                l: Box::new(CExpr::Col(1)),
                op: BinOp::Add,
                r: Box::new(CExpr::Lit(Value::Int(0))),
            }),
            op: BinOp::Gt,
            r: Box::new(CExpr::Lit(Value::Int(2))),
        };
        let kernels = compile_kernels(&filter, &t);
        assert!(matches!(kernels[0], Kernel::Generic(_)));
        let mut sel = SelectionVector::with_capacity(8);
        sel.fill_range(0, t.row_count());
        kernels[0].filter_batch(&t, &mut sel);
        assert_eq!(sel.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn zone_pruning_skips_impossible_morsels() {
        let t = table();
        let zones = t.zone_maps();
        // calls ∈ [1, 7]; `calls > 100` prunes the only morsel.
        let k = Kernel::IntCmp {
            col: 1,
            op: BinOp::Gt,
            rhs: 100,
        };
        assert!(k.prunes_morsel(zones, 0));
        let k = Kernel::IntCmp {
            col: 1,
            op: BinOp::Gt,
            rhs: 3,
        };
        assert!(!k.prunes_morsel(zones, 0));
    }

    #[test]
    fn run_morsels_agrees_with_row_path_on_typed_aggregate() {
        let t = Arc::new(table());
        let q = parse_select(
            "SELECT queue, COUNT(*), SUM(calls), MIN(calls), MAX(duration), AVG(calls) \
             FROM cs WHERE calls >= 1 GROUP BY queue",
        )
        .unwrap();
        let plan = crate::plan::prepare(&q, t).unwrap();
        let (batch_rows, batch_stats) = run_morsels(&plan, 1);
        let (row_rows, row_stats) = crate::exec::run_row(&plan);
        let mut a = batch_rows;
        let mut b = row_rows;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(batch_stats.rows_matched, row_stats.rows_matched);
    }

    #[test]
    fn run_morsels_parallel_matches_sequential() {
        let t = Arc::new(table());
        let q = parse_select(
            "SELECT queue, COUNT(*), SUM(calls) FROM cs WHERE calls >= 1 GROUP BY queue",
        )
        .unwrap();
        let plan = crate::plan::prepare(&q, t).unwrap();
        let (seq, _) = run_morsels(&plan, 1);
        let (par, _) = run_morsels(&plan, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn global_typed_aggregate_over_empty_selection_emits_one_row() {
        let t = Arc::new(table());
        let q = parse_select("SELECT COUNT(*), SUM(calls) FROM cs WHERE calls > 999").unwrap();
        let plan = crate::plan::prepare(&q, t).unwrap();
        let (rows, stats) = run_morsels(&plan, 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert!(rows[0][1].is_null());
        assert_eq!(stats.morsels_pruned, 1, "zone map prunes the only morsel");
        assert_eq!(stats.rows_scanned, 0, "pruned rows are never read");
    }

    #[test]
    fn split_ranges_covers_everything_without_overlap() {
        for (n, parts) in [(10, 3), (1, 4), (0, 2), (7, 7), (8, 2)] {
            let ranges = split_ranges(n, parts);
            let mut covered = 0;
            let mut expect_start = 0;
            for r in &ranges {
                assert_eq!(r.start, expect_start);
                expect_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, n, "n={n} parts={parts}");
        }
    }
}
