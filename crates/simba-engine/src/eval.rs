//! Compiled expressions and the shared scalar evaluator.
//!
//! All four engines share one *semantic* core — the same compiled expression
//! type ([`CExpr`]) and evaluator — so that they agree bit-for-bit on query
//! results (property-tested) while differing in *how* they iterate storage.
//!
//! Column references are resolved to indices at plan time; at group level the
//! same [`CExpr`] type is reused with `Col(i)` indexing into a virtual row of
//! `[group keys… , aggregate results…]`.

use simba_sql::{BinOp, Func, Literal, UnaryOp};
use simba_store::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Access to the columns of a (possibly virtual) row.
pub trait ColumnAccess {
    /// Value of column `idx` for the current row.
    fn value(&self, idx: usize) -> Value;
}

/// A borrowed materialized row.
pub struct RowSlice<'a>(pub &'a [Value]);

impl ColumnAccess for RowSlice<'_> {
    #[inline]
    fn value(&self, idx: usize) -> Value {
        self.0[idx].clone()
    }
}

/// Lazy positional access into a table (no row materialization).
pub struct TableRow<'a> {
    pub table: &'a simba_store::Table,
    pub row: usize,
}

impl ColumnAccess for TableRow<'_> {
    #[inline]
    fn value(&self, idx: usize) -> Value {
        self.table.column(idx).value(self.row)
    }
}

/// A literal set with a hash index for fast `IN` membership tests.
#[derive(Debug, Clone)]
pub struct ValueSet {
    values: Vec<Value>,
    index: HashSet<Value>,
}

impl ValueSet {
    pub fn new(values: Vec<Value>) -> Self {
        let index = values.iter().cloned().collect();
        Self { values, index }
    }

    pub fn contains(&self, v: &Value) -> bool {
        self.index.contains(v)
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A compiled, aggregate-free scalar expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Column (or virtual-row slot) reference.
    Col(usize),
    /// Constant.
    Lit(Value),
    Un {
        op: UnaryOp,
        e: Box<CExpr>,
    },
    Bin {
        l: Box<CExpr>,
        op: BinOp,
        r: Box<CExpr>,
    },
    /// Scalar function call (date parts, `BIN`, `ABS`).
    Call {
        func: Func,
        args: Vec<CExpr>,
    },
    In {
        e: Box<CExpr>,
        set: Arc<ValueSet>,
        negated: bool,
    },
    Between {
        e: Box<CExpr>,
        low: Box<CExpr>,
        high: Box<CExpr>,
        negated: bool,
    },
    IsNull {
        e: Box<CExpr>,
        negated: bool,
    },
}

impl CExpr {
    /// Convert a SQL literal to a runtime value.
    pub fn lit_value(lit: &Literal) -> Value {
        match lit {
            Literal::Null => Value::Null,
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Int(v) => Value::Int(*v),
            Literal::Float(v) => Value::Float(*v),
            Literal::Str(s) => Value::str(s),
        }
    }

    /// If this is a simple `Col` reference, its index.
    pub fn as_col(&self) -> Option<usize> {
        match self {
            CExpr::Col(i) => Some(*i),
            _ => None,
        }
    }
}

/// Evaluate a compiled expression against a row. NULL propagates through
/// arithmetic and scalar functions; boolean logic is three-valued with
/// `Value::Null` standing in for UNKNOWN.
pub fn eval(e: &CExpr, row: &impl ColumnAccess) -> Value {
    match e {
        CExpr::Col(i) => row.value(*i),
        CExpr::Lit(v) => v.clone(),
        CExpr::Un { op, e } => {
            let v = eval(e, row);
            match op {
                UnaryOp::Neg => match v {
                    Value::Int(x) => Value::Int(-x),
                    Value::Float(x) => Value::Float(-x),
                    _ => Value::Null,
                },
                UnaryOp::Not => match v {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => Value::Null,
                },
            }
        }
        CExpr::Bin { l, op, r } => {
            if *op == BinOp::And || *op == BinOp::Or {
                return eval_logic(l, *op, r, row);
            }
            let lv = eval(l, row);
            let rv = eval(r, row);
            if op.is_comparison() {
                // Equality uses type-class-aware semantics (mixed types are
                // not equal); ordered comparisons on mixed types are UNKNOWN.
                return match op {
                    BinOp::Eq => match lv.sql_eq(&rv) {
                        None => Value::Null,
                        Some(b) => Value::Bool(b),
                    },
                    BinOp::NotEq => match lv.sql_eq(&rv) {
                        None => Value::Null,
                        Some(b) => Value::Bool(!b),
                    },
                    _ => match lv.sql_cmp(&rv) {
                        None => Value::Null,
                        Some(ord) => Value::Bool(match op {
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::GtEq => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        }),
                    },
                };
            }
            eval_arith(&lv, *op, &rv)
        }
        CExpr::Call { func, args } => eval_call(*func, args, row),
        CExpr::In { e, set, negated } => {
            let v = eval(e, row);
            if v.is_null() {
                return Value::Null;
            }
            let found = set.contains(&v);
            Value::Bool(found != *negated)
        }
        CExpr::Between {
            e,
            low,
            high,
            negated,
        } => {
            let v = eval(e, row);
            let lo = eval(low, row);
            let hi = eval(high, row);
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Value::Bool(inside != *negated)
                }
                _ => Value::Null,
            }
        }
        CExpr::IsNull { e, negated } => {
            let v = eval(e, row);
            Value::Bool(v.is_null() != *negated)
        }
    }
}

/// Evaluate a predicate to SQL three-valued logic: `Some(true)`, `Some(false)`
/// or `None` (UNKNOWN). WHERE clauses keep a row only on `Some(true)`.
pub fn eval_predicate(e: &CExpr, row: &impl ColumnAccess) -> Option<bool> {
    match eval(e, row) {
        Value::Bool(b) => Some(b),
        Value::Null => None,
        // Non-boolean predicate results are treated as errors upstream;
        // at runtime we conservatively treat them as UNKNOWN.
        _ => None,
    }
}

fn eval_logic(l: &CExpr, op: BinOp, r: &CExpr, row: &impl ColumnAccess) -> Value {
    let lv = eval_predicate(l, row);
    match (op, lv) {
        // Short-circuit.
        (BinOp::And, Some(false)) => Value::Bool(false),
        (BinOp::Or, Some(true)) => Value::Bool(true),
        _ => {
            let rv = eval_predicate(r, row);
            match op {
                BinOp::And => match (lv, rv) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                },
                BinOp::Or => match (lv, rv) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                },
                _ => unreachable!(),
            }
        }
    }
}

fn eval_arith(l: &Value, op: BinOp, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    // Integer arithmetic stays integral except for division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            _ => Value::Null,
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            BinOp::Add => Value::Float(a + b),
            BinOp::Sub => Value::Float(a - b),
            BinOp::Mul => Value::Float(a * b),
            BinOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

fn eval_call(func: Func, args: &[CExpr], row: &impl ColumnAccess) -> Value {
    match func {
        Func::Year | Func::Month | Func::Day | Func::Hour | Func::DayOfWeek => {
            let v = eval(&args[0], row);
            let Some(secs) = v.as_i64() else {
                return Value::Null;
            };
            Value::Int(date_part(func, secs))
        }
        Func::Bin => {
            let v = eval(&args[0], row);
            let w = eval(&args[1], row);
            match (&v, &w) {
                (Value::Int(x), Value::Int(b)) if *b > 0 => Value::Int(x.div_euclid(*b) * *b),
                _ => match (v.as_f64(), w.as_f64()) {
                    (Some(x), Some(b)) if b > 0.0 => Value::Float((x / b).floor() * b),
                    _ => Value::Null,
                },
            }
        }
        Func::Abs => match eval(&args[0], row) {
            Value::Int(x) => Value::Int(x.abs()),
            Value::Float(x) => Value::Float(x.abs()),
            _ => Value::Null,
        },
        // Aggregates never reach the scalar evaluator.
        _ => Value::Null,
    }
}

/// Extract a date part from epoch seconds (UTC).
pub fn date_part(func: Func, epoch_secs: i64) -> i64 {
    let days = epoch_secs.div_euclid(86_400);
    let secs_of_day = epoch_secs.rem_euclid(86_400);
    match func {
        Func::Hour => secs_of_day / 3600,
        Func::DayOfWeek => (days + 4).rem_euclid(7), // 1970-01-01 was a Thursday; 0 = Sunday
        Func::Year => civil_from_days(days).0,
        Func::Month => civil_from_days(days).1,
        Func::Day => civil_from_days(days).2,
        _ => 0,
    }
}

/// Convert days-since-epoch to (year, month, day). Howard Hinnant's
/// `civil_from_days` algorithm.
pub fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // day of era [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // year of era
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // day of year
    let mp = (5 * doy + 2) / 153; // month index [0, 11], March = 0
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(e: CExpr) -> Box<CExpr> {
        Box::new(e)
    }

    fn row(vals: Vec<Value>) -> Vec<Value> {
        vals
    }

    #[test]
    fn comparisons_three_valued() {
        let e = CExpr::Bin {
            l: b(CExpr::Col(0)),
            op: BinOp::Gt,
            r: b(CExpr::Lit(Value::Int(5))),
        };
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(7)]))),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(3)]))),
            Some(false)
        );
        assert_eq!(eval_predicate(&e, &RowSlice(&row(vec![Value::Null]))), None);
    }

    #[test]
    fn and_short_circuits_false_with_null() {
        // FALSE AND UNKNOWN = FALSE.
        let e = CExpr::Bin {
            l: b(CExpr::Lit(Value::Bool(false))),
            op: BinOp::And,
            r: b(CExpr::Bin {
                l: b(CExpr::Lit(Value::Null)),
                op: BinOp::Eq,
                r: b(CExpr::Lit(Value::Int(1))),
            }),
        };
        assert_eq!(eval_predicate(&e, &RowSlice(&[])), Some(false));
    }

    #[test]
    fn or_with_unknown() {
        // UNKNOWN OR TRUE = TRUE; UNKNOWN OR FALSE = UNKNOWN.
        let unknown = CExpr::Bin {
            l: b(CExpr::Lit(Value::Null)),
            op: BinOp::Eq,
            r: b(CExpr::Lit(Value::Int(1))),
        };
        let t = CExpr::Bin {
            l: b(unknown.clone()),
            op: BinOp::Or,
            r: b(CExpr::Lit(Value::Bool(true))),
        };
        assert_eq!(eval_predicate(&t, &RowSlice(&[])), Some(true));
        let f = CExpr::Bin {
            l: b(unknown),
            op: BinOp::Or,
            r: b(CExpr::Lit(Value::Bool(false))),
        };
        assert_eq!(eval_predicate(&f, &RowSlice(&[])), None);
    }

    #[test]
    fn int_arithmetic_stays_integral_except_division() {
        let add = CExpr::Bin {
            l: b(CExpr::Lit(Value::Int(2))),
            op: BinOp::Add,
            r: b(CExpr::Lit(Value::Int(3))),
        };
        assert_eq!(eval(&add, &RowSlice(&[])), Value::Int(5));
        let div = CExpr::Bin {
            l: b(CExpr::Lit(Value::Int(7))),
            op: BinOp::Div,
            r: b(CExpr::Lit(Value::Int(2))),
        };
        assert_eq!(eval(&div, &RowSlice(&[])), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let div = CExpr::Bin {
            l: b(CExpr::Lit(Value::Int(7))),
            op: BinOp::Div,
            r: b(CExpr::Lit(Value::Int(0))),
        };
        assert!(eval(&div, &RowSlice(&[])).is_null());
    }

    #[test]
    fn in_set_membership() {
        let set = Arc::new(ValueSet::new(vec![Value::str("A"), Value::str("B")]));
        let e = CExpr::In {
            e: b(CExpr::Col(0)),
            set,
            negated: false,
        };
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::str("A")]))),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::str("Z")]))),
            Some(false)
        );
        assert_eq!(eval_predicate(&e, &RowSlice(&row(vec![Value::Null]))), None);
    }

    #[test]
    fn between_boundaries_inclusive() {
        let e = CExpr::Between {
            e: b(CExpr::Col(0)),
            low: b(CExpr::Lit(Value::Int(1))),
            high: b(CExpr::Lit(Value::Int(5))),
            negated: false,
        };
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(1)]))),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(5)]))),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(6)]))),
            Some(false)
        );
    }

    #[test]
    fn is_null_predicate() {
        let e = CExpr::IsNull {
            e: b(CExpr::Col(0)),
            negated: false,
        };
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Null]))),
            Some(true)
        );
        assert_eq!(
            eval_predicate(&e, &RowSlice(&row(vec![Value::Int(1)]))),
            Some(false)
        );
    }

    #[test]
    fn date_parts_known_timestamp() {
        // 2021-06-15 14:30:00 UTC = 1623767400.
        let ts = 1_623_767_400i64;
        assert_eq!(date_part(Func::Year, ts), 2021);
        assert_eq!(date_part(Func::Month, ts), 6);
        assert_eq!(date_part(Func::Day, ts), 15);
        assert_eq!(date_part(Func::Hour, ts), 14);
        // 2021-06-15 was a Tuesday (0 = Sunday).
        assert_eq!(date_part(Func::DayOfWeek, ts), 2);
    }

    #[test]
    fn date_parts_epoch_start() {
        assert_eq!(date_part(Func::Year, 0), 1970);
        assert_eq!(date_part(Func::Month, 0), 1);
        assert_eq!(date_part(Func::Day, 0), 1);
        assert_eq!(date_part(Func::DayOfWeek, 0), 4); // Thursday
    }

    #[test]
    fn date_parts_pre_epoch() {
        // 1969-12-31 23:00:00 UTC = -3600.
        assert_eq!(date_part(Func::Year, -3600), 1969);
        assert_eq!(date_part(Func::Month, -3600), 12);
        assert_eq!(date_part(Func::Day, -3600), 31);
        assert_eq!(date_part(Func::Hour, -3600), 23);
    }

    #[test]
    fn bin_floors_to_multiples() {
        let e = CExpr::Call {
            func: Func::Bin,
            args: vec![CExpr::Col(0), CExpr::Lit(Value::Int(10))],
        };
        assert_eq!(
            eval(&e, &RowSlice(&row(vec![Value::Int(27)]))),
            Value::Int(20)
        );
        assert_eq!(
            eval(&e, &RowSlice(&row(vec![Value::Int(-3)]))),
            Value::Int(-10)
        );
        assert_eq!(
            eval(&e, &RowSlice(&row(vec![Value::Float(27.5)]))),
            Value::Float(20.0)
        );
    }

    #[test]
    fn abs_function() {
        let e = CExpr::Call {
            func: Func::Abs,
            args: vec![CExpr::Col(0)],
        };
        assert_eq!(
            eval(&e, &RowSlice(&row(vec![Value::Int(-4)]))),
            Value::Int(4)
        );
        assert_eq!(
            eval(&e, &RowSlice(&row(vec![Value::Float(-1.5)]))),
            Value::Float(1.5)
        );
    }

    #[test]
    fn string_number_comparison_is_unknown() {
        let e = CExpr::Bin {
            l: b(CExpr::Lit(Value::str("a"))),
            op: BinOp::Lt,
            r: b(CExpr::Lit(Value::Int(1))),
        };
        assert_eq!(eval_predicate(&e, &RowSlice(&[])), None);
    }

    #[test]
    fn civil_from_days_leap_years() {
        // 2020-02-29 = 18321 days after epoch.
        assert_eq!(civil_from_days(18_321), (2020, 2, 29));
        // 2000-03-01.
        assert_eq!(civil_from_days(11_017), (2000, 3, 1));
    }
}
