//! Aggregate accumulators shared by all engines.
//!
//! The accumulator semantics (NULL skipping, `COUNT(*)` vs `COUNT(x)`,
//! integer-preserving `SUM`) are defined once here so that every engine
//! produces identical results by construction.

use crate::error::EngineError;
use crate::eval::CExpr;
use simba_sql::Func;
use simba_store::Value;
use std::collections::HashSet;

/// A compiled aggregate call: `func([DISTINCT] arg)`. `arg` is `None` for
/// `COUNT(*)`.
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: Func,
    pub arg: Option<CExpr>,
    pub distinct: bool,
}

impl AggSpec {
    /// Instantiate a fresh accumulator for this aggregate.
    pub fn accumulator(&self) -> Accumulator {
        match (self.func, self.distinct) {
            (Func::Count, true) => Accumulator::CountDistinct(HashSet::new()),
            (Func::Count, false) => {
                if self.arg.is_none() {
                    Accumulator::CountStar(0)
                } else {
                    Accumulator::Count(0)
                }
            }
            (Func::Sum, _) => Accumulator::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                any: false,
            },
            (Func::Avg, _) => Accumulator::Avg { sum: 0.0, n: 0 },
            (Func::Min, _) => Accumulator::Min(None),
            (Func::Max, _) => Accumulator::Max(None),
            _ => unreachable!("non-aggregate function in AggSpec"),
        }
    }

    /// Validate the spec at plan time.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.distinct && self.func != Func::Count {
            return Err(EngineError::Unsupported(format!(
                "DISTINCT is only supported for COUNT, not {}",
                self.func.name()
            )));
        }
        if self.arg.is_none() && self.func != Func::Count {
            return Err(EngineError::Invalid(format!(
                "{}(*) is not a valid aggregate",
                self.func.name()
            )));
        }
        Ok(())
    }
}

/// Mutable aggregation state for one group and one aggregate.
#[derive(Debug, Clone)]
pub enum Accumulator {
    CountStar(i64),
    Count(i64),
    CountDistinct(HashSet<Value>),
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
        any: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accumulator {
    /// Feed one row for `COUNT(*)`.
    #[inline]
    pub fn update_star(&mut self) {
        if let Accumulator::CountStar(n) = self {
            *n += 1;
        }
    }

    /// Feed one argument value. NULL inputs are skipped per SQL semantics.
    #[inline]
    pub fn update_value(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => *n += 1,
            Accumulator::CountDistinct(seen) => {
                seen.insert(v);
            }
            Accumulator::Sum {
                int,
                float,
                saw_float,
                any,
            } => {
                *any = true;
                match v {
                    Value::Int(x) => {
                        *int = int.wrapping_add(x);
                        *float += x as f64;
                    }
                    Value::Float(x) => {
                        *saw_float = true;
                        *float += x;
                    }
                    _ => {}
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *n += 1;
                }
            }
            Accumulator::Min(cur) => match cur {
                Some(m) if &v >= m => {}
                _ => *cur = Some(v),
            },
            Accumulator::Max(cur) => match cur {
                Some(m) if &v <= m => {}
                _ => *cur = Some(v),
            },
        }
    }

    /// Fold another accumulator's state into this one. `other` must come
    /// from the same [`AggSpec`] and must cover *later* rows: min/max ties
    /// keep `self`'s value (the keep-first rule), so merging partial states
    /// in scan order reproduces the sequential result.
    pub fn merge(&mut self, other: &Accumulator) {
        match (self, other) {
            (Accumulator::CountStar(a), Accumulator::CountStar(b))
            | (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::CountDistinct(a), Accumulator::CountDistinct(b)) => {
                // simba: allow(nondeterministic-iteration): set union — insertion order cannot change the resulting set or its count
                a.extend(b.iter().cloned());
            }
            (
                Accumulator::Sum {
                    int,
                    float,
                    saw_float,
                    any,
                },
                Accumulator::Sum {
                    int: oi,
                    float: of,
                    saw_float: osf,
                    any: oa,
                },
            ) => {
                *int = int.wrapping_add(*oi);
                *float += of;
                *saw_float |= osf;
                *any |= oa;
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: os, n: on }) => {
                *sum += os;
                *n += on;
            }
            (Accumulator::Min(cur), Accumulator::Min(Some(v))) => match cur {
                Some(m) if v >= m => {}
                _ => *cur = Some(v.clone()),
            },
            (Accumulator::Max(cur), Accumulator::Max(Some(v))) => match cur {
                Some(m) if v <= m => {}
                _ => *cur = Some(v.clone()),
            },
            (Accumulator::Min(_), Accumulator::Min(None))
            | (Accumulator::Max(_), Accumulator::Max(None)) => {}
            (a, b) => unreachable!("merging mismatched accumulators: {a:?} vs {b:?}"),
        }
    }

    /// Final aggregate value for the group.
    pub fn finalize(&self) -> Value {
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => Value::Int(*n),
            Accumulator::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Accumulator::Sum {
                int,
                float,
                saw_float,
                any,
            } => {
                if !*any {
                    Value::Null
                } else if *saw_float {
                    Value::Float(*float)
                } else {
                    Value::Int(*int)
                }
            }
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(func: Func, has_arg: bool, distinct: bool) -> AggSpec {
        AggSpec {
            func,
            arg: if has_arg { Some(CExpr::Col(0)) } else { None },
            distinct,
        }
    }

    #[test]
    fn count_star_counts_all_rows() {
        let mut a = spec(Func::Count, false, false).accumulator();
        a.update_star();
        a.update_star();
        assert_eq!(a.finalize(), Value::Int(2));
    }

    #[test]
    fn count_column_skips_nulls() {
        let mut a = spec(Func::Count, true, false).accumulator();
        a.update_value(Value::Int(1));
        a.update_value(Value::Null);
        a.update_value(Value::Int(3));
        assert_eq!(a.finalize(), Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let mut a = spec(Func::Count, true, true).accumulator();
        for v in [
            Value::str("A"),
            Value::str("B"),
            Value::str("A"),
            Value::Null,
        ] {
            a.update_value(v);
        }
        assert_eq!(a.finalize(), Value::Int(2));
    }

    #[test]
    fn sum_preserves_integers() {
        let mut a = spec(Func::Sum, true, false).accumulator();
        a.update_value(Value::Int(2));
        a.update_value(Value::Int(3));
        assert_eq!(a.finalize(), Value::Int(5));
    }

    #[test]
    fn sum_widens_on_float() {
        let mut a = spec(Func::Sum, true, false).accumulator();
        a.update_value(Value::Int(2));
        a.update_value(Value::Float(0.5));
        assert_eq!(a.finalize(), Value::Float(2.5));
    }

    #[test]
    fn sum_of_no_rows_is_null() {
        let a = spec(Func::Sum, true, false).accumulator();
        assert!(a.finalize().is_null());
        let mut b = spec(Func::Sum, true, false).accumulator();
        b.update_value(Value::Null);
        assert!(b.finalize().is_null());
    }

    #[test]
    fn avg_is_float() {
        let mut a = spec(Func::Avg, true, false).accumulator();
        a.update_value(Value::Int(1));
        a.update_value(Value::Int(2));
        assert_eq!(a.finalize(), Value::Float(1.5));
    }

    #[test]
    fn min_max_with_strings() {
        let mut mn = spec(Func::Min, true, false).accumulator();
        let mut mx = spec(Func::Max, true, false).accumulator();
        for v in [Value::str("pear"), Value::str("apple"), Value::Null] {
            mn.update_value(v.clone());
            mx.update_value(v);
        }
        assert_eq!(mn.finalize(), Value::str("apple"));
        assert_eq!(mx.finalize(), Value::str("pear"));
    }

    #[test]
    fn min_of_empty_group_is_null() {
        assert!(spec(Func::Min, true, false)
            .accumulator()
            .finalize()
            .is_null());
    }

    #[test]
    fn validate_rejects_sum_distinct() {
        assert!(spec(Func::Sum, true, true).validate().is_err());
        assert!(spec(Func::Count, true, true).validate().is_ok());
    }

    #[test]
    fn validate_rejects_sum_star() {
        assert!(spec(Func::Sum, false, false).validate().is_err());
    }

    #[test]
    fn merge_combines_partial_sums_and_counts() {
        let s = spec(Func::Sum, true, false);
        let mut a = s.accumulator();
        a.update_value(Value::Int(2));
        let mut b = s.accumulator();
        b.update_value(Value::Int(3));
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Int(5));

        let c = spec(Func::Count, false, false);
        let mut x = c.accumulator();
        x.update_star();
        let mut y = c.accumulator();
        y.update_star();
        y.update_star();
        x.merge(&y);
        assert_eq!(x.finalize(), Value::Int(3));
    }

    #[test]
    fn merge_min_keeps_first_on_ties() {
        let s = spec(Func::Min, true, false);
        let mut a = s.accumulator();
        a.update_value(Value::Int(4));
        let mut b = s.accumulator();
        b.update_value(Value::Int(4));
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Int(4));
        let mut empty = s.accumulator();
        empty.merge(&a);
        assert_eq!(empty.finalize(), Value::Int(4));
        a.merge(&s.accumulator());
        assert_eq!(a.finalize(), Value::Int(4));
    }

    #[test]
    fn merge_count_distinct_unions() {
        let s = spec(Func::Count, true, true);
        let mut a = s.accumulator();
        a.update_value(Value::str("A"));
        let mut b = s.accumulator();
        b.update_value(Value::str("A"));
        b.update_value(Value::str("B"));
        a.merge(&b);
        assert_eq!(a.finalize(), Value::Int(2));
    }
}
