//! Four in-process SQL execution engines behind a common [`Dbms`] trait.
//!
//! The paper benchmarks PostgreSQL, DuckDB, SQLite, and MonetDB (§6.2.2).
//! Running external servers is out of scope for this reproduction, so this
//! crate implements one storage layer and four executors whose
//! *architectures* mirror those systems (see `DESIGN.md` §3):
//!
//! | Engine | Architecture |
//! |---|---|
//! | [`SqliteLike`] | row-at-a-time Volcano interpreter, ordered grouping |
//! | [`PostgresLike`] | lazy row access, block iteration, hash aggregation |
//! | [`DuckDbLike`] | vectorized batches, typed filter kernels, dictionary-code grouping |
//! | [`MonetDbLike`] | operator-at-a-time, full intermediate materialization |
//!
//! All four share a planner ([`plan`]) and evaluator ([`eval`]), so they
//! return identical results (property-tested) and differ only in latency.

pub mod agg;
pub mod batch;
pub mod delta;
pub mod engines;
pub mod error;
pub mod eval;
pub mod exec;
pub mod fault;
pub mod plan;

#[cfg(test)]
pub(crate) mod test_support;

pub use batch::{DeltaCapture, DeltaScan, GroupStates, SelectionVector, MORSEL};
pub use delta::{DeltaStoreStats, SessionDelta};
pub use engines::duckdb_like::DuckDbLike;
pub use engines::monetdb_like::MonetDbLike;
pub use engines::postgres_like::PostgresLike;
pub use engines::sqlite_like::SqliteLike;
pub use error::EngineError;
pub use exec::{execute_row_oracle, ExecStats, QueryOutput};
pub use fault::{FaultConfig, FaultInjectingDbms, FaultStats};

use simba_sql::Select;
use simba_store::Table;
use std::sync::Arc;

/// Deterministic identity of one query execution attempt, threaded through
/// [`Dbms::execute_at`] so wrappers (notably [`FaultInjectingDbms`]) can key
/// per-attempt decisions on *who* is executing rather than on wall-clock or
/// shared mutable state. `(session, step, query)` name the position of the
/// query inside a driver run; `attempt` counts retries of that position
/// (0 = first try).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct QueryCtx {
    /// Session (user) index within the run.
    pub session: u64,
    /// Step index within the session (0 = initial render).
    pub step: u64,
    /// Query index within the step (dashboards refresh several charts).
    pub query: u64,
    /// Retry attempt of this `(session, step, query)` position.
    pub attempt: u32,
}

/// A database management system under test.
pub trait Dbms: Send + Sync {
    /// Stable engine name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// Intra-query scan parallelism this instance was configured with
    /// (worker threads per morsel-parallel scan). `1` for engines without
    /// parallel scans; reported by the workload driver.
    fn scan_threads(&self) -> usize {
        1
    }

    /// Register a table; replaces any table with the same name.
    fn register(&self, table: Arc<Table>);

    /// Execute one query, returning results, statistics, and latency.
    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError>;

    /// [`execute`](Self::execute) with the caller's execution identity
    /// attached. Real engines ignore the context (results may never depend
    /// on who asks); fault-injecting wrappers key their deterministic
    /// per-attempt decisions on it.
    fn execute_at(&self, query: &Select, ctx: &QueryCtx) -> Result<QueryOutput, EngineError> {
        let _ = ctx;
        self.execute(query)
    }

    /// [`execute`](Self::execute) with a per-session [`SessionDelta`] store
    /// available for cross-step work reuse (see [`delta`]). The default
    /// *declines*: the store is left untouched and the query executes
    /// fresh. That is the only sound default — an engine must never cache
    /// selections against table state it cannot observe, which rules out
    /// every remote/wrapper engine (a `simba-server` peer re-registers
    /// tables without this process seeing the catalog generation move).
    /// Only engines owning their catalog in-process opt in.
    fn execute_delta(
        &self,
        query: &Select,
        delta: &mut SessionDelta,
    ) -> Result<QueryOutput, EngineError> {
        let _ = delta;
        self.execute(query)
    }
}

/// Identifiers for the four built-in engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    SqliteLike,
    PostgresLike,
    DuckDbLike,
    MonetDbLike,
}

impl EngineKind {
    /// All four engines, in the paper's reporting order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::PostgresLike,
        EngineKind::DuckDbLike,
        EngineKind::SqliteLike,
        EngineKind::MonetDbLike,
    ];

    /// Stable name of the engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::SqliteLike => "sqlite-like",
            EngineKind::PostgresLike => "postgres-like",
            EngineKind::DuckDbLike => "duckdb-like",
            EngineKind::MonetDbLike => "monetdb-like",
        }
    }

    /// Instantiate the engine.
    pub fn build(self) -> Arc<dyn Dbms> {
        match self {
            EngineKind::SqliteLike => Arc::new(SqliteLike::new()),
            EngineKind::PostgresLike => Arc::new(PostgresLike::new()),
            EngineKind::DuckDbLike => Arc::new(DuckDbLike::new()),
            EngineKind::MonetDbLike => Arc::new(MonetDbLike::new()),
        }
    }

    /// Instantiate the engine with the given intra-query scan parallelism.
    /// Only `duckdb-like` supports morsel-parallel scans; other engines
    /// ignore the setting.
    pub fn build_with_threads(self, scan_threads: usize) -> Arc<dyn Dbms> {
        match self {
            EngineKind::DuckDbLike => Arc::new(DuckDbLike::with_scan_threads(scan_threads)),
            other => other.build(),
        }
    }

    /// Parse an engine name.
    pub fn from_name(name: &str) -> Option<EngineKind> {
        Self::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

/// Instantiate all four engines.
pub fn all_engines() -> Vec<Arc<dyn Dbms>> {
    EngineKind::ALL.iter().map(|k| k.build()).collect()
}
