//! Session-delta execution: reuse work across consecutive exploration steps.
//!
//! Exploration sessions step through *refinements* — each query tightens or
//! repeats the previous step's filter far more often than it starts from
//! scratch (§2 of the paper). A [`SessionDelta`] store retains, per session,
//! the surviving selection vector (and, for aggregations, the merged group
//! states — typed per-slot states or materialized dense/hash group pairs)
//! of recent queries, keyed by
//! [`delta_key`](simba_sql::delta_key) / [`states_key`](simba_sql::states_key).
//! [`execute_with_delta`] then resolves each new query against the store:
//!
//! 1. **Group-state reuse (tier 2):** an entry whose `states_key` matches
//!    exactly re-finalizes the cached [`GroupStates`] without touching the
//!    table at all — exact re-renders and ORDER BY / LIMIT variants of the
//!    same aggregation hit this tier, including the multi-key hash
//!    aggregations behind unfiltered dashboard charts.
//! 2. **Exact selection reuse:** an entry whose `delta_key` matches carries
//!    the precise surviving row set; the scan is seeded from it with filter
//!    kernels skipped entirely.
//! 3. **Refinement seeding (tier 1):** otherwise, the newest entry for which
//!    [`is_refinement`](simba_sql::is_refinement) *proves* the new WHERE
//!    implies the stored one seeds the scan: only the stored survivors are
//!    candidates, re-filtered through the new query's kernels (zone maps
//!    still prune whole morsels of the seed).
//! 4. **Miss:** a fresh capturing scan, whose selection/states are stored
//!    for the steps that follow.
//!
//! # Invalidation contract
//!
//! Tables are immutable once registered; re-registration (including
//! [`TableAssembler`](simba_store) appends, which re-register the grown
//! table) publishes a *new* [`Table`] and bumps the catalog
//! [`generation`](crate::exec::Catalog::generation). Every entry records the
//! generation it observed plus the exact `Arc<Table>` snapshot it scanned.
//! At reuse time a generation mismatch drops entries eagerly (coarse
//! signal); entries for the queried table must *additionally* be pointer-
//! identical to the table the plan resolved — the airtight guard, immune to
//! the publish/bump race inherent in reading two atomics.
//!
//! Correctness never depends on the store's contents: every verdict feeding
//! a reuse decision is a proof (key equality over normalized queries, or
//! sound implication), and the differential suite pins delta-on execution
//! byte-identical to fresh execution.

use crate::batch::{
    run_grouped_from_cache, run_morsels_delta, run_typed_from_cache, DeltaScan, GroupStates,
};
use crate::engines::execute_common_with;
use crate::error::EngineError;
use crate::exec::{Catalog, QueryOutput};
use simba_sql::{delta_key, is_refinement, states_key, Select};
use simba_store::Table;
use std::collections::VecDeque;
use std::sync::Arc;

/// Work retained from one executed query for reuse by later session steps.
#[derive(Debug, Clone)]
struct DeltaEntry {
    /// [`delta_key`] of the producing query (table + normalized WHERE).
    key: String,
    /// [`states_key`] of the producing query — meaningful only when `states`
    /// were captured.
    states_key: String,
    /// The producing query, kept so refinement checks can re-prove
    /// implication against its WHERE clause.
    query: Select,
    /// Catalog generation observed when the entry was captured.
    generation: u64,
    /// The exact immutable table snapshot that was scanned; reuse against
    /// the same table name requires pointer identity with the snapshot the
    /// new plan resolved.
    snapshot: Arc<Table>,
    /// Surviving row indices over the whole table, ascending.
    selection: Arc<Vec<u32>>,
    /// Merged group states (typed per-slot states or materialized
    /// dense/hash group pairs).
    states: Option<GroupStates>,
}

/// Store-side counters: events the per-query [`ExecStats`](crate::exec::ExecStats)
/// delta counters cannot see (hits and rows saved travel with the query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStoreStats {
    /// Queries that consulted the store and found nothing reusable.
    pub misses: u64,
    /// Entries dropped because the catalog moved underneath them
    /// (re-register or append since capture).
    pub invalidations: u64,
    /// Times the chain was reset (an errored step makes the session's
    /// trajectory observer-dependent, so retained work is discarded).
    pub resets: u64,
}

/// Per-session store of recently captured selections / group states.
///
/// Bounded: the oldest entry is evicted once `capacity` is reached, matching
/// the observation that refinements chain off *recent* steps. The store is
/// an optimization cache only — dropping any entry is always safe.
#[derive(Debug)]
pub struct SessionDelta {
    entries: VecDeque<DeltaEntry>,
    capacity: usize,
    stats: DeltaStoreStats,
}

impl Default for SessionDelta {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl SessionDelta {
    /// Default entry bound: a dashboard render captures up to one entry per
    /// chart (~5) and adaptive walks revisit the overview after half a dozen
    /// drill steps, so the window must span several steps' worth of captures
    /// for the return leg to hit tier 1/2 instead of re-scanning. 32 covers
    /// ~6 steps of a 5-chart dashboard without unbounded retention; each
    /// entry holds one `SelectionVector` (≤ row-count u32s), so worst case
    /// is a few MB per session at the 1M-row tier.
    pub const DEFAULT_CAPACITY: usize = 32;

    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity: capacity.max(1),
            stats: DeltaStoreStats::default(),
        }
    }

    /// Store-side event counters accumulated so far.
    pub fn stats(&self) -> DeltaStoreStats {
        self.stats
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Discard every retained entry and count a chain reset. Called when a
    /// step errors: the session's subsequent queries are no longer a
    /// refinement chain the store can reason about.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats.resets += 1;
    }

    /// Drop entries that can never be reused against the current catalog
    /// state: any entry captured under a different generation, and any
    /// entry for the queried table whose snapshot is not pointer-identical
    /// to the table the new plan resolved. Entries for *other* tables
    /// survive only the generation check — they are unreachable by this
    /// query's lookups and will be re-validated by their own.
    fn invalidate_stale(&mut self, generation: u64, table: &Arc<Table>) {
        let before = self.entries.len();
        self.entries.retain(|e| {
            e.generation == generation
                && (!e.snapshot.name().eq_ignore_ascii_case(table.name())
                    || Arc::ptr_eq(&e.snapshot, table))
        });
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }

    /// Newest entry with cached group states for exactly this aggregation
    /// shape, plus the surviving-row count its states summarize.
    fn states_for(&self, states_key: &str) -> Option<(&GroupStates, usize)> {
        self.entries
            .iter()
            .rev()
            .filter(|e| e.states_key == states_key)
            .find_map(|e| e.states.as_ref().map(|s| (s, e.selection.len())))
    }

    /// Best seed for `query`: an exact `delta_key` match (kernels skippable),
    /// else the newest entry whose WHERE is provably implied by `query`'s.
    /// Entries without a WHERE are never seeds — their selection is the
    /// whole table, so seeding from them saves nothing over a fresh scan.
    fn seed_for(&self, key: &str, query: &Select) -> Option<(Arc<Vec<u32>>, bool)> {
        let candidates = || {
            self.entries
                .iter()
                .rev()
                .filter(|e| e.query.where_clause.is_some())
        };
        if let Some(e) = candidates().find(|e| e.key == key) {
            return Some((Arc::clone(&e.selection), true));
        }
        candidates()
            .find(|e| is_refinement(query, &e.query))
            .map(|e| (Arc::clone(&e.selection), false))
    }

    /// Retain a freshly captured entry, replacing any previous entry with
    /// the same (key, states_key) pair and evicting the oldest at capacity.
    fn store(&mut self, entry: DeltaEntry) {
        self.entries
            .retain(|e| !(e.key == entry.key && e.states_key == entry.states_key));
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }
}

/// Execute `query` with session-delta reuse against `delta` (see the module
/// docs for the tier order). Produces output byte-identical to
/// [`run_morsels`](crate::batch::run_morsels) on the same catalog — the
/// differential suite enforces this — while updating the store and the
/// per-query delta counters in [`ExecStats`](crate::exec::ExecStats).
pub(crate) fn execute_with_delta(
    catalog: &Catalog,
    scan_threads: usize,
    query: &Select,
    delta: &mut SessionDelta,
) -> Result<QueryOutput, EngineError> {
    // Read the generation *before* resolving the table: if a register races
    // us, the stamp is merely older than the snapshot and the entry dies a
    // conservative death at the next generation check.
    let generation = catalog.generation();
    let key = delta_key(query);
    let skey = states_key(query);
    let (output, capture) = execute_common_with(catalog, query, |plan| {
        delta.invalidate_stale(generation, &plan.table);
        // Tier 2: identical aggregation shape — re-finalize cached states.
        if let Some((states, matched)) = delta.states_for(&skey) {
            let replayed = match states {
                GroupStates::Typed(typed) => run_typed_from_cache(plan, typed, matched),
                GroupStates::Grouped(groups) => run_grouped_from_cache(plan, groups, matched),
            };
            if let Some((rows, stats)) = replayed {
                return (rows, stats, None);
            }
        }
        // Tier 1: seed the scan from a captured selection.
        if let Some((seed, exact)) = delta.seed_for(&key, query) {
            return run_morsels_delta(plan, scan_threads, DeltaScan::Seeded { seed: &seed, exact });
        }
        delta.stats.misses += 1;
        run_morsels_delta(plan, scan_threads, DeltaScan::Capture)
    })?;
    if let Some(cap) = capture {
        // Entries without a WHERE carry a full-table selection — useless as
        // a seed — but their group states still serve tier 2 (e.g. the
        // unfiltered step-0 dashboard re-sorted at step 1).
        if query.where_clause.is_some() || cap.states.is_some() {
            let table = catalog.get(&query.from);
            // The plan resolved this table moments ago; a concurrent
            // re-register can remove or replace it, in which case the
            // capture is already stale and is simply not retained.
            if let Some(snapshot) = table {
                delta.store(DeltaEntry {
                    key,
                    states_key: skey,
                    query: query.clone(),
                    generation,
                    snapshot,
                    selection: Arc::new(cap.selection),
                    states: cap.states,
                });
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::run_morsels;
    use crate::plan::prepare;
    use simba_sql::parse_select;
    use simba_store::{ColumnDef, Schema, TableBuilder, Value};

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::quantitative_int("a"),
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_float("v"),
            ],
        )
    }

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(schema(), 10_000);
        for i in 0..10_000i64 {
            b.push_row(vec![
                Value::Int(i % 97),
                Value::str(format!("g{}", i % 7)),
                Value::Float((i % 13) as f64 * 0.5),
            ]);
        }
        let catalog = Catalog::default();
        catalog.register(Arc::new(b.finish()));
        catalog
    }

    fn fresh(catalog: &Catalog, sql: &str) -> QueryOutput {
        let query = parse_select(sql).unwrap();
        let table = catalog.get(&query.from).unwrap();
        let plan = prepare(&query, table).unwrap();
        let (rows, stats) = run_morsels(&plan, 1);
        let rows = crate::exec::finalize_rows(rows, plan.n_output, &plan.order_dirs, plan.limit);
        QueryOutput {
            result: simba_store::ResultSet::new(plan.output_names.clone(), rows),
            stats,
            elapsed: std::time::Duration::ZERO,
        }
    }

    fn run(catalog: &Catalog, delta: &mut SessionDelta, sql: &str) -> QueryOutput {
        let query = parse_select(sql).unwrap();
        execute_with_delta(catalog, 1, &query, delta).unwrap()
    }

    #[test]
    fn refinement_chain_reuses_and_matches_fresh_execution() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        let q1 = "SELECT q, COUNT(*), SUM(v) FROM t WHERE a > 10 GROUP BY q ORDER BY q";
        let q2 = "SELECT q, COUNT(*), SUM(v) FROM t WHERE a > 10 AND a < 50 GROUP BY q ORDER BY q";
        let o1 = run(&catalog, &mut delta, q1);
        assert_eq!(o1.stats.delta_hits, 0, "first step is a miss");
        assert_eq!(delta.len(), 1);
        let o2 = run(&catalog, &mut delta, q2);
        assert_eq!(o2.stats.delta_hits, 1, "tightened filter seeds from step 1");
        assert!(o2.stats.delta_rows_saved > 0);
        assert_eq!(o1.result, fresh(&catalog, q1).result);
        assert_eq!(o2.result, fresh(&catalog, q2).result);
    }

    #[test]
    fn exact_requery_skips_kernels_and_order_limit_variants_hit_states() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        let base = "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q";
        run(&catalog, &mut delta, base);
        // Same aggregation, different ORDER BY/LIMIT: tier-2 group states.
        let sorted =
            "SELECT q, COUNT(*) FROM t WHERE a > 40 GROUP BY q ORDER BY COUNT(*) DESC LIMIT 3";
        let o = run(&catalog, &mut delta, sorted);
        assert_eq!(o.stats.delta_group_hits, 1, "states reused outright");
        assert_eq!(o.result, fresh(&catalog, sorted).result);
        // Different projection over the same WHERE: exact selection seed.
        let reproj = "SELECT AVG(v) FROM t WHERE a > 40";
        let o = run(&catalog, &mut delta, reproj);
        assert_eq!(o.stats.delta_hits, 1);
        assert_eq!(o.result, fresh(&catalog, reproj).result);
    }

    #[test]
    fn multi_key_hash_aggregations_replay_from_cached_groups() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        // Two grouping keys force the hash aggregation path — no typed mode
        // exists for it, so tier 2 must come from materialized group pairs.
        let base = "SELECT q, a, COUNT(*), SUM(v) FROM t WHERE a > 20 GROUP BY q, a ORDER BY q, a";
        run(&catalog, &mut delta, base);
        // Exact re-render: replayed from the cached groups, no scan at all.
        let o = run(&catalog, &mut delta, base);
        assert_eq!(o.stats.delta_group_hits, 1, "hash groups replayed");
        assert_eq!(o.stats.rows_scanned, 0);
        assert_eq!(o.result, fresh(&catalog, base).result);
        // A LIMIT variant of the same aggregation replays too: ORDER BY and
        // LIMIT are outside the states key and re-apply at finalize.
        let limited =
            "SELECT q, a, COUNT(*), SUM(v) FROM t WHERE a > 20 GROUP BY q, a ORDER BY q, a LIMIT 5";
        let o = run(&catalog, &mut delta, limited);
        assert_eq!(o.stats.delta_group_hits, 1);
        assert_eq!(o.result, fresh(&catalog, limited).result);
        // Unfiltered multi-key charts are stored for their states (never as
        // a seed) and replay when the walk returns to the overview.
        let chart = "SELECT q, a, COUNT(*) FROM t GROUP BY q, a ORDER BY q, a";
        run(&catalog, &mut delta, chart);
        let o = run(&catalog, &mut delta, chart);
        assert_eq!(o.stats.delta_group_hits, 1);
        assert_eq!(o.result, fresh(&catalog, chart).result);
    }

    #[test]
    fn reregister_invalidates_retained_entries() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        run(&catalog, &mut delta, "SELECT COUNT(*) FROM t WHERE a > 10");
        assert_eq!(delta.len(), 1);
        // Re-register `t` with different contents: the retained selection
        // indexes rows of a table that no longer exists.
        let mut b = TableBuilder::new(schema(), 500);
        for i in 0..500i64 {
            b.push_row(vec![Value::Int(i), Value::str("g0"), Value::Float(0.0)]);
        }
        catalog.register(Arc::new(b.finish()));
        let o = run(
            &catalog,
            &mut delta,
            "SELECT COUNT(*) FROM t WHERE a > 10 AND a < 20",
        );
        assert_eq!(o.stats.delta_hits, 0, "stale entry must not seed");
        assert_eq!(delta.stats().invalidations, 1);
        assert_eq!(
            o.result,
            fresh(&catalog, "SELECT COUNT(*) FROM t WHERE a > 10 AND a < 20").result
        );
    }

    #[test]
    fn reset_discards_the_chain() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        run(&catalog, &mut delta, "SELECT COUNT(*) FROM t WHERE a > 10");
        delta.reset();
        assert!(delta.is_empty());
        assert_eq!(delta.stats().resets, 1);
        let o = run(
            &catalog,
            &mut delta,
            "SELECT COUNT(*) FROM t WHERE a > 10 AND a < 50",
        );
        assert_eq!(o.stats.delta_hits, 0, "reset chain cannot seed");
    }

    #[test]
    fn unfiltered_queries_never_seed_but_their_states_are_reusable() {
        let catalog = catalog();
        let mut delta = SessionDelta::default();
        run(&catalog, &mut delta, "SELECT q, COUNT(*) FROM t GROUP BY q");
        // Any WHERE refines the unfiltered query, but a full-table seed
        // saves nothing — the store must not offer it.
        let o = run(
            &catalog,
            &mut delta,
            "SELECT q, COUNT(*) FROM t WHERE a > 10 GROUP BY q",
        );
        assert_eq!(o.stats.delta_hits, 0);
        // The unfiltered aggregation's states still serve ORDER BY variants.
        let o = run(
            &catalog,
            &mut delta,
            "SELECT q, COUNT(*) FROM t GROUP BY q ORDER BY q LIMIT 2",
        );
        assert_eq!(o.stats.delta_group_hits, 1);
        assert_eq!(
            o.result,
            fresh(
                &catalog,
                "SELECT q, COUNT(*) FROM t GROUP BY q ORDER BY q LIMIT 2"
            )
            .result
        );
    }

    #[test]
    fn store_is_bounded() {
        let catalog = catalog();
        let mut delta = SessionDelta::new(2);
        for lo in 0..5 {
            run(
                &catalog,
                &mut delta,
                &format!("SELECT COUNT(*) FROM t WHERE a > {lo}"),
            );
        }
        assert_eq!(delta.len(), 2, "oldest entries evicted at capacity");
    }
}
