//! Logical schemas with the paper's column taxonomy.
//!
//! Table 2 of the paper classifies data columns as **C**ategorical,
//! **Q**uantitative, or **T**emporal; goal templates are parameterized by
//! these roles, so the role is a first-class part of the schema.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Physical storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Dictionary-encoded string.
    Str,
    /// Boolean.
    Bool,
}

/// The paper's analytic role of a column (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ColumnRole {
    /// Discrete labels: group-by and filter targets.
    Categorical,
    /// Numeric measures: aggregation targets.
    Quantitative,
    /// Time-like columns (stored as epoch seconds or small ordinals);
    /// binned-aggregation and date-part targets.
    Temporal,
}

impl ColumnRole {
    /// One-letter code used in dashboard summaries ("10Q, 6C").
    pub fn code(self) -> char {
        match self {
            ColumnRole::Categorical => 'C',
            ColumnRole::Quantitative => 'Q',
            ColumnRole::Temporal => 'T',
        }
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (unique within a schema, matched case-insensitively).
    pub name: String,
    /// Physical storage type.
    pub data_type: DataType,
    /// Analytic role (Table 2 of the paper).
    pub role: ColumnRole,
}

impl ColumnDef {
    /// Column definition from its parts.
    pub fn new(name: impl Into<String>, data_type: DataType, role: ColumnRole) -> Self {
        Self {
            name: name.into(),
            data_type,
            role,
        }
    }

    /// Shorthand for a categorical string column.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Str, ColumnRole::Categorical)
    }

    /// Shorthand for a quantitative integer column.
    pub fn quantitative_int(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Int, ColumnRole::Quantitative)
    }

    /// Shorthand for a quantitative float column.
    pub fn quantitative_float(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Float, ColumnRole::Quantitative)
    }

    /// Shorthand for a temporal column stored as epoch seconds.
    pub fn temporal(name: impl Into<String>) -> Self {
        Self::new(name, DataType::Int, ColumnRole::Temporal)
    }

    /// Does a value match this column's physical type (NULL always matches)?
    pub fn accepts(&self, v: &Value) -> bool {
        matches!(
            (self.data_type, v),
            (_, Value::Null)
                | (DataType::Int, Value::Int(_))
                | (DataType::Float, Value::Float(_) | Value::Int(_))
                | (DataType::Str, Value::Str(_))
                | (DataType::Bool, Value::Bool(_))
        )
    }
}

/// A table schema: name plus ordered column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// SQL table name.
    pub table: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// Schema from a table name and ordered columns.
    pub fn new(table: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        Self {
            table: table.into(),
            columns,
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by case-insensitive name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// All columns with the given role.
    pub fn columns_with_role(&self, role: ColumnRole) -> Vec<&ColumnDef> {
        self.columns.iter().filter(|c| c.role == role).collect()
    }

    /// Count of columns with the given role (the paper reports dashboards as
    /// e.g. "10Q, 6C").
    pub fn role_count(&self, role: ColumnRole) -> usize {
        self.columns.iter().filter(|c| c.role == role).count()
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "customer_service",
            vec![
                ColumnDef::categorical("queue"),
                ColumnDef::quantitative_int("calls"),
                ColumnDef::temporal("ts"),
                ColumnDef::quantitative_float("duration"),
            ],
        )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("QUEUE"), Some(0));
        assert_eq!(s.index_of("Ts"), Some(2));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn role_counts() {
        let s = sample();
        assert_eq!(s.role_count(ColumnRole::Categorical), 1);
        assert_eq!(s.role_count(ColumnRole::Quantitative), 2);
        assert_eq!(s.role_count(ColumnRole::Temporal), 1);
    }

    #[test]
    fn accepts_checks_physical_type() {
        let c = ColumnDef::quantitative_int("x");
        assert!(c.accepts(&Value::Int(1)));
        assert!(c.accepts(&Value::Null));
        assert!(!c.accepts(&Value::str("a")));
        let f = ColumnDef::quantitative_float("y");
        assert!(f.accepts(&Value::Int(1)), "ints widen to floats");
    }

    #[test]
    fn role_codes() {
        assert_eq!(ColumnRole::Categorical.code(), 'C');
        assert_eq!(ColumnRole::Quantitative.code(), 'Q');
        assert_eq!(ColumnRole::Temporal.code(), 'T');
    }

    #[test]
    fn schema_round_trips_through_json() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"temporal\""),
            "roles use snake_case: {json}"
        );
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
