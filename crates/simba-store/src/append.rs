//! Chunk-append table assembly for parallel dataset generation.
//!
//! Generators that produce a table as a sequence of fixed-size chunks (see
//! `simba_data::chunk`) need the opposite of [`TableBuilder`]'s row-at-a-time
//! interface: bulk append of whole column fragments, with dictionary codes
//! remapped into one global dictionary and per-chunk zone maps concatenated
//! into the table-wide [`ZoneMaps`]. That is what [`TableAssembler`] does.
//!
//! The merge is a pure function of the chunk *sequence*: workers may build
//! chunks on any thread in any order, but as long as the assembler receives
//! them in chunk-index order the finished table is bit-for-bit identical —
//! including dictionary order, which follows first appearance across the
//! concatenated row stream exactly as a single [`TableBuilder`] over the
//! same rows would produce.
//!
//! Zone maps are built *eagerly* here: each [`TableChunk`] computes the
//! min/max zones of its own rows (on the worker thread, in parallel), and
//! [`TableAssembler::finish`] installs the concatenated maps into the
//! table, so the first scan never pays the lazy build.
//!
//! [`TableBuilder`]: crate::table::TableBuilder

use crate::column::ColumnData;
use crate::schema::{DataType, Schema};
use crate::table::Table;
use crate::zonemap::{morsel_count, ColumnZones, Zone, ZoneMaps, MORSEL_ROWS};
use std::collections::HashMap;
use std::sync::Arc;

/// One generated fragment of a table: column data for a contiguous row
/// range, plus the zone maps of those rows (computed at construction, i.e.
/// on the generating worker's thread).
#[derive(Debug)]
pub struct TableChunk {
    columns: Vec<ColumnData>,
    zones: ZoneMaps,
    rows: usize,
}

impl TableChunk {
    /// Package generated column fragments, computing their zone maps.
    ///
    /// # Panics
    /// Panics if the columns disagree on row count.
    pub fn new(columns: Vec<ColumnData>) -> TableChunk {
        let rows = columns.first().map_or(0, ColumnData::len);
        for col in &columns {
            assert_eq!(col.len(), rows, "chunk columns disagree on row count");
        }
        let zones = ZoneMaps::build(&columns, rows);
        TableChunk {
            columns,
            zones,
            rows,
        }
    }

    /// Number of rows in this chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// Assembles a [`Table`] from [`TableChunk`]s appended in chunk order.
///
/// Every chunk except the last must span a whole number of
/// [`MORSEL_ROWS`]-row morsels, so each chunk's locally computed zones land
/// exactly on the table-wide morsel grid; appending another chunk after a
/// ragged one panics.
#[derive(Debug)]
pub struct TableAssembler {
    schema: Schema,
    columns: Vec<ColumnAppender>,
    /// Concatenated per-morsel zones per column (`None` = no statistics for
    /// this column type).
    zones: Vec<Option<Vec<Zone>>>,
    rows: usize,
    /// Set once a chunk ends off a morsel boundary: it must be the last.
    ragged: bool,
}

impl TableAssembler {
    /// Start assembling a table with the given schema, pre-sizing column
    /// buffers for `capacity` rows.
    pub fn new(schema: Schema, capacity: usize) -> TableAssembler {
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnAppender::new(c.data_type, capacity))
            .collect();
        let zones = schema
            .columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Int | DataType::Float => Some(Vec::with_capacity(morsel_count(capacity))),
                DataType::Str | DataType::Bool => None,
            })
            .collect();
        TableAssembler {
            schema,
            columns,
            zones,
            rows: 0,
            ragged: false,
        }
    }

    /// Append the next chunk. Chunks must arrive in chunk-index order for
    /// the assembled table to be deterministic.
    ///
    /// # Panics
    /// Panics if the chunk's width or column types mismatch the schema, or
    /// if a previous chunk ended off a morsel boundary.
    pub fn append_chunk(&mut self, chunk: TableChunk) {
        assert!(
            !self.ragged,
            "only the final chunk may end off a morsel boundary"
        );
        assert_eq!(
            chunk.columns.len(),
            self.columns.len(),
            "chunk width mismatch"
        );
        for (idx, col) in chunk.columns.into_iter().enumerate() {
            if let Some(zones) = &mut self.zones[idx] {
                zones.extend(
                    chunk
                        .zones
                        .column(idx)
                        .expect("numeric columns carry zones")
                        .zones(),
                );
            }
            self.columns[idx].append(col);
        }
        self.rows += chunk.rows;
        if !chunk.rows.is_multiple_of(MORSEL_ROWS) {
            self.ragged = true;
        }
    }

    /// Rows appended so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Finish assembly: seal the columns and install the eagerly built zone
    /// maps into the table.
    pub fn finish(self) -> Table {
        let columns: Vec<ColumnData> = self
            .columns
            .into_iter()
            .map(ColumnAppender::finish)
            .collect();
        let zone_maps = ZoneMaps::from_column_zones(
            morsel_count(self.rows),
            self.zones
                .into_iter()
                .map(|z| z.map(ColumnZones::new))
                .collect(),
        );
        Table::from_columns_with_zone_maps(self.schema, columns, zone_maps)
    }
}

/// Bulk-append builder for one column: the chunk-wise dual of
/// [`ColumnBuilder`](crate::column::ColumnBuilder).
#[derive(Debug)]
enum ColumnAppender {
    Int {
        data: Vec<i64>,
        valid: Vec<bool>,
        any_null: bool,
    },
    Float {
        data: Vec<f64>,
        valid: Vec<bool>,
        any_null: bool,
    },
    Bool {
        data: Vec<bool>,
        valid: Vec<bool>,
        any_null: bool,
    },
    Str {
        dict: Vec<Arc<str>>,
        lookup: HashMap<Arc<str>, u32>,
        codes: Vec<u32>,
        valid: Vec<bool>,
        any_null: bool,
    },
}

/// Fold one chunk's validity into the accumulated validity, preserving the
/// "empty = all valid" compression: the accumulated vector stays empty
/// until the first NULL arrives, at which point history is materialized.
fn append_validity(
    valid: &mut Vec<bool>,
    any_null: &mut bool,
    rows_before: usize,
    src: &[bool],
    src_rows: usize,
) {
    let src_has_null = src.iter().any(|v| !v);
    if src_has_null {
        if !*any_null {
            valid.resize(rows_before, true);
            *any_null = true;
        }
        valid.extend_from_slice(src);
    } else if *any_null {
        valid.resize(valid.len() + src_rows, true);
    }
}

impl ColumnAppender {
    fn new(data_type: DataType, capacity: usize) -> ColumnAppender {
        match data_type {
            DataType::Int => ColumnAppender::Int {
                data: Vec::with_capacity(capacity),
                valid: Vec::new(),
                any_null: false,
            },
            DataType::Float => ColumnAppender::Float {
                data: Vec::with_capacity(capacity),
                valid: Vec::new(),
                any_null: false,
            },
            DataType::Bool => ColumnAppender::Bool {
                data: Vec::with_capacity(capacity),
                valid: Vec::new(),
                any_null: false,
            },
            DataType::Str => ColumnAppender::Str {
                dict: Vec::new(),
                lookup: HashMap::new(),
                codes: Vec::with_capacity(capacity),
                valid: Vec::new(),
                any_null: false,
            },
        }
    }

    fn append(&mut self, chunk: ColumnData) {
        match (self, chunk) {
            (
                ColumnAppender::Int {
                    data,
                    valid,
                    any_null,
                },
                ColumnData::Int {
                    data: src,
                    valid: src_valid,
                },
            ) => {
                append_validity(valid, any_null, data.len(), &src_valid, src.len());
                data.extend_from_slice(&src);
            }
            (
                ColumnAppender::Float {
                    data,
                    valid,
                    any_null,
                },
                ColumnData::Float {
                    data: src,
                    valid: src_valid,
                },
            ) => {
                append_validity(valid, any_null, data.len(), &src_valid, src.len());
                data.extend_from_slice(&src);
            }
            (
                ColumnAppender::Bool {
                    data,
                    valid,
                    any_null,
                },
                ColumnData::Bool {
                    data: src,
                    valid: src_valid,
                },
            ) => {
                append_validity(valid, any_null, data.len(), &src_valid, src.len());
                data.extend_from_slice(&src);
            }
            (
                ColumnAppender::Str {
                    dict,
                    lookup,
                    codes,
                    valid,
                    any_null,
                },
                ColumnData::Str {
                    dict: src_dict,
                    codes: src_codes,
                    valid: src_valid,
                },
            ) => {
                // Remap the chunk's dictionary into the global one. Chunk
                // dictionaries are in first-appearance order, so inserting
                // them in order reproduces the dictionary a single
                // row-at-a-time builder would have produced over the
                // concatenated stream.
                let map: Vec<u32> = src_dict
                    .iter()
                    .map(|s| match lookup.get(s) {
                        Some(&code) => code,
                        None => {
                            let code = dict.len() as u32;
                            dict.push(s.clone());
                            lookup.insert(s.clone(), code);
                            code
                        }
                    })
                    .collect();
                append_validity(valid, any_null, codes.len(), &src_valid, src_codes.len());
                if src_valid.is_empty() {
                    codes.extend(src_codes.iter().map(|&c| map[c as usize]));
                } else {
                    // NULL slots carry a meaningless local code; normalize
                    // them to global code 0, matching ColumnBuilder.
                    codes.extend(src_codes.iter().zip(&src_valid).map(|(&c, &ok)| {
                        if ok {
                            map[c as usize]
                        } else {
                            0
                        }
                    }));
                }
            }
            (appender, chunk) => {
                panic!("chunk type mismatch appending {chunk:?} into {appender:?}")
            }
        }
    }

    fn finish(self) -> ColumnData {
        fn seal(valid: Vec<bool>, any_null: bool) -> Vec<bool> {
            if any_null {
                valid
            } else {
                Vec::new()
            }
        }
        match self {
            ColumnAppender::Int {
                data,
                valid,
                any_null,
            } => ColumnData::Int {
                data,
                valid: seal(valid, any_null),
            },
            ColumnAppender::Float {
                data,
                valid,
                any_null,
            } => ColumnData::Float {
                data,
                valid: seal(valid, any_null),
            },
            ColumnAppender::Bool {
                data,
                valid,
                any_null,
            } => ColumnData::Bool {
                data,
                valid: seal(valid, any_null),
            },
            ColumnAppender::Str {
                dict,
                codes,
                valid,
                any_null,
                ..
            } => ColumnData::Str {
                dict,
                codes,
                valid: seal(valid, any_null),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::table::TableBuilder;
    use crate::value::Value;
    use crate::zonemap::MORSEL_ROWS;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
                ColumnDef::quantitative_float("f"),
            ],
        )
    }

    /// Build one chunk of `rows` rows starting at global row `start`, with a
    /// NULL every 7th global row and chunk-local dictionary order.
    fn chunk(start: usize, rows: usize) -> TableChunk {
        let mut b = TableBuilder::new(schema(), rows);
        for i in start..start + rows {
            let q = Value::str(format!("q{}", (i / 3) % 5));
            let n = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i as i64)
            };
            b.push_row(vec![q, n, Value::Float(i as f64 * 0.5)]);
        }
        let (_, columns) = b.finish_parts();
        TableChunk::new(columns)
    }

    /// The same rows built by one row-at-a-time builder.
    fn monolithic(rows: usize) -> Table {
        let mut b = TableBuilder::new(schema(), rows);
        for i in 0..rows {
            let q = Value::str(format!("q{}", (i / 3) % 5));
            let n = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i as i64)
            };
            b.push_row(vec![q, n, Value::Float(i as f64 * 0.5)]);
        }
        b.finish()
    }

    #[test]
    fn chunked_assembly_matches_monolithic_build() {
        let total = 2 * MORSEL_ROWS + 100;
        let mut asm = TableAssembler::new(schema(), total);
        asm.append_chunk(chunk(0, MORSEL_ROWS));
        asm.append_chunk(chunk(MORSEL_ROWS, MORSEL_ROWS));
        asm.append_chunk(chunk(2 * MORSEL_ROWS, 100));
        let table = asm.finish();
        assert!(table.bitwise_eq(&monolithic(total)));
    }

    #[test]
    fn assembled_zone_maps_are_eager_and_match_lazy_build() {
        let total = MORSEL_ROWS + 50;
        let mut asm = TableAssembler::new(schema(), total);
        asm.append_chunk(chunk(0, MORSEL_ROWS));
        asm.append_chunk(chunk(MORSEL_ROWS, 50));
        let table = asm.finish();
        assert!(table.zone_maps_built(), "zone maps must be eager");

        let lazy = monolithic(total);
        assert!(!lazy.zone_maps_built());
        let (a, b) = (table.zone_maps(), lazy.zone_maps());
        assert_eq!(a.n_morsels(), b.n_morsels());
        for col in 0..3 {
            match (a.column(col), b.column(col)) {
                (None, None) => {}
                (Some(x), Some(y)) => assert_eq!(x.zones(), y.zones(), "column {col}"),
                _ => panic!("zone presence differs on column {col}"),
            }
        }
    }

    #[test]
    fn dictionary_follows_first_appearance_across_chunks() {
        let mut asm = TableAssembler::new(
            Schema::new("d", vec![ColumnDef::categorical("c")]),
            2 * MORSEL_ROWS,
        );
        let mk = |labels: &[&str]| {
            let mut b = TableBuilder::new(Schema::new("d", vec![ColumnDef::categorical("c")]), 0);
            for l in labels.iter().cycle().take(MORSEL_ROWS) {
                b.push_row(vec![Value::str(l)]);
            }
            TableChunk::new(b.finish_parts().1)
        };
        asm.append_chunk(mk(&["b", "a"]));
        asm.append_chunk(mk(&["c", "a", "b"]));
        let table = asm.finish();
        let dict = table.column(0).dictionary().unwrap();
        let names: Vec<&str> = dict.iter().map(|s| s.as_ref()).collect();
        assert_eq!(names, ["b", "a", "c"]);
    }

    #[test]
    fn all_null_string_chunk_normalizes_codes() {
        let schema = Schema::new("s", vec![ColumnDef::categorical("c")]);
        let mut b = TableBuilder::new(schema.clone(), MORSEL_ROWS);
        for _ in 0..MORSEL_ROWS {
            b.push_row(vec![Value::Null]);
        }
        let mut asm = TableAssembler::new(schema, MORSEL_ROWS + 1);
        asm.append_chunk(TableChunk::new(b.finish_parts().1));
        let table = asm.finish();
        assert!(table.column(0).is_null(0));
        assert_eq!(table.value(MORSEL_ROWS - 1, 0), Value::Null);
    }

    #[test]
    #[should_panic(expected = "morsel boundary")]
    fn ragged_chunk_must_be_last() {
        let mut asm = TableAssembler::new(schema(), 200);
        asm.append_chunk(chunk(0, 100));
        asm.append_chunk(chunk(100, 100));
    }

    #[test]
    fn empty_assembly_yields_empty_table() {
        let table = TableAssembler::new(schema(), 0).finish();
        assert_eq!(table.row_count(), 0);
        assert!(table.zone_maps_built());
        assert_eq!(table.zone_maps().n_morsels(), 0);
    }
}
