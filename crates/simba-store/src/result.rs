//! Query result sets and the coverage operations behind goal completion.
//!
//! §4.1.2 of the paper defines goal completion as result-set *coverage*:
//! a goal query is solved when its result set is covered by the union of
//! everything the simulated user has seen (`∪ R_g ⊆ ∪ R_i`), and planning
//! progress is measured as result-set *overlap* (`|R_g ∩ R(s)|`). Both
//! operations live here.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A materialized query result: named columns and row-major values.
///
/// Rows carry *multiset* semantics — duplicates are meaningful — and are
/// unordered unless the producing query had an `ORDER BY`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Row-major values; every row has `columns.len()` entries.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Build a result set. Every row must have `columns.len()` values.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        Self { columns, rows }
    }

    /// An empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        Self {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Project onto the named columns (in the given order). `None` if any
    /// column is missing.
    pub fn project(&self, names: &[&str]) -> Option<ResultSet> {
        let idx: Vec<usize> = names
            .iter()
            .map(|n| self.column_index(n))
            .collect::<Option<_>>()?;
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Some(ResultSet::new(
            names.iter().map(|s| s.to_string()).collect(),
            rows,
        ))
    }

    /// Multiset of rows with multiplicities.
    pub fn row_bag(&self) -> HashMap<&[Value], usize> {
        let mut bag: HashMap<&[Value], usize> = HashMap::with_capacity(self.rows.len());
        for r in &self.rows {
            *bag.entry(r.as_slice()).or_insert(0) += 1;
        }
        bag
    }

    /// Order-insensitive multiset equality. Columns must match by
    /// case-insensitive name in the same positions.
    pub fn multiset_eq(&self, other: &ResultSet) -> bool {
        if self.columns.len() != other.columns.len()
            || !self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
        {
            return false;
        }
        if self.rows.len() != other.rows.len() {
            return false;
        }
        self.row_bag() == other.row_bag()
    }

    /// Result subsumption (§4.1.2, *Result Equivalence*): every column and
    /// row of `goal` must be present in `self`; `self` may contain more of
    /// both. Rows are matched after projecting `self` onto `goal`'s columns,
    /// respecting multiplicities.
    pub fn subsumes(&self, goal: &ResultSet) -> bool {
        self.covered_rows(goal) == goal.n_rows()
    }

    /// Overlap measure θ (§4.1.2, *Measuring Progress*): how many of
    /// `goal`'s rows (with multiplicity) are visible in `self`? Returns 0
    /// when `self` is missing any goal column.
    pub fn covered_rows(&self, goal: &ResultSet) -> usize {
        let names: Vec<&str> = goal.columns.iter().map(String::as_str).collect();
        let Some(projected) = self.project(&names) else {
            return 0;
        };
        let mut have: HashMap<Vec<Value>, usize> = HashMap::with_capacity(projected.rows.len());
        for r in projected.rows {
            *have.entry(r).or_insert(0) += 1;
        }
        let mut covered = 0usize;
        for r in &goal.rows {
            if let Some(count) = have.get_mut(r.as_slice()) {
                if *count > 0 {
                    *count -= 1;
                    covered += 1;
                }
            }
        }
        covered
    }

    /// Overlap as a fraction of the goal's rows, in `[0, 1]`. An empty goal
    /// is fully covered.
    pub fn coverage_fraction(&self, goal: &ResultSet) -> f64 {
        if goal.is_empty() {
            return 1.0;
        }
        self.covered_rows(goal) as f64 / goal.n_rows() as f64
    }

    /// Rows sorted by the total value order — a canonical form for snapshot
    /// comparisons in tests.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

/// Accumulates everything a simulated user has *seen* across a session —
/// the `∪ R_i` side of the goal-completion test. Rows are stored per
/// column-name signature so results from different queries union soundly.
#[derive(Debug, Default, Clone)]
pub struct CoverageStore {
    /// Lowercased column-name signature → accumulated rows (with counts).
    seen: HashMap<Vec<String>, HashMap<Vec<Value>, usize>>,
}

impl CoverageStore {
    /// New, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a result set the user has observed.
    pub fn absorb(&mut self, rs: &ResultSet) {
        let sig: Vec<String> = rs.columns.iter().map(|c| c.to_ascii_lowercase()).collect();
        let bag = self.seen.entry(sig).or_default();
        for r in &rs.rows {
            *bag.entry(r.clone()).or_insert(0) += 1;
        }
    }

    /// How many of `goal`'s rows are covered by *any* absorbed result whose
    /// columns include the goal's columns?
    pub fn covered_rows(&self, goal: &ResultSet) -> usize {
        let goal_cols: Vec<String> = goal
            .columns
            .iter()
            .map(|c| c.to_ascii_lowercase())
            .collect();
        let mut best = 0usize;
        // simba: allow(nondeterministic-iteration): max over per-signature coverage counts — visiting signatures in any order yields the same maximum
        for (sig, bag) in &self.seen {
            // Map goal columns into this signature.
            let Some(indices) = goal_cols
                .iter()
                .map(|g| sig.iter().position(|s| s == g))
                .collect::<Option<Vec<_>>>()
            else {
                continue;
            };
            // Project the absorbed rows onto the goal columns.
            let mut have: HashMap<Vec<Value>, usize> = HashMap::with_capacity(bag.len());
            for (row, count) in bag {
                let projected: Vec<Value> = indices.iter().map(|&i| row[i].clone()).collect();
                *have.entry(projected).or_insert(0) += count;
            }
            let mut covered = 0usize;
            for r in &goal.rows {
                if let Some(count) = have.get_mut(r.as_slice()) {
                    if *count > 0 {
                        *count -= 1;
                        covered += 1;
                    }
                }
            }
            best = best.max(covered);
        }
        best
    }

    /// Is the goal fully covered (`R_g ⊆ ∪ R_i`)?
    pub fn covers(&self, goal: &ResultSet) -> bool {
        self.covered_rows(goal) == goal.n_rows()
    }

    /// Number of distinct column signatures absorbed.
    pub fn signature_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(cols: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet::new(cols.iter().map(|s| s.to_string()).collect(), rows)
    }

    #[test]
    fn multiset_eq_ignores_row_order() {
        let a = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = rs(&["x"], vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn multiset_eq_respects_multiplicity() {
        let a = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        let b = rs(&["x"], vec![vec![Value::Int(1)]]);
        assert!(!a.multiset_eq(&b));
    }

    #[test]
    fn multiset_eq_column_names_case_insensitive() {
        let a = rs(&["X"], vec![vec![Value::Int(1)]]);
        let b = rs(&["x"], vec![vec![Value::Int(1)]]);
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn subsumption_allows_extra_columns_and_rows() {
        let big = rs(
            &["q", "n", "extra"],
            vec![
                vec![Value::str("A"), Value::Int(1), Value::Bool(true)],
                vec![Value::str("B"), Value::Int(2), Value::Bool(false)],
            ],
        );
        let goal = rs(&["n", "q"], vec![vec![Value::Int(2), Value::str("B")]]);
        assert!(big.subsumes(&goal));
        assert!(!goal.subsumes(&big));
    }

    #[test]
    fn subsumption_fails_on_missing_column() {
        let a = rs(&["x"], vec![vec![Value::Int(1)]]);
        let goal = rs(&["y"], vec![vec![Value::Int(1)]]);
        assert!(!a.subsumes(&goal));
    }

    #[test]
    fn covered_rows_counts_partial_overlap() {
        let seen = rs(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let goal = rs(
            &["x"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)],
            ],
        );
        assert_eq!(seen.covered_rows(&goal), 2);
        assert!((seen.coverage_fraction(&goal) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_goal_is_fully_covered() {
        let seen = rs(&["x"], vec![]);
        let goal = rs(&["x"], vec![]);
        assert!(seen.subsumes(&goal));
        assert_eq!(seen.coverage_fraction(&goal), 1.0);
    }

    #[test]
    fn coverage_store_unions_across_queries() {
        // The paper's Figure 3/4 scenario: the goal (per-queue counts) is
        // covered by the union of four per-queue filtered queries.
        let mut store = CoverageStore::new();
        for (q, n) in [("A", 5), ("B", 3), ("C", 7), ("D", 1)] {
            store.absorb(&rs(
                &["queue", "count"],
                vec![vec![Value::str(q), Value::Int(n)]],
            ));
        }
        let goal = rs(
            &["queue", "count"],
            vec![
                vec![Value::str("A"), Value::Int(5)],
                vec![Value::str("B"), Value::Int(3)],
                vec![Value::str("C"), Value::Int(7)],
                vec![Value::str("D"), Value::Int(1)],
            ],
        );
        assert!(store.covers(&goal));
    }

    #[test]
    fn coverage_store_partial_until_all_seen() {
        let mut store = CoverageStore::new();
        let goal = rs(
            &["queue"],
            vec![vec![Value::str("A")], vec![Value::str("B")]],
        );
        store.absorb(&rs(&["queue"], vec![vec![Value::str("A")]]));
        assert_eq!(store.covered_rows(&goal), 1);
        assert!(!store.covers(&goal));
        store.absorb(&rs(&["queue"], vec![vec![Value::str("B")]]));
        assert!(store.covers(&goal));
    }

    #[test]
    fn coverage_store_matches_wider_results() {
        let mut store = CoverageStore::new();
        store.absorb(&rs(
            &["queue", "hour", "count"],
            vec![vec![Value::str("A"), Value::Int(9), Value::Int(4)]],
        ));
        let goal = rs(
            &["count", "queue"],
            vec![vec![Value::Int(4), Value::str("A")]],
        );
        assert!(store.covers(&goal));
    }

    #[test]
    fn projection_reorders_columns() {
        let a = rs(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]);
        let p = a.project(&["b", "a"]).unwrap();
        assert_eq!(p.rows[0], vec![Value::Int(2), Value::Int(1)]);
        assert!(a.project(&["missing"]).is_none());
    }
}
