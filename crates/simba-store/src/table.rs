//! The in-memory table: one columnar store shared by every engine.

use crate::column::{ColumnBuilder, ColumnData};
use crate::schema::{DataType, Schema};
use crate::value::Value;
use crate::zonemap::ZoneMaps;
use std::sync::{Arc, OnceLock};

/// An immutable, denormalized, columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    row_count: usize,
    /// Per-morsel min/max statistics, built on first use. Cloning a table
    /// carries the cache along (the data it summarizes is immutable).
    zone_maps: OnceLock<Arc<ZoneMaps>>,
}

impl Table {
    /// Assemble a table from a schema and matching column data.
    ///
    /// # Panics
    /// Panics if the column count or row counts are inconsistent — tables
    /// are built by trusted generators.
    pub fn from_columns(schema: Schema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.columns.len(), columns.len(), "column count mismatch");
        let row_count = columns.first().map_or(0, ColumnData::len);
        for (def, col) in schema.columns.iter().zip(&columns) {
            assert_eq!(
                col.len(),
                row_count,
                "row count mismatch in column `{}`",
                def.name
            );
        }
        Self {
            schema,
            columns,
            row_count,
            zone_maps: OnceLock::new(),
        }
    }

    /// Assemble a table with zone maps that were already computed during
    /// generation (the eager path of chunked generation). The pre-built
    /// maps are installed into the cache, so the lazy build never runs.
    ///
    /// # Panics
    /// Panics on column/row-count mismatches (as
    /// [`from_columns`](Self::from_columns)) or when `zone_maps` covers a
    /// different morsel count than the data.
    pub fn from_columns_with_zone_maps(
        schema: Schema,
        columns: Vec<ColumnData>,
        zone_maps: ZoneMaps,
    ) -> Self {
        let table = Self::from_columns(schema, columns);
        assert_eq!(
            zone_maps.n_morsels(),
            crate::zonemap::morsel_count(table.row_count),
            "zone maps cover a different morsel count than the table"
        );
        table
            .zone_maps
            .set(Arc::new(zone_maps))
            .expect("fresh table has no cached zone maps");
        table
    }

    /// Per-morsel zone maps for this table, built lazily on first access
    /// and cached for the table's lifetime. Tables assembled by
    /// [`from_columns_with_zone_maps`](Self::from_columns_with_zone_maps)
    /// return their eagerly built maps without recomputation.
    pub fn zone_maps(&self) -> &ZoneMaps {
        self.zone_maps
            .get_or_init(|| Arc::new(ZoneMaps::build(&self.columns, self.row_count)))
    }

    /// True when the zone maps are already materialized (eagerly at
    /// assembly, or by an earlier [`zone_maps`](Self::zone_maps) call).
    pub fn zone_maps_built(&self) -> bool {
        self.zone_maps.get().is_some()
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.table
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Column data by position.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Column data by case-insensitive name.
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Cell value at (row, column).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` as a `Vec<Value>` (row-store engines use this).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Write row `i` into a reusable buffer, avoiding per-row allocation.
    pub fn read_row_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Total approximate heap size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// Physical, bit-for-bit equality: same schema, and every column equal
    /// under [`ColumnData::bitwise_eq`] (float bit patterns, dictionary
    /// order, codes, and validity all included). This is the relation the
    /// chunk-deterministic generation contract promises across thread
    /// counts — strictly stronger than value-level equality.
    pub fn bitwise_eq(&self, other: &Table) -> bool {
        self.schema == other.schema
            && self.row_count == other.row_count
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.bitwise_eq(b))
    }
}

/// Row-oriented builder for [`Table`] — generators push one record at a time.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema, pre-sizing for
    /// `capacity` rows.
    pub fn new(schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Int => ColumnBuilder::int(capacity),
                DataType::Float => ColumnBuilder::float(capacity),
                DataType::Str => ColumnBuilder::string(capacity),
                DataType::Bool => ColumnBuilder::boolean(capacity),
            })
            .collect();
        Self {
            schema,
            builders,
            rows: 0,
        }
    }

    /// Append one row. The value count must match the schema width.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.builders.len(), "row width mismatch");
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
        self.rows += 1;
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finish building the table.
    pub fn finish(self) -> Table {
        let (schema, columns) = self.finish_parts();
        Table::from_columns(schema, columns)
    }

    /// Finish building, returning the raw parts instead of a [`Table`].
    /// Chunk generators use this to hand column fragments to a
    /// [`TableAssembler`](crate::append::TableAssembler) without paying for
    /// an intermediate table.
    pub fn finish_parts(self) -> (Schema, Vec<ColumnData>) {
        let columns = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        (self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn sample_table() -> Table {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
                ColumnDef::quantitative_float("f"),
            ],
        );
        let mut b = TableBuilder::new(schema, 3);
        b.push_row(vec![Value::str("A"), Value::Int(1), Value::Float(0.5)]);
        b.push_row(vec![Value::str("B"), Value::Int(2), Value::Null]);
        b.push_row(vec![Value::str("A"), Value::Int(3), Value::Float(1.5)]);
        b.finish()
    }

    #[test]
    fn builds_and_reads_back_rows() {
        let t = sample_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.row(1), vec![Value::str("B"), Value::Int(2), Value::Null]);
        assert_eq!(t.value(2, 1), Value::Int(3));
    }

    #[test]
    fn column_lookup_by_name() {
        let t = sample_table();
        assert!(t.column_by_name("N").is_some());
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn read_row_into_reuses_buffer() {
        let t = sample_table();
        let mut buf = Vec::new();
        t.read_row_into(0, &mut buf);
        assert_eq!(buf[0], Value::str("A"));
        t.read_row_into(2, &mut buf);
        assert_eq!(buf[1], Value::Int(3));
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let schema = Schema::new("e", vec![ColumnDef::quantitative_int("x")]);
        let t = TableBuilder::new(schema, 0).finish();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let schema = Schema::new("t", vec![ColumnDef::quantitative_int("x")]);
        let mut b = TableBuilder::new(schema, 1);
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn byte_size_is_positive() {
        assert!(sample_table().byte_size() > 0);
    }

    #[test]
    fn zone_maps_cached_and_cover_numeric_columns() {
        let t = sample_table();
        let maps = t.zone_maps();
        assert_eq!(maps.n_morsels(), 1);
        assert!(maps.column(0).is_none(), "categorical column has no zones");
        assert_eq!(
            maps.column(1).unwrap().zone(0),
            crate::zonemap::Zone::Int { min: 1, max: 3 }
        );
        // Second call returns the cached build (same allocation).
        assert!(std::ptr::eq(t.zone_maps(), maps));
    }
}
