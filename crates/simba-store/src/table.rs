//! The in-memory table: one columnar store shared by every engine.

use crate::column::{ColumnBuilder, ColumnData};
use crate::schema::{DataType, Schema};
use crate::value::Value;
use crate::zonemap::ZoneMaps;
use std::sync::{Arc, OnceLock};

/// An immutable, denormalized, columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    row_count: usize,
    /// Per-morsel min/max statistics, built on first use. Cloning a table
    /// carries the cache along (the data it summarizes is immutable).
    zone_maps: OnceLock<Arc<ZoneMaps>>,
}

impl Table {
    /// Assemble a table from a schema and matching column data.
    ///
    /// # Panics
    /// Panics if the column count or row counts are inconsistent — tables
    /// are built by trusted generators.
    pub fn from_columns(schema: Schema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.columns.len(), columns.len(), "column count mismatch");
        let row_count = columns.first().map_or(0, ColumnData::len);
        for (def, col) in schema.columns.iter().zip(&columns) {
            assert_eq!(
                col.len(),
                row_count,
                "row count mismatch in column `{}`",
                def.name
            );
        }
        Self {
            schema,
            columns,
            row_count,
            zone_maps: OnceLock::new(),
        }
    }

    /// Per-morsel zone maps for this table, built lazily on first access
    /// and cached for the table's lifetime.
    pub fn zone_maps(&self) -> &ZoneMaps {
        self.zone_maps
            .get_or_init(|| Arc::new(ZoneMaps::build(&self.columns, self.row_count)))
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.table
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Column data by position.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Column data by case-insensitive name.
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Cell value at (row, column).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materialize row `i` as a `Vec<Value>` (row-store engines use this).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Write row `i` into a reusable buffer, avoiding per-row allocation.
    pub fn read_row_into(&self, i: usize, buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.columns.iter().map(|c| c.value(i)));
    }

    /// Total approximate heap size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }
}

/// Row-oriented builder for [`Table`] — generators push one record at a time.
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema, pre-sizing for
    /// `capacity` rows.
    pub fn new(schema: Schema, capacity: usize) -> Self {
        let builders = schema
            .columns
            .iter()
            .map(|c| match c.data_type {
                DataType::Int => ColumnBuilder::int(capacity),
                DataType::Float => ColumnBuilder::float(capacity),
                DataType::Str => ColumnBuilder::string(capacity),
                DataType::Bool => ColumnBuilder::boolean(capacity),
            })
            .collect();
        Self {
            schema,
            builders,
            rows: 0,
        }
    }

    /// Append one row. The value count must match the schema width.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.builders.len(), "row width mismatch");
        for (b, v) in self.builders.iter_mut().zip(values) {
            b.push(v);
        }
        self.rows += 1;
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Finish building the table.
    pub fn finish(self) -> Table {
        let columns = self
            .builders
            .into_iter()
            .map(ColumnBuilder::finish)
            .collect();
        Table::from_columns(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn sample_table() -> Table {
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::categorical("q"),
                ColumnDef::quantitative_int("n"),
                ColumnDef::quantitative_float("f"),
            ],
        );
        let mut b = TableBuilder::new(schema, 3);
        b.push_row(vec![Value::str("A"), Value::Int(1), Value::Float(0.5)]);
        b.push_row(vec![Value::str("B"), Value::Int(2), Value::Null]);
        b.push_row(vec![Value::str("A"), Value::Int(3), Value::Float(1.5)]);
        b.finish()
    }

    #[test]
    fn builds_and_reads_back_rows() {
        let t = sample_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.row(1), vec![Value::str("B"), Value::Int(2), Value::Null]);
        assert_eq!(t.value(2, 1), Value::Int(3));
    }

    #[test]
    fn column_lookup_by_name() {
        let t = sample_table();
        assert!(t.column_by_name("N").is_some());
        assert!(t.column_by_name("missing").is_none());
    }

    #[test]
    fn read_row_into_reuses_buffer() {
        let t = sample_table();
        let mut buf = Vec::new();
        t.read_row_into(0, &mut buf);
        assert_eq!(buf[0], Value::str("A"));
        t.read_row_into(2, &mut buf);
        assert_eq!(buf[1], Value::Int(3));
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn empty_table_has_zero_rows() {
        let schema = Schema::new("e", vec![ColumnDef::quantitative_int("x")]);
        let t = TableBuilder::new(schema, 0).finish();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let schema = Schema::new("t", vec![ColumnDef::quantitative_int("x")]);
        let mut b = TableBuilder::new(schema, 1);
        b.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn byte_size_is_positive() {
        assert!(sample_table().byte_size() > 0);
    }

    #[test]
    fn zone_maps_cached_and_cover_numeric_columns() {
        let t = sample_table();
        let maps = t.zone_maps();
        assert_eq!(maps.n_morsels(), 1);
        assert!(maps.column(0).is_none(), "categorical column has no zones");
        assert_eq!(
            maps.column(1).unwrap().zone(0),
            crate::zonemap::Zone::Int { min: 1, max: 3 }
        );
        // Second call returns the cached build (same allocation).
        assert!(std::ptr::eq(t.zone_maps(), maps));
    }
}
