//! Storage substrate for the SIMBA benchmark.
//!
//! The paper evaluates DBMSs over *denormalized* datasets (§6.2.2), so the
//! storage model is a single flat table per dashboard. This crate provides:
//!
//! * [`value`] — the dynamic [`Value`] type shared by all engines.
//! * [`schema`] — logical schemas with the paper's column taxonomy
//!   (Categorical / Quantitative / Temporal).
//! * [`mod@column`] — dictionary-encoded columnar storage.
//! * [`table`] — the in-memory table (columnar layout with row views, so
//!   both row-oriented and column-oriented engines share one copy).
//! * [`result`] — query [`ResultSet`]s with the multiset/subsumption/overlap
//!   operations the equivalence suite (§4.1.2) is built on.
//! * [`zonemap`] — per-morsel min/max statistics that let vectorized scans
//!   skip row ranges a comparison predicate cannot match.
//! * [`append`] — chunk-append assembly for morsel-parallel dataset
//!   generation (bulk column append, dictionary remap, eager zone maps).

#![warn(missing_docs)]

pub mod append;
pub mod column;
pub mod result;
pub mod schema;
pub mod table;
pub mod value;
pub mod zonemap;

pub use append::{TableAssembler, TableChunk};
pub use column::{ColumnBuilder, ColumnData};
pub use result::{CoverageStore, ResultSet};
pub use schema::{ColumnDef, ColumnRole, DataType, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use zonemap::{Zone, ZoneMaps, MORSEL_ROWS};
