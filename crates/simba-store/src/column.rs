//! Dictionary-encoded columnar storage.
//!
//! String columns are dictionary encoded (`dict` + `codes`), which both
//! shrinks memory for the low-cardinality categorical columns dashboards
//! filter on and gives the columnar engines integer group keys.

use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Physical data of one column. Validity is tracked separately: `valid[i]`
/// is `false` when row `i` is NULL. An empty validity vector means
/// "all valid" (the common case allocates nothing).
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integer column (also backs temporal columns, as epoch
    /// seconds).
    Int {
        /// Row values; NULL slots hold `0`.
        data: Vec<i64>,
        /// Validity bitmap; empty means "all valid".
        valid: Vec<bool>,
    },
    /// 64-bit float column.
    Float {
        /// Row values; NULL slots hold `0.0`.
        data: Vec<f64>,
        /// Validity bitmap; empty means "all valid".
        valid: Vec<bool>,
    },
    /// Boolean column.
    Bool {
        /// Row values; NULL slots hold `false`.
        data: Vec<bool>,
        /// Validity bitmap; empty means "all valid".
        valid: Vec<bool>,
    },
    /// Dictionary-encoded string column.
    Str {
        /// Distinct strings in first-appearance order.
        dict: Vec<Arc<str>>,
        /// Per-row index into `dict`; NULL slots hold code `0`.
        codes: Vec<u32>,
        /// Validity bitmap; empty means "all valid".
        valid: Vec<bool>,
    },
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { data, .. } => data.len(),
            ColumnData::Float { data, .. } => data.len(),
            ColumnData::Bool { data, .. } => data.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is row `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        let valid = match self {
            ColumnData::Int { valid, .. }
            | ColumnData::Float { valid, .. }
            | ColumnData::Bool { valid, .. }
            | ColumnData::Str { valid, .. } => valid,
        };
        !valid.is_empty() && !valid[i]
    }

    /// Value of row `i`.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            ColumnData::Int { data, .. } => Value::Int(data[i]),
            ColumnData::Float { data, .. } => Value::Float(data[i]),
            ColumnData::Bool { data, .. } => Value::Bool(data[i]),
            ColumnData::Str { dict, codes, .. } => Value::Str(dict[codes[i] as usize].clone()),
        }
    }

    /// For string columns: the dictionary code of row `i` (`None` for NULL
    /// rows or non-string columns).
    pub fn code(&self, i: usize) -> Option<u32> {
        match self {
            ColumnData::Str { codes, .. } if !self.is_null(i) => Some(codes[i]),
            _ => None,
        }
    }

    /// For string columns: the dictionary itself.
    pub fn dictionary(&self) -> Option<&[Arc<str>]> {
        match self {
            ColumnData::Str { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Raw `i64` slice of an Int column (NULL slots hold `0`; consult
    /// [`ColumnData::validity`]).
    pub fn int_data(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Raw `f64` slice of a Float column (NULL slots hold `0.0`; consult
    /// [`ColumnData::validity`]).
    pub fn float_data(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Float { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Raw dictionary-code slice of a Str column (NULL slots hold code `0`;
    /// consult [`ColumnData::validity`]).
    pub fn code_data(&self) -> Option<&[u32]> {
        match self {
            ColumnData::Str { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// The validity bitmap. Empty means every row is valid (the common
    /// case allocates nothing); otherwise `validity()[i] == false` marks
    /// row `i` NULL.
    pub fn validity(&self) -> &[bool] {
        match self {
            ColumnData::Int { valid, .. }
            | ColumnData::Float { valid, .. }
            | ColumnData::Bool { valid, .. }
            | ColumnData::Str { valid, .. } => valid,
        }
    }

    /// True when no row of this column is NULL.
    pub fn all_valid(&self) -> bool {
        self.validity().is_empty()
    }

    /// Distinct non-null values, in dictionary/ascending order.
    pub fn distinct_values(&self) -> Vec<Value> {
        match self {
            ColumnData::Str { dict, .. } => {
                let mut vs: Vec<Value> = dict.iter().map(|s| Value::Str(s.clone())).collect();
                vs.sort();
                vs.dedup();
                vs
            }
            _ => {
                let mut vs: Vec<Value> = (0..self.len())
                    .filter(|&i| !self.is_null(i))
                    .map(|i| self.value(i))
                    .collect();
                vs.sort();
                vs.dedup();
                vs
            }
        }
    }

    /// Minimum and maximum non-null values, if any row is non-null.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in 0..self.len() {
            if self.is_null(i) {
                continue;
            }
            let v = self.value(i);
            match &min {
                Some(m) if &v >= m => {}
                _ => min = Some(v.clone()),
            }
            match &max {
                Some(m) if &v <= m => {}
                _ => max = Some(v),
            }
        }
        Some((min?, max?))
    }

    /// Physical, bit-for-bit equality: identical variant, identical raw
    /// buffers (floats by bit pattern), identical dictionary *order*, and
    /// identical validity representation (an empty validity vector is only
    /// equal to another empty one). The determinism tests use this — value
    /// equality would hide dictionary-order or representation drift.
    pub fn bitwise_eq(&self, other: &ColumnData) -> bool {
        match (self, other) {
            (ColumnData::Int { data: a, valid: va }, ColumnData::Int { data: b, valid: vb }) => {
                a == b && va == vb
            }
            (
                ColumnData::Float { data: a, valid: va },
                ColumnData::Float { data: b, valid: vb },
            ) => {
                va == vb
                    && a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnData::Bool { data: a, valid: va }, ColumnData::Bool { data: b, valid: vb }) => {
                a == b && va == vb
            }
            (
                ColumnData::Str {
                    dict: da,
                    codes: ca,
                    valid: va,
                },
                ColumnData::Str {
                    dict: db,
                    codes: cb,
                    valid: vb,
                },
            ) => da == db && ca == cb && va == vb,
            _ => false,
        }
    }

    /// Approximate heap size in bytes (for capacity planning in benches).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int { data, valid } => data.len() * 8 + valid.len(),
            ColumnData::Float { data, valid } => data.len() * 8 + valid.len(),
            ColumnData::Bool { data, valid } => data.len() + valid.len(),
            ColumnData::Str { dict, codes, valid } => {
                codes.len() * 4 + valid.len() + dict.iter().map(|s| s.len()).sum::<usize>()
            }
        }
    }
}

/// Incrementally builds a [`ColumnData`] from pushed [`Value`]s.
///
/// The physical type is fixed at construction; pushing a mismatched value
/// panics (generators are trusted code — schema validation happens upstream).
#[derive(Debug)]
pub enum ColumnBuilder {
    /// Builds an [`ColumnData::Int`] column.
    Int {
        /// Values pushed so far (NULLs as `0`).
        data: Vec<i64>,
        /// Per-row validity (dropped at finish when nothing was NULL).
        valid: Vec<bool>,
        /// Whether any NULL has been pushed.
        any_null: bool,
    },
    /// Builds a [`ColumnData::Float`] column.
    Float {
        /// Values pushed so far (NULLs as `0.0`).
        data: Vec<f64>,
        /// Per-row validity (dropped at finish when nothing was NULL).
        valid: Vec<bool>,
        /// Whether any NULL has been pushed.
        any_null: bool,
    },
    /// Builds a [`ColumnData::Bool`] column.
    Bool {
        /// Values pushed so far (NULLs as `false`).
        data: Vec<bool>,
        /// Per-row validity (dropped at finish when nothing was NULL).
        valid: Vec<bool>,
        /// Whether any NULL has been pushed.
        any_null: bool,
    },
    /// Builds a dictionary-encoded [`ColumnData::Str`] column.
    Str {
        /// Distinct strings in first-appearance order.
        dict: Vec<Arc<str>>,
        /// Reverse index from string to dictionary code.
        lookup: HashMap<Arc<str>, u32>,
        /// Per-row dictionary codes (NULLs as code `0`).
        codes: Vec<u32>,
        /// Per-row validity (dropped at finish when nothing was NULL).
        valid: Vec<bool>,
        /// Whether any NULL has been pushed.
        any_null: bool,
    },
}

impl ColumnBuilder {
    /// New integer column builder with capacity.
    pub fn int(capacity: usize) -> Self {
        ColumnBuilder::Int {
            data: Vec::with_capacity(capacity),
            valid: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    /// New float column builder with capacity.
    pub fn float(capacity: usize) -> Self {
        ColumnBuilder::Float {
            data: Vec::with_capacity(capacity),
            valid: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    /// New boolean column builder with capacity.
    pub fn boolean(capacity: usize) -> Self {
        ColumnBuilder::Bool {
            data: Vec::with_capacity(capacity),
            valid: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    /// New dictionary-encoded string column builder with capacity.
    pub fn string(capacity: usize) -> Self {
        ColumnBuilder::Str {
            dict: Vec::new(),
            lookup: HashMap::new(),
            codes: Vec::with_capacity(capacity),
            valid: Vec::with_capacity(capacity),
            any_null: false,
        }
    }

    /// Append one value.
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (ColumnBuilder::Int { data, valid, .. }, Value::Int(x)) => {
                data.push(x);
                valid.push(true);
            }
            (
                ColumnBuilder::Int {
                    data,
                    valid,
                    any_null,
                },
                Value::Null,
            ) => {
                data.push(0);
                valid.push(false);
                *any_null = true;
            }
            (ColumnBuilder::Float { data, valid, .. }, Value::Float(x)) => {
                data.push(x);
                valid.push(true);
            }
            (ColumnBuilder::Float { data, valid, .. }, Value::Int(x)) => {
                data.push(x as f64);
                valid.push(true);
            }
            (
                ColumnBuilder::Float {
                    data,
                    valid,
                    any_null,
                },
                Value::Null,
            ) => {
                data.push(0.0);
                valid.push(false);
                *any_null = true;
            }
            (ColumnBuilder::Bool { data, valid, .. }, Value::Bool(x)) => {
                data.push(x);
                valid.push(true);
            }
            (
                ColumnBuilder::Bool {
                    data,
                    valid,
                    any_null,
                },
                Value::Null,
            ) => {
                data.push(false);
                valid.push(false);
                *any_null = true;
            }
            (
                ColumnBuilder::Str {
                    dict,
                    lookup,
                    codes,
                    valid,
                    ..
                },
                Value::Str(s),
            ) => {
                let code = match lookup.get(&s) {
                    Some(&c) => c,
                    None => {
                        let c = dict.len() as u32;
                        dict.push(s.clone());
                        lookup.insert(s, c);
                        c
                    }
                };
                codes.push(code);
                valid.push(true);
            }
            (
                ColumnBuilder::Str {
                    codes,
                    valid,
                    any_null,
                    ..
                },
                Value::Null,
            ) => {
                codes.push(0);
                valid.push(false);
                *any_null = true;
            }
            (builder, v) => panic!("type mismatch pushing {v:?} into {builder:?}"),
        }
    }

    /// Finish building. Drops the validity vector when no NULL was pushed.
    pub fn finish(self) -> ColumnData {
        fn finish_valid(valid: Vec<bool>, any_null: bool) -> Vec<bool> {
            if any_null {
                valid
            } else {
                Vec::new()
            }
        }
        match self {
            ColumnBuilder::Int {
                data,
                valid,
                any_null,
            } => ColumnData::Int {
                data,
                valid: finish_valid(valid, any_null),
            },
            ColumnBuilder::Float {
                data,
                valid,
                any_null,
            } => ColumnData::Float {
                data,
                valid: finish_valid(valid, any_null),
            },
            ColumnBuilder::Bool {
                data,
                valid,
                any_null,
            } => ColumnData::Bool {
                data,
                valid: finish_valid(valid, any_null),
            },
            ColumnBuilder::Str {
                dict,
                codes,
                valid,
                any_null,
                ..
            } => ColumnData::Str {
                dict,
                codes,
                valid: finish_valid(valid, any_null),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_int_column_with_nulls() {
        let mut b = ColumnBuilder::int(3);
        b.push(Value::Int(1));
        b.push(Value::Null);
        b.push(Value::Int(3));
        let c = b.finish();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert!(c.is_null(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
    }

    #[test]
    fn no_null_column_drops_validity() {
        let mut b = ColumnBuilder::int(2);
        b.push(Value::Int(1));
        b.push(Value::Int(2));
        match b.finish() {
            ColumnData::Int { valid, .. } => assert!(valid.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn string_dictionary_deduplicates() {
        let mut b = ColumnBuilder::string(4);
        for s in ["A", "B", "A", "A"] {
            b.push(Value::str(s));
        }
        let c = b.finish();
        assert_eq!(c.dictionary().unwrap().len(), 2);
        assert_eq!(c.code(0), c.code(2));
        assert_ne!(c.code(0), c.code(1));
        assert_eq!(c.value(3), Value::str("A"));
    }

    #[test]
    fn float_builder_widens_ints() {
        let mut b = ColumnBuilder::float(2);
        b.push(Value::Int(2));
        b.push(Value::Float(2.5));
        let c = b.finish();
        assert_eq!(c.value(0), Value::Float(2.0));
    }

    #[test]
    fn distinct_values_sorted() {
        let mut b = ColumnBuilder::string(3);
        for s in ["C", "A", "B", "A"] {
            b.push(Value::str(s));
        }
        let c = b.finish();
        assert_eq!(
            c.distinct_values(),
            vec![Value::str("A"), Value::str("B"), Value::str("C")]
        );
    }

    #[test]
    fn min_max_skips_nulls() {
        let mut b = ColumnBuilder::int(3);
        b.push(Value::Null);
        b.push(Value::Int(5));
        b.push(Value::Int(2));
        let c = b.finish();
        assert_eq!(c.min_max(), Some((Value::Int(2), Value::Int(5))));
    }

    #[test]
    fn min_max_all_null_is_none() {
        let mut b = ColumnBuilder::int(1);
        b.push(Value::Null);
        assert_eq!(b.finish().min_max(), None);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut b = ColumnBuilder::int(1);
        b.push(Value::str("oops"));
    }
}
